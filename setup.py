"""Setuptools entry point.

A classic ``setup.py`` is kept alongside ``pyproject.toml`` so the package can
be installed in editable mode on air-gapped systems whose setuptools/pip stack
predates PEP 660 editable wheels (no ``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "ML-guided estimation of computational resources for massively parallel "
        "CCSD chemistry computations (SC 2025 reproduction)"
    ),
    author="Reproduction Authors",
    license="BSD-3-Clause",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro-chem = repro.cli:main"]},
)
