"""Tests for contraction plans (task counts, per-task costs)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.ccsd_cost import CCSD_TERMS, ContractionTerm
from repro.chem.orbitals import ProblemSize
from repro.machines import AURORA
from repro.tamm.contraction import plan_contraction


def _pp_ladder():
    return next(t for t in CCSD_TERMS if t.name == "pp_ladder")


class TestPlanContraction:
    def test_task_count_formula(self):
        problem = ProblemSize(44, 260)
        plan = plan_contraction(_pp_ladder(), problem, 40)
        # ceil(44/40)=2 occupied tiles, ceil(260/40)=7 virtual tiles.
        assert plan.n_tasks == 2**2 * 7**4

    def test_flops_conserved_across_tasks(self):
        problem = ProblemSize(99, 718)
        term = _pp_ladder()
        plan = plan_contraction(term, problem, 60)
        assert plan.total_flops == pytest.approx(term.flops(problem))

    def test_larger_tile_fewer_bigger_tasks(self):
        problem = ProblemSize(116, 840)
        small = plan_contraction(_pp_ladder(), problem, 40)
        large = plan_contraction(_pp_ladder(), problem, 120)
        assert large.n_tasks < small.n_tasks
        assert large.flops_per_task > small.flops_per_task
        assert large.bytes_per_task > small.bytes_per_task

    def test_invalid_tile_rejected(self):
        with pytest.raises(ValueError):
            plan_contraction(_pp_ladder(), ProblemSize(44, 260), 0)

    def test_task_compute_time_decreases_with_tile_efficiency(self):
        problem = ProblemSize(116, 840)
        term = ContractionTerm("toy", 2, 2, 1.0)
        slow = plan_contraction(term, problem, 20).task_compute_time(AURORA)
        # Same flops per task only if task counts match, so compare rates via
        # total compute: total = flops / (rate(tile)).
        total_slow = slow * plan_contraction(term, problem, 20).n_tasks
        fast = plan_contraction(term, problem, 120)
        total_fast = fast.task_compute_time(AURORA) * fast.n_tasks
        assert total_fast < total_slow

    def test_comm_time_zero_remote_fraction_on_one_node(self):
        problem = ProblemSize(44, 260)
        plan = plan_contraction(_pp_ladder(), problem, 40)
        one_node = plan.task_comm_time(AURORA, 1)
        many_nodes = plan.task_comm_time(AURORA, 100)
        assert one_node < many_nodes  # only latency remains on a single node

    def test_task_time_includes_overhead(self):
        problem = ProblemSize(44, 260)
        plan = plan_contraction(_pp_ladder(), problem, 40)
        assert plan.task_time(AURORA, 10) >= plan.task_overhead_time(AURORA)

    def test_comm_overlap_reduces_task_time(self):
        problem = ProblemSize(146, 1096)
        plan = plan_contraction(_pp_ladder(), problem, 100)
        assert plan.task_time(AURORA, 50, comm_overlap=1.0) <= plan.task_time(
            AURORA, 50, comm_overlap=0.0
        )

    @given(st.integers(16, 200))
    @settings(max_examples=30, deadline=None)
    def test_flops_conservation_property(self, tile):
        problem = ProblemSize(81, 835)
        for term in CCSD_TERMS:
            plan = plan_contraction(term, problem, tile)
            assert plan.total_flops == pytest.approx(term.flops(problem), rel=1e-9)
            assert plan.n_tasks >= 1
