"""Tests for the block-distributed tensor layout model."""

import numpy as np
import pytest

from repro.tamm.tensor import TiledTensor
from repro.tamm.tiling import TiledIndexSpace


class TestTiledTensor:
    def _t2_like(self, o=20, v=60, tile=16):
        occ = TiledIndexSpace(o, tile)
        vir = TiledIndexSpace(v, tile)
        return TiledTensor((occ, occ, vir, vir), name="t2")

    def test_shape_and_elements(self):
        t = self._t2_like(20, 60, 16)
        assert t.shape == (20, 20, 60, 60)
        assert t.n_elements == 20 * 20 * 60 * 60
        assert t.total_bytes == pytest.approx(8 * t.n_elements)

    def test_block_count(self):
        t = self._t2_like(20, 60, 16)
        # 20/16 -> 2 tiles, 60/16 -> 4 tiles
        assert t.n_blocks == 2 * 2 * 4 * 4

    def test_block_shape_of_last_block(self):
        t = self._t2_like(20, 60, 16)
        assert t.block_shape((1, 1, 3, 3)) == (4, 4, 12, 12)
        assert t.block_shape((0, 0, 0, 0)) == (16, 16, 16, 16)

    def test_block_shape_validates_rank(self):
        t = self._t2_like()
        with pytest.raises(ValueError):
            t.block_shape((0, 0))

    def test_bytes_per_node_decreases_with_nodes(self):
        t = self._t2_like(40, 120, 20)
        per_node = [t.bytes_per_node(n) for n in (1, 2, 4, 8)]
        assert all(b >= a for a, b in zip(per_node[1:], per_node[:-1]))
        assert per_node[0] == pytest.approx(t.total_bytes, rel=0.05)

    def test_bytes_per_node_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            self._t2_like().bytes_per_node(0)

    def test_block_sizes_summary_total_matches(self):
        t = self._t2_like(10, 30, 8)
        summary = t.block_sizes_summary()
        assert summary["total"] == pytest.approx(t.total_bytes)
        assert summary["min"] <= summary["mean"] <= summary["max"]

    def test_requires_at_least_one_space(self):
        with pytest.raises(ValueError):
            TiledTensor(())

    def test_max_block_bytes(self):
        t = self._t2_like(20, 60, 16)
        assert t.max_block_bytes == pytest.approx(8 * 16**4)
