"""Tests for tiled index spaces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tamm.tiling import TiledIndexSpace


class TestTiledIndexSpace:
    def test_exact_division(self):
        space = TiledIndexSpace(100, 25)
        assert space.n_tiles == 4
        np.testing.assert_array_equal(space.tile_sizes, [25, 25, 25, 25])

    def test_ragged_last_tile(self):
        space = TiledIndexSpace(105, 25)
        assert space.n_tiles == 5
        np.testing.assert_array_equal(space.tile_sizes, [25, 25, 25, 25, 5])

    def test_tile_larger_than_dimension(self):
        space = TiledIndexSpace(30, 100)
        assert space.n_tiles == 1
        np.testing.assert_array_equal(space.tile_sizes, [30])

    def test_offsets_are_cumulative(self):
        space = TiledIndexSpace(105, 25)
        np.testing.assert_array_equal(space.tile_offsets, [0, 25, 50, 75, 100])

    def test_tile_of_and_bounds(self):
        space = TiledIndexSpace(50, 20)
        assert space.tile_of(0) == 0
        assert space.tile_of(25) == 1
        assert space.tile_of(49) == 2
        assert space.tile_bounds(2) == (40, 50)

    def test_out_of_range_errors(self):
        space = TiledIndexSpace(10, 3)
        with pytest.raises(IndexError):
            space.tile_of(10)
        with pytest.raises(IndexError):
            space.tile_bounds(4)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TiledIndexSpace(0, 5)
        with pytest.raises(ValueError):
            TiledIndexSpace(5, 0)

    def test_len_matches_n_tiles(self):
        assert len(TiledIndexSpace(47, 8)) == TiledIndexSpace(47, 8).n_tiles

    @given(st.integers(1, 5000), st.integers(1, 300))
    @settings(max_examples=100, deadline=None)
    def test_tiles_partition_dimension(self, dim, tile):
        space = TiledIndexSpace(dim, tile)
        sizes = space.tile_sizes
        assert sizes.sum() == dim
        assert np.all(sizes >= 1)
        assert np.all(sizes <= tile)
        assert space.n_tiles == -(-dim // tile)
        assert space.mean_tile_size == pytest.approx(dim / space.n_tiles)
