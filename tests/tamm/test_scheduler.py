"""Tests for the makespan / load-balance models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tamm.scheduler import SampledScheduler, analytic_makespan


class TestAnalyticMakespan:
    def test_never_below_ideal_or_single_task(self):
        ideal = 1000 * 0.01 / 64
        m = analytic_makespan(1000, 0.01, 64)
        assert m >= ideal
        assert m >= 0.01

    def test_fewer_tasks_than_workers_is_one_task(self):
        assert analytic_makespan(10, 2.0, 100) == pytest.approx(2.0)

    def test_more_workers_never_slower(self):
        times = [analytic_makespan(10_000, 0.005, w) for w in (8, 64, 512)]
        assert times[0] >= times[1] >= times[2]

    def test_imbalance_shrinks_with_more_tasks_per_worker(self):
        few = analytic_makespan(128, 1.0, 64) / (128 * 1.0 / 64)
        many = analytic_makespan(128_000, 1.0, 64) / (128_000 * 1.0 / 64)
        assert many < few

    def test_zero_task_time(self):
        assert analytic_makespan(100, 0.0, 10) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            analytic_makespan(0, 1.0, 4)
        with pytest.raises(ValueError):
            analytic_makespan(10, 1.0, 0)
        with pytest.raises(ValueError):
            analytic_makespan(10, -1.0, 4)

    @given(
        st.integers(1, 100_000),
        st.floats(1e-6, 10.0, allow_nan=False),
        st.integers(1, 4096),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_property(self, n_tasks, task_time, n_workers):
        m = analytic_makespan(n_tasks, task_time, n_workers)
        ideal = n_tasks * task_time / n_workers
        assert m >= max(ideal, task_time) - 1e-12
        # Makespan can never exceed fully serial execution (with slack for the
        # imbalance term at tiny task/worker ratios).
        assert m <= n_tasks * task_time * 2.5 + task_time


class TestSampledScheduler:
    def test_reproducible_with_seed(self):
        a = SampledScheduler(random_state=3).makespan(500, 0.01, 16)
        b = SampledScheduler(random_state=3).makespan(500, 0.01, 16)
        assert a == b

    def test_close_to_ideal_for_many_small_tasks(self):
        scheduler = SampledScheduler(task_cv=0.1, random_state=0)
        makespan = scheduler.makespan(20_000, 0.001, 16)
        ideal = 20_000 * 0.001 / 16
        assert makespan == pytest.approx(ideal, rel=0.1)

    def test_single_worker_sums_all_work(self):
        scheduler = SampledScheduler(task_cv=0.2, random_state=0)
        makespan = scheduler.makespan(100, 0.02, 1)
        assert makespan == pytest.approx(100 * 0.02, rel=0.25)

    def test_fewer_tasks_than_workers(self):
        scheduler = SampledScheduler(task_cv=0.2, random_state=0)
        makespan = scheduler.makespan(4, 1.0, 100)
        assert 0.3 < makespan < 3.0

    def test_subsampling_large_task_counts(self):
        scheduler = SampledScheduler(task_cv=0.2, max_sampled_tasks=1000, random_state=0)
        makespan = scheduler.makespan(1_000_000, 1e-5, 64)
        ideal = 1_000_000 * 1e-5 / 64
        assert makespan == pytest.approx(ideal, rel=0.3)

    def test_invalid_inputs(self):
        scheduler = SampledScheduler()
        with pytest.raises(ValueError):
            scheduler.makespan(0, 1.0, 2)
        with pytest.raises(ValueError):
            scheduler.makespan(10, 1.0, 0)
        with pytest.raises(ValueError):
            scheduler.makespan(10, -1.0, 2)
