"""Tests for the measurement-noise model."""

import numpy as np
import pytest

from repro.machines import AURORA, FRONTIER
from repro.tamm.noise import NoiseModel


class TestNoiseModel:
    def test_zero_sigma_no_stragglers_is_identity(self):
        model = NoiseModel(sigma=0.0)
        assert model.apply(10.0, rng=0) == pytest.approx(10.0)

    def test_factors_positive(self):
        model = NoiseModel(sigma=0.2, straggler_probability=0.1, straggler_slowdown=1.5)
        factors = model.sample_factor(rng=0, size=1000)
        assert np.all(factors > 0)

    def test_median_factor_near_one(self):
        model = NoiseModel(sigma=0.05)
        factors = model.sample_factor(rng=1, size=4000)
        assert np.median(factors) == pytest.approx(1.0, abs=0.02)

    def test_straggler_shifts_mean_up(self):
        clean = NoiseModel(sigma=0.01)
        straggly = NoiseModel(sigma=0.01, straggler_probability=0.5, straggler_slowdown=2.0)
        f_clean = clean.sample_factor(rng=2, size=3000).mean()
        f_straggly = straggly.sample_factor(rng=2, size=3000).mean()
        assert f_straggly > f_clean * 1.2

    def test_for_machine_uses_spec(self):
        aurora = NoiseModel.for_machine(AURORA)
        frontier = NoiseModel.for_machine(FRONTIER)
        assert frontier.sigma > aurora.sigma

    def test_frontier_spread_wider_than_aurora(self):
        a = NoiseModel.for_machine(AURORA).sample_factor(rng=3, size=3000)
        f = NoiseModel.for_machine(FRONTIER).sample_factor(rng=3, size=3000)
        assert np.std(f) > np.std(a)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(sigma=0.1, straggler_probability=1.5)
        with pytest.raises(ValueError):
            NoiseModel(sigma=0.1, straggler_slowdown=0.5)

    def test_apply_rejects_negative_runtime(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma=0.1).apply(-1.0)

    def test_scalar_vs_vector_sampling(self):
        model = NoiseModel(sigma=0.1)
        scalar = model.sample_factor(rng=0)
        vector = model.sample_factor(rng=0, size=3)
        assert np.isscalar(scalar) or isinstance(scalar, float)
        assert vector.shape == (3,)
