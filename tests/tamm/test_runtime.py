"""Tests for the end-to-end CCSD iteration runtime simulator.

These tests pin down the *qualitative* behaviours the ML layer must learn:
strong-scaling with an interior optimum, tile-size sweet spots, memory-driven
minimum node counts, node-hours favouring small allocations, and Frontier
being noisier than Aurora.
"""

import numpy as np
import pytest

from repro.chem.orbitals import ProblemSize
from repro.machines import AURORA, FRONTIER
from repro.tamm.runtime import InfeasibleConfigurationError, TammRuntimeSimulator


@pytest.fixture(scope="module")
def aurora_sim() -> TammRuntimeSimulator:
    return TammRuntimeSimulator(AURORA)


@pytest.fixture(scope="module")
def frontier_sim() -> TammRuntimeSimulator:
    return TammRuntimeSimulator(FRONTIER)


class TestFeasibility:
    def test_min_nodes_increases_with_problem_size(self, aurora_sim):
        small = aurora_sim.min_nodes(ProblemSize(44, 260))
        large = aurora_sim.min_nodes(ProblemSize(146, 1568))
        assert small < large

    def test_frontier_needs_more_nodes_than_aurora(self, aurora_sim, frontier_sim):
        problem = ProblemSize(134, 1200)
        assert frontier_sim.min_nodes(problem) >= aurora_sim.min_nodes(problem)

    def test_infeasible_below_min_nodes(self, aurora_sim):
        problem = ProblemSize(146, 1568)
        lo = aurora_sim.min_nodes(problem)
        with pytest.raises(InfeasibleConfigurationError):
            aurora_sim.check_feasible(problem, lo - 1, 80)
        aurora_sim.check_feasible(problem, lo, 80)  # does not raise

    def test_oversized_tile_rejected(self, aurora_sim):
        problem = ProblemSize(44, 260)
        limit = aurora_sim.max_tile_size(problem)
        assert not aurora_sim.is_feasible(problem, 10, limit + 50)

    def test_nonpositive_inputs_rejected(self, aurora_sim):
        problem = ProblemSize(44, 260)
        with pytest.raises(InfeasibleConfigurationError):
            aurora_sim.check_feasible(problem, 0, 40)
        with pytest.raises(InfeasibleConfigurationError):
            aurora_sim.check_feasible(problem, 5, 0)


class TestRuntimeShape:
    def test_runtime_positive_and_has_floor(self, aurora_sim):
        b = aurora_sim.simulate_iteration(ProblemSize(44, 260), 5, 40, rng=0, apply_noise=False)
        assert b.total_time > AURORA.iteration_base_s

    def test_breakdown_sums_to_total(self, aurora_sim):
        b = aurora_sim.simulate_iteration(ProblemSize(99, 718), 60, 80, rng=0, apply_noise=False)
        parts = b.compute_time + b.comm_time + b.overhead_time + b.imbalance_time + b.fixed_time
        assert b.total_time == pytest.approx(parts, rel=1e-9)

    def test_larger_problem_takes_longer(self, aurora_sim):
        small = aurora_sim.simulate_iteration(ProblemSize(81, 835), 100, 80, rng=0, apply_noise=False)
        large = aurora_sim.simulate_iteration(ProblemSize(235, 1007), 100, 80, rng=0, apply_noise=False)
        assert large.total_time > small.total_time

    def test_strong_scaling_then_saturation(self, aurora_sim):
        """Runtime first drops with nodes, then rises again (interior optimum)."""
        problem = ProblemSize(116, 840)
        nodes = [10, 40, 100, 400, 900]
        times = [
            aurora_sim.simulate_iteration(problem, n, 80, rng=0, apply_noise=False).total_time
            for n in nodes
        ]
        assert times[1] < times[0]
        assert times[-1] > min(times)

    def test_tile_size_has_interior_optimum(self, aurora_sim):
        problem = ProblemSize(116, 840)
        tiles = [40, 80, 150]
        times = [
            aurora_sim.simulate_iteration(problem, 40, t, rng=0, apply_noise=False).total_time
            for t in tiles
        ]
        assert times[1] < times[0]
        assert times[1] < times[2]

    def test_node_hours_favour_small_allocations(self, aurora_sim):
        problem = ProblemSize(116, 840)
        lo = aurora_sim.simulate_iteration(problem, 10, 100, rng=0, apply_noise=False)
        hi = aurora_sim.simulate_iteration(problem, 400, 100, rng=0, apply_noise=False)
        assert lo.node_hours < hi.node_hours

    def test_node_seconds_consistency(self, aurora_sim):
        b = aurora_sim.simulate_iteration(ProblemSize(99, 718), 60, 80, rng=0)
        assert b.node_seconds == pytest.approx(b.noisy_time * 60)
        assert b.node_hours == pytest.approx(b.node_seconds / 3600)

    def test_noise_reproducible_and_bounded(self, frontier_sim):
        problem = ProblemSize(116, 840)
        a = frontier_sim.simulate_iteration(problem, 50, 80, rng=7).noisy_time
        b = frontier_sim.simulate_iteration(problem, 50, 80, rng=7).noisy_time
        c = frontier_sim.simulate_iteration(problem, 50, 80, rng=8).noisy_time
        assert a == b
        assert a != c

    def test_frontier_noise_spread_exceeds_aurora(self, aurora_sim, frontier_sim):
        problem = ProblemSize(116, 840)
        aurora_times = [
            aurora_sim.simulate_iteration(problem, 50, 80, rng=i).noisy_time for i in range(40)
        ]
        frontier_times = [
            frontier_sim.simulate_iteration(problem, 50, 80, rng=i).noisy_time for i in range(40)
        ]
        rel_a = np.std(aurora_times) / np.mean(aurora_times)
        rel_f = np.std(frontier_times) / np.mean(frontier_times)
        assert rel_f > rel_a

    def test_sampled_fidelity_close_to_analytic(self):
        analytic = TammRuntimeSimulator(AURORA, fidelity="analytic")
        sampled = TammRuntimeSimulator(AURORA, fidelity="sampled")
        problem = ProblemSize(99, 718)
        a = analytic.simulate_iteration(problem, 60, 80, rng=0, apply_noise=False).total_time
        s = sampled.simulate_iteration(problem, 60, 80, rng=0, apply_noise=False).total_time
        assert s == pytest.approx(a, rel=0.5)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            TammRuntimeSimulator(AURORA, comm_overlap=1.5)
        with pytest.raises(ValueError):
            TammRuntimeSimulator(AURORA, fidelity="exact")


class TestNodeRange:
    def test_range_respects_memory_lower_bound(self, aurora_sim):
        problem = ProblemSize(146, 1568)
        nodes = aurora_sim.node_range(problem)
        assert min(nodes) >= aurora_sim.min_nodes(problem)

    def test_small_problem_gets_small_allocations(self, aurora_sim):
        small_nodes = aurora_sim.node_range(ProblemSize(44, 260))
        big_nodes = aurora_sim.node_range(ProblemSize(235, 1007))
        assert min(small_nodes) <= 10
        assert max(big_nodes) > max(small_nodes)

    def test_custom_candidates_filtered(self, aurora_sim):
        nodes = aurora_sim.node_range(ProblemSize(99, 718), candidate_nodes=[1, 2, 50, 100000])
        assert 50 in nodes
        assert 100000 not in nodes
