"""Tests for the problem-size catalogue used in the paper's evaluation."""

import pytest

from repro.chem.molecules import (
    AURORA_PROBLEM_SIZES,
    FRONTIER_PROBLEM_SIZES,
    problem_catalogue,
)


class TestCatalogue:
    def test_aurora_has_22_problem_sizes(self):
        assert len(AURORA_PROBLEM_SIZES) == 22

    def test_frontier_has_20_problem_sizes(self):
        assert len(FRONTIER_PROBLEM_SIZES) == 20

    def test_paper_examples_present(self):
        aurora_pairs = {(m.n_occupied, m.n_virtual) for m in AURORA_PROBLEM_SIZES}
        assert (44, 260) in aurora_pairs
        assert (146, 1568) in aurora_pairs
        assert (345, 791) in aurora_pairs
        frontier_pairs = {(m.n_occupied, m.n_virtual) for m in FRONTIER_PROBLEM_SIZES}
        assert (49, 663) in frontier_pairs
        assert (146, 1568) not in frontier_pairs

    def test_no_duplicates(self):
        pairs = [(m.n_occupied, m.n_virtual) for m in AURORA_PROBLEM_SIZES]
        assert len(pairs) == len(set(pairs))

    def test_labels_carry_signature(self):
        m = AURORA_PROBLEM_SIZES[0]
        assert str(m.n_occupied) in m.label and str(m.n_virtual) in m.label

    def test_catalogue_lookup(self):
        assert problem_catalogue("Aurora") is AURORA_PROBLEM_SIZES
        assert problem_catalogue("frontier") is FRONTIER_PROBLEM_SIZES
        with pytest.raises(ValueError):
            problem_catalogue("summit")
