"""Tests for the CCSD flop/memory cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.ccsd_cost import (
    CCSD_TERMS,
    ContractionTerm,
    ccsd_iteration_flops,
    ccsd_memory_bytes,
    term_flops,
)
from repro.chem.orbitals import ProblemSize


class TestTerms:
    def test_pp_ladder_dominates_for_large_v(self):
        problem = ProblemSize(100, 1000)
        flops = {t.name: t.flops(problem) for t in CCSD_TERMS}
        assert max(flops, key=flops.get) == "pp_ladder"

    def test_term_flops_formula(self):
        term = ContractionTerm("test", o_power=2, v_power=3, coefficient=4.0)
        assert term_flops(term, ProblemSize(10, 100)) == pytest.approx(4.0 * 100 * 1e6)

    def test_total_is_sum_of_terms(self):
        problem = ProblemSize(50, 500)
        assert ccsd_iteration_flops(problem) == pytest.approx(
            sum(t.flops(problem) for t in CCSD_TERMS)
        )

    def test_total_at_least_twice_o2v4(self):
        # The coefficient of the pp ladder alone is 2, so the iteration must
        # cost at least 2 * O^2 V^4.
        problem = ProblemSize(100, 800)
        assert ccsd_iteration_flops(problem) >= 2.0 * problem.scaling_estimate()

    @given(st.integers(2, 300), st.integers(2, 300))
    @settings(max_examples=40, deadline=None)
    def test_flops_monotone_in_problem_size(self, o, dv):
        small = ProblemSize(o, o + dv)
        big = ProblemSize(o + 1, o + dv + 1)
        assert ccsd_iteration_flops(big) > ccsd_iteration_flops(small)


class TestMemory:
    def test_memory_positive_and_monotone(self):
        small = ccsd_memory_bytes(ProblemSize(40, 300))
        big = ccsd_memory_bytes(ProblemSize(80, 600))
        assert 0 < small < big

    def test_vvvv_storage_dominates_large_basis(self):
        problem = ProblemSize(100, 1500)
        with_vvvv = ccsd_memory_bytes(problem, store_vvvv=True)
        without = ccsd_memory_bytes(problem, store_vvvv=False)
        assert with_vvvv > 2 * without

    def test_t2_lower_bound(self):
        problem = ProblemSize(100, 1000)
        assert ccsd_memory_bytes(problem) >= 2 * 8 * problem.t2_amplitudes

    def test_cholesky_factor_scales_three_index_storage(self):
        problem = ProblemSize(50, 400)
        assert ccsd_memory_bytes(problem, cholesky_factor=6.0) > ccsd_memory_bytes(
            problem, cholesky_factor=3.0
        )
