"""Tests for the CCSD problem-size abstraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.orbitals import ProblemSize


class TestProblemSize:
    def test_basic_properties(self):
        p = ProblemSize(44, 260)
        assert p.n_orbitals == 304
        assert p.n_electrons == 88
        assert p.t1_amplitudes == 44 * 260
        assert p.t2_amplitudes == 44**2 * 260**2

    def test_scaling_estimate_is_o2v4(self):
        p = ProblemSize(10, 100)
        assert p.scaling_estimate() == pytest.approx(100 * 1e8)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ProblemSize(0, 100)
        with pytest.raises(ValueError):
            ProblemSize(10, 0)
        with pytest.raises(ValueError, match="swap"):
            ProblemSize(100, 10)

    def test_frozen_and_hashable(self):
        p = ProblemSize(10, 20)
        assert {p: 1}[ProblemSize(10, 20)] == 1
        with pytest.raises(Exception):
            p.n_occupied = 5  # type: ignore[misc]

    def test_as_tuple(self):
        assert ProblemSize(5, 50).as_tuple() == (5, 50)

    @given(st.integers(1, 400), st.integers(0, 2000))
    @settings(max_examples=50, deadline=None)
    def test_scaling_monotone_in_virtuals(self, o, dv):
        p1 = ProblemSize(o, o)
        p2 = ProblemSize(o, o + dv)
        assert p2.scaling_estimate() >= p1.scaling_estimate()
