"""Tests for the CV-split / feature-matrix caches in ``repro.parallel.cache``."""

import numpy as np
import pytest

from repro.ml.model_selection import KFold
from repro.parallel.cache import (
    array_token,
    cache_stats,
    candidate_eval_get,
    candidate_eval_put,
    clear_caches,
    cv_splits,
    feature_moments,
    feature_presort,
    splits_token,
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture()
def X():
    rng = np.random.default_rng(3)
    return rng.uniform(0.0, 10.0, size=(60, 4))


class TestCvSplitCache:
    def test_cache_hit_returns_identical_arrays(self, X):
        first = cv_splits(X, cv=3)
        second = cv_splits(X, cv=3)
        assert len(first) == len(second) == 3
        for (tr1, te1), (tr2, te2) in zip(first, second):
            assert tr1 is tr2 and te1 is te2
        assert cache_stats()["cv_splits"]["hits"] == 1

    def test_keyed_on_dataset_content(self, X):
        cv_splits(X, cv=3)
        cv_splits(X + 1.0, cv=3)
        assert cache_stats()["cv_splits"]["misses"] == 2

    def test_keyed_on_cv_config(self, X):
        cv_splits(X, cv=3)
        cv_splits(X, cv=4)
        cv_splits(X, cv=KFold(n_splits=3, shuffle=True, random_state=0))
        cv_splits(X, cv=KFold(n_splits=3, shuffle=True, random_state=1))
        stats = cache_stats()["cv_splits"]
        assert stats["misses"] == 4 and stats["hits"] == 0

    def test_seeded_shuffle_split_is_reproduced(self, X):
        a = cv_splits(X, cv=KFold(n_splits=4, shuffle=True, random_state=42))
        b = cv_splits(X, cv=KFold(n_splits=4, shuffle=True, random_state=42))
        for (tr1, te1), (tr2, te2) in zip(a, b):
            assert np.array_equal(tr1, tr2) and np.array_equal(te1, te2)
        assert cache_stats()["cv_splits"]["hits"] == 1

    def test_mutation_cannot_poison_the_cache(self, X):
        splits = cv_splits(X, cv=3)
        train0 = splits[0][0]
        with pytest.raises(ValueError):
            train0[0] = 999
        # A mutable copy works and later hits still return the pristine data.
        mutable = train0.copy()
        mutable[0] = 999
        again = cv_splits(X, cv=3)
        assert again[0][0][0] != 999
        assert np.array_equal(again[0][0], train0)

    def test_generator_random_state_bypasses_cache(self, X):
        gen_cv = KFold(n_splits=3, shuffle=True, random_state=np.random.default_rng(0))
        cv_splits(X, cv=gen_cv)
        stats = cache_stats()["cv_splits"]
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_splits_cover_all_samples(self, X):
        splits = cv_splits(X, cv=5)
        test_all = np.sort(np.concatenate([te for _, te in splits]))
        assert np.array_equal(test_all, np.arange(len(X)))


class TestFeatureCaches:
    def test_moments_match_manual(self, X):
        mean, scale = feature_moments(X)
        assert np.array_equal(mean, X.mean(axis=0))
        assert np.array_equal(scale, X.std(axis=0))
        mean2, scale2 = feature_moments(X.copy())  # same content, new object
        assert mean is mean2 and scale is scale2

    def test_moments_zero_variance_clamped(self):
        X = np.ones((10, 2))
        _, scale = feature_moments(X)
        assert np.array_equal(scale, np.ones(2))

    def test_moments_read_only(self, X):
        mean, _ = feature_moments(X)
        with pytest.raises(ValueError):
            mean[0] = 123.0

    def test_presort_matches_argsort_and_is_shared(self, X):
        presort = feature_presort(X)
        assert np.array_equal(presort, np.argsort(X, axis=0, kind="stable"))
        assert feature_presort(X.copy()) is presort
        with pytest.raises(ValueError):
            presort[0, 0] = -1

    def test_array_token_distinguishes_dtype_and_shape(self):
        a = np.arange(6, dtype=np.float64)
        assert array_token(a) != array_token(a.astype(np.float32))
        assert array_token(a.reshape(2, 3)) != array_token(a.reshape(3, 2))


class TestCandidateCache:
    def test_round_trip_and_stats(self, X):
        key = ("Model", (("alpha", 1.0),), array_token(X), "r2")
        assert candidate_eval_get(key) is None
        candidate_eval_put(key, (0.5, 0.1, 0.01))
        assert candidate_eval_get(key) == (0.5, 0.1, 0.01)
        stats = cache_stats()["candidate_eval"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_splits_token_depends_on_indices(self, X):
        a = splits_token(cv_splits(X, cv=3))
        clear_caches()
        b = splits_token(cv_splits(X, cv=3))
        c = splits_token(cv_splits(X, cv=4))
        assert a == b
        assert a != c


class TestStoreBackedCandidateCache:
    """The candidate memo reads/writes through the cross-process store."""

    @pytest.fixture(autouse=True)
    def _store(self, tmp_path):
        from repro.parallel.store import configure_store

        self.store = configure_store(tmp_path / "memo")
        clear_caches()
        yield
        configure_store(None)
        clear_caches()

    def test_put_writes_through_and_get_reads_through(self, X):
        from repro.parallel.cache import _CANDIDATE_CACHE

        key = ("Model", (("alpha", 1.0),), array_token(X), "r2")
        candidate_eval_put(key, (0.5, 0.1))
        assert self.store.stats()["puts"] == 1
        # Drop only the in-process LRU: the next get must fall through to
        # the store and repopulate the LRU.
        _CANDIDATE_CACHE.clear()
        assert candidate_eval_get(key) == (0.5, 0.1)
        assert self.store.stats()["hits"] == 1
        # Second get is served from the repopulated LRU, not the store.
        assert candidate_eval_get(key) == (0.5, 0.1)
        assert self.store.stats()["hits"] == 1

    def test_cache_stats_reports_store_counters(self, X):
        key = ("Model", (("alpha", 2.0),), array_token(X), "r2")
        assert candidate_eval_get(key) is None  # LRU miss + store miss
        candidate_eval_put(key, (0.25, 0.05))
        stats = cache_stats()
        assert stats["memo_store"]["misses"] == 1
        assert stats["memo_store"]["puts"] == 1
        assert stats["memo_store"]["objects"] == 1

    def test_clear_caches_resets_store_counters_but_keeps_objects(self, X):
        key = ("Model", (("alpha", 3.0),), array_token(X), "r2")
        candidate_eval_put(key, (0.75, 0.01))
        clear_caches()
        stats = cache_stats()["memo_store"]
        assert stats["hits"] == stats["misses"] == stats["puts"] == 0
        assert stats["objects"] == 1  # persistence survives a cache clear
        assert candidate_eval_get(key) == (0.75, 0.01)

    def test_multiprocess_counters_aggregate_coherently(self, X):
        """Parent-process LRU counters alone undercount pool runs; the
        store's per-process snapshots restore a coherent total."""
        from repro.ml.search import GridSearchCV
        from repro.ml.tree import DecisionTreeRegressor
        from repro.parallel.store import fit_count

        rng = np.random.default_rng(0)
        y = X @ np.asarray([1.0, -1.0, 0.5, 2.0]) + rng.normal(0.0, 0.1, len(X))
        grid = {"max_depth": [2, 3], "min_samples_leaf": [1, 2]}
        search = GridSearchCV(
            DecisionTreeRegressor(random_state=0), grid, cv=3, n_jobs=2
        )
        search.fit(X, y)

        agg = self.store.aggregated_stats()
        # 4 candidates x 3 folds in workers, plus the parent's refit.
        assert agg["fits"] == 4 * 3 + 1
        assert agg["store"]["puts"] == 4
        assert agg["caches"]["candidate_eval"]["misses"] >= 4
        # The candidate evaluations all ran in pool workers, so the parent's
        # own counters see none of them — the aggregate is the fix.
        assert fit_count() == 1  # parent recorded only the refit
        assert cache_stats()["candidate_eval"]["misses"] == 0
