"""Tests for the cluster executor (``repro.parallel.cluster``).

The ISSUE 7 contract, bottom to top:

* **Scheduling** — results in task order regardless of completion order,
  task exceptions propagate unchanged, batches reuse one dispatcher and
  its connected workers.
* **Failure model** — a worker that dies mid-task is reaped by heartbeat
  silence and its tasks re-dispatched to survivors; a stuck worker's
  unacknowledged task is duplicated onto an idle one (first result wins);
  stale results from an abandoned batch are discarded.
* **Degradation** — no reachable worker, an unbindable dispatcher URL, or
  an un-picklable batch all land on the bit-identical serial path; a
  missing or malformed ``REPRO_CLUSTER_URL`` is a loud config error.
* **End to end** — real ``repro-chem cluster-work`` subprocess workers run
  ``run_model_comparison`` byte-identically to the serial path, and a
  worker SIGKILLed mid-sweep does not change the answer (the CI ``cluster``
  job repeats this across real machines-worth of processes with a shared
  ``memo://`` store).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.parallel import cluster as cluster_mod
from repro.parallel.backend import parallel_map
from repro.parallel.cluster import (
    CLUSTER_URL_ENV,
    ClusterExecutor,
    ClusterWorker,
    ensure_dispatcher,
    parse_cluster_url,
    shutdown_dispatchers,
)
from repro.parallel.executors import (
    ExecutorUnavailableError,
    available_executors,
    get_executor,
)
from repro.parallel.wire import pack_str, read_frame, write_frame


@pytest.fixture(autouse=True)
def _clean_cluster_state(monkeypatch):
    monkeypatch.delenv(CLUSTER_URL_ENV, raising=False)
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    yield
    shutdown_dispatchers()


def _square(task):
    return task * task


def _boom(task):
    if task == "bad":
        raise ValueError("task went bad")
    return task


def _slow_square(task):
    time.sleep(task[1])
    return task[0] * task[0]


def _thread_worker(url, name, **kwargs):
    """An in-process worker on a thread (same scheduling path, no spawn cost)."""
    kwargs.setdefault("poll_interval", 0.01)
    kwargs.setdefault("heartbeat_interval", 0.2)
    kwargs.setdefault("reconnect_window", 10.0)
    worker = ClusterWorker(url, name=name, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


class TestRegistryIntegration:
    def test_cluster_is_lazily_registered(self):
        assert "cluster" in available_executors()
        assert isinstance(get_executor("cluster"), ClusterExecutor)

    def test_missing_url_is_a_loud_config_error(self):
        with pytest.raises(ValueError, match="REPRO_CLUSTER_URL"):
            ClusterExecutor().map(_square, [1, 2], order=[0, 1], n_workers=2)

    @pytest.mark.parametrize(
        "bad", ["cluster://", "cluster://hostonly", "http://h:80", "cluster://h:nan"]
    )
    def test_malformed_url_is_a_loud_config_error(self, bad, monkeypatch):
        monkeypatch.setenv(CLUSTER_URL_ENV, bad)
        with pytest.raises(ValueError):
            ClusterExecutor().map(_square, [1, 2], order=[0, 1], n_workers=2)

    def test_parse_accepts_ephemeral_port_only_when_asked(self):
        assert parse_cluster_url("cluster://127.0.0.1:0", allow_ephemeral=True) == (
            "127.0.0.1",
            0,
        )
        with pytest.raises(ValueError):
            parse_cluster_url("cluster://127.0.0.1:0")


class TestInProcessScheduling:
    def test_results_in_task_order_and_exceptions_propagate(self):
        dispatcher = ensure_dispatcher("cluster://127.0.0.1:0")
        workers = [_thread_worker(dispatcher.url, f"w{i}")[0] for i in range(2)]
        try:
            executor = ClusterExecutor(url=dispatcher.url, worker_wait=10.0)
            tasks = list(range(8))
            got = executor.map(
                _square, tasks, order=list(reversed(range(8))), n_workers=2
            )
            assert got == [t * t for t in tasks]
            # A task exception is the caller's, unchanged in type and text.
            with pytest.raises(ValueError, match="task went bad"):
                executor.map(
                    _boom, ["ok", "bad", "ok"], order=[0, 1, 2], n_workers=2
                )
            # The dispatcher and its workers survive both batches.
            got = executor.map(_square, [5, 6], order=[0, 1], n_workers=2)
            assert got == [25, 36]
            stats = dispatcher.stats()
            assert stats["batches_done"] == 3
            assert len(stats["workers"]) == 2
        finally:
            for worker in workers:
                worker.stop()

    def test_ensure_dispatcher_caches_per_bound_url(self):
        dispatcher = ensure_dispatcher("cluster://127.0.0.1:0")
        assert ensure_dispatcher(dispatcher.url) is dispatcher

    def test_dead_worker_tasks_are_redispatched(self):
        """A worker that takes a task and goes silent is reaped on heartbeat
        timeout and its task re-queued for the survivor."""
        dispatcher = ensure_dispatcher(
            "cluster://127.0.0.1:0", heartbeat_timeout=0.5
        )
        # The fake worker speaks just enough protocol to steal one task.
        sock = socket.create_connection((dispatcher.host, dispatcher.port), timeout=5.0)
        rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
        write_frame(wfile, b"W" + pack_str("zombie"))
        response = read_frame(rfile)
        assert response[:1] == b"+"
        zombie_id = response[3:].decode()

        stolen = threading.Event()

        def steal_one_task():
            while not stolen.is_set():
                write_frame(wfile, b"T" + pack_str(zombie_id))
                if read_frame(rfile)[:1] == b"+":
                    stolen.set()  # got a task; now go silent forever
                    return
                time.sleep(0.01)

        thief = threading.Thread(target=steal_one_task, daemon=True)
        thief.start()
        executor = ClusterExecutor(url=dispatcher.url, worker_wait=10.0)
        batch_result = []
        runner = threading.Thread(
            target=lambda: batch_result.append(
                executor.map(_square, [2, 3, 4], order=[0, 1, 2], n_workers=2)
            ),
            daemon=True,
        )
        runner.start()
        # Only the zombie is connected, so it necessarily steals a task;
        # the survivor starts after the theft and must finish everything.
        assert stolen.wait(timeout=10.0)
        worker, _ = _thread_worker(dispatcher.url, "survivor")
        try:
            runner.join(timeout=20.0)
            assert batch_result == [[4, 9, 16]]
            stats = dispatcher.stats()
            assert stats["tasks_redispatched"] >= 1
            assert "zombie#1" not in stats["workers"]  # reaped as dead
        finally:
            stolen.set()
            worker.stop()
            sock.close()

    def test_stale_generation_results_are_discarded(self):
        dispatcher = ensure_dispatcher("cluster://127.0.0.1:0")
        worker, _ = _thread_worker(dispatcher.url, "w")
        try:
            sock = socket.create_connection(
                (dispatcher.host, dispatcher.port), timeout=5.0
            )
            rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
            write_frame(wfile, b"W" + pack_str("late"))
            late_id = read_frame(rfile)[3:].decode()
            # A result for generation 0 (no batch ever ran under it) must be
            # swallowed without poisoning the next real batch.
            write_frame(
                wfile, b"R" + pack_str(late_id) + pack_str("0:0") + b"+" + b"garbage"
            )
            assert read_frame(rfile)[:1] == b"+"
            executor = ClusterExecutor(url=dispatcher.url, worker_wait=10.0)
            assert executor.map(_square, [7], order=[0], n_workers=2) == [49]
            sock.close()
        finally:
            worker.stop()

    def test_straggler_task_is_duplicated_and_first_result_wins(self):
        """With the queue drained and one slow assignment outstanding, an
        idle worker gets a duplicate; the batch completes on whichever
        finishes first."""
        dispatcher = ensure_dispatcher(
            "cluster://127.0.0.1:0", heartbeat_timeout=5.0, straggler_after=0.3
        )
        workers = [_thread_worker(dispatcher.url, f"w{i}")[0] for i in range(2)]
        try:
            executor = ClusterExecutor(url=dispatcher.url, worker_wait=10.0)
            # Task 0 sleeps long enough to be declared a straggler; the
            # other worker, idle after finishing task 1, duplicates it.
            got = executor.map(
                _slow_square, [(3, 1.2), (2, 0.0)], order=[0, 1], n_workers=2
            )
            assert got == [9, 4]
            assert dispatcher.stats()["tasks_redispatched"] >= 1
        finally:
            for worker in workers:
                worker.stop()


class TestSerialDegradation:
    def test_no_reachable_worker_degrades_to_serial(self):
        dispatcher = ensure_dispatcher("cluster://127.0.0.1:0")
        executor = ClusterExecutor(url=dispatcher.url, worker_wait=0.3)
        with pytest.raises(ExecutorUnavailableError, match="no cluster worker"):
            executor.map(_square, [1, 2], order=[0, 1], n_workers=2)
        # Through ParallelMap the same failure is invisible: serial fallback.
        assert parallel_map(_square, [1, 2, 3], n_jobs=2, executor=executor) == [
            1,
            4,
            9,
        ]

    def test_unbindable_dispatcher_degrades_to_serial(self):
        # TEST-NET-1 (RFC 5737) is guaranteed not to be a local interface,
        # so binding the dispatcher there fails — the "unreachable
        # dispatcher" of the acceptance criteria.
        executor = ClusterExecutor(url="cluster://192.0.2.1:7701", worker_wait=0.3)
        with pytest.raises(ExecutorUnavailableError, match="cannot bind"):
            executor.map(_square, [1, 2], order=[0, 1], n_workers=2)
        assert parallel_map(_square, [4, 5], n_jobs=2, executor=executor) == [16, 25]

    def test_unpicklable_batch_routes_to_serial_before_the_wire(self):
        dispatcher = ensure_dispatcher("cluster://127.0.0.1:0")
        executor = ClusterExecutor(url=dispatcher.url, worker_wait=0.3)
        double = lambda task: task * 2  # noqa: E731 - deliberately unpicklable
        assert not executor.supports(double, [1])
        assert parallel_map(double, [1, 2], n_jobs=2, executor=executor) == [2, 4]


def _env(extra_pythonpath=None):
    env = dict(os.environ)
    parts = [str(Path(repro.__file__).resolve().parents[1])]
    if extra_pythonpath:
        parts.append(str(extra_pythonpath))
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    env.pop(CLUSTER_URL_ENV, None)
    env.pop("REPRO_EXECUTOR", None)
    return env


def _spawn_worker(url, name, *, extra_pythonpath=None, heartbeat_interval=0.2):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "cluster-work",
            "--dispatcher", url,
            "--name", name,
            "--heartbeat-interval", str(heartbeat_interval),
            "--idle-exit", "60",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(extra_pythonpath),
    )
    banner = proc.stdout.readline()
    assert "cluster-work:" in banner and "serving" in banner, banner
    return proc


class TestDispatcherStatus:
    """The STATS observer opcode and the ``cluster-status`` CLI verb."""

    def test_status_reads_live_counters_from_outside(self):
        dispatcher = ensure_dispatcher("cluster://127.0.0.1:0")
        # Quiet dispatcher first: the remote read IS the local snapshot.
        assert cluster_mod.dispatcher_status(dispatcher.url) == dispatcher.stats()
        worker, _thread = _thread_worker(dispatcher.url, name="obs-w0")
        try:
            _wait_for_workers(dispatcher, 1, timeout=10.0)
            workers = cluster_mod.dispatcher_status(dispatcher.url)["workers"]
            assert any(name.startswith("obs-w0") for name in workers)
        finally:
            worker.stop()

    def test_dead_dispatcher_is_a_connection_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(ConnectionError, match="no cluster dispatcher"):
            cluster_mod.dispatcher_status(
                f"cluster://127.0.0.1:{free_port}", timeout=1.0
            )

    def test_cli_verb_prints_stats_json(self):
        import json as json_mod

        dispatcher = ensure_dispatcher("cluster://127.0.0.1:0")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "cluster-status",
             "--dispatcher", dispatcher.url],
            capture_output=True,
            text=True,
            timeout=30,
            env={**os.environ, "PYTHONPATH": str(Path(repro.__file__).parents[1])},
        )
        assert proc.returncode == 0, proc.stderr
        stats = json_mod.loads(proc.stdout)
        assert stats["workers"] == []
        assert stats["batches_done"] == 0

    def test_cli_verb_fails_cleanly_without_a_dispatcher(self):
        env = {**os.environ, "PYTHONPATH": str(Path(repro.__file__).parents[1])}
        env.pop(CLUSTER_URL_ENV, None)
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        dead = subprocess.run(
            [sys.executable, "-m", "repro.cli", "cluster-status",
             "--dispatcher", f"cluster://127.0.0.1:{free_port}",
             "--timeout", "1"],
            capture_output=True,
            text=True,
            timeout=30,
            env=env,
        )
        assert dead.returncode == 1
        assert "no cluster dispatcher" in dead.stderr + dead.stdout
        unconfigured = subprocess.run(
            [sys.executable, "-m", "repro.cli", "cluster-status"],
            capture_output=True,
            text=True,
            timeout=30,
            env=env,
        )
        assert unconfigured.returncode == 2


def _wait_for_workers(dispatcher, n, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(dispatcher.stats()["workers"]) >= n:
            return
        time.sleep(0.05)
    raise AssertionError(f"fleet never reached {n} workers: {dispatcher.stats()}")


_TASK_MODULE = """\
import time


def slow_square(task):
    time.sleep(task[1])
    return task[0] * task[0]
"""


@pytest.mark.slow
class TestSubprocessWorkers:
    def test_worker_killed_mid_sweep_still_completes(self, tmp_path):
        """SIGKILL one of two real worker processes mid-batch: heartbeat
        reaping must re-dispatch its in-flight task and the batch must
        complete with the right answers."""
        taskdir = tmp_path / "taskmod"
        taskdir.mkdir()
        (taskdir / "cluster_tasks_t7.py").write_text(_TASK_MODULE)
        sys.path.insert(0, str(taskdir))
        try:
            import cluster_tasks_t7

            dispatcher = ensure_dispatcher(
                "cluster://127.0.0.1:0", heartbeat_timeout=1.0
            )
            victim = _spawn_worker(dispatcher.url, "victim", extra_pythonpath=taskdir)
            steady = _spawn_worker(dispatcher.url, "steady", extra_pythonpath=taskdir)
            try:
                _wait_for_workers(dispatcher, 2)
                tasks = [(i, 0.4) for i in range(6)]
                executor = ClusterExecutor(url=dispatcher.url, worker_wait=30.0)

                def kill_victim_mid_batch():
                    # Wait until the batch is genuinely in flight, then kill.
                    deadline = time.monotonic() + 20.0
                    while time.monotonic() < deadline:
                        stats = dispatcher.stats()
                        if stats["batch_active"] and stats["tasks_assigned"] >= 2:
                            break
                        time.sleep(0.02)
                    victim.send_signal(signal.SIGKILL)

                killer = threading.Thread(target=kill_victim_mid_batch, daemon=True)
                killer.start()
                got = executor.map(
                    cluster_tasks_t7.slow_square,
                    tasks,
                    order=list(range(len(tasks))),
                    n_workers=2,
                )
                killer.join(timeout=30.0)
                assert got == [i * i for i in range(6)]
                assert victim.wait(timeout=10.0) is not None
                stats = dispatcher.stats()
                assert stats["tasks_redispatched"] >= 1
                assert [w for w in stats["workers"] if w.startswith("victim")] == []
            finally:
                for proc in (victim, steady):
                    if proc.poll() is None:
                        proc.terminate()
                        proc.wait(timeout=10.0)
        finally:
            sys.path.remove(str(taskdir))
            sys.modules.pop("cluster_tasks_t7", None)

    def test_model_comparison_is_byte_identical_to_serial(
        self, small_aurora_dataset, monkeypatch
    ):
        """The acceptance bar: REPRO_EXECUTOR=cluster run of
        run_model_comparison against real subprocess workers == cold serial."""
        from repro.core.hyperopt import run_model_comparison
        from repro.parallel import clear_caches, configure_store

        sweep = dict(
            models=["PR", "DT"],
            strategies=("GridSearchCV", "RandomizedSearchCV"),
            scale="fast",
            cv=3,
            max_train_samples=50,
            seed=0,
        )

        def comparable(results):
            return [
                {k: v for k, v in r.as_dict().items() if k != "search_time_s"}
                for r in results
            ]

        configure_store(None)
        clear_caches()
        serial = run_model_comparison(small_aurora_dataset, n_jobs=1, **sweep)

        dispatcher = ensure_dispatcher("cluster://127.0.0.1:0")
        workers = [_spawn_worker(dispatcher.url, f"mc{i}") for i in range(2)]
        try:
            _wait_for_workers(dispatcher, 2)
            monkeypatch.setenv("REPRO_EXECUTOR", "cluster")
            monkeypatch.setenv(CLUSTER_URL_ENV, dispatcher.url)
            clear_caches()
            clustered = run_model_comparison(small_aurora_dataset, n_jobs=2, **sweep)
            assert comparable(clustered) == comparable(serial)
            assert dispatcher.stats()["batches_done"] >= 1
        finally:
            for proc in workers:
                if proc.poll() is None:
                    proc.terminate()
                    proc.wait(timeout=10.0)
