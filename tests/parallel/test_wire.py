"""Tests for the shared framing module (``repro.parallel.wire``).

The framing contract has a single source of truth consumed by both the memo
service and the serve service; these tests pin the helpers directly, plus
the fact that both services actually import them (no drifted copies).
"""

import io

import pytest

from repro.parallel import service, wire
from repro.parallel.wire import (
    LEN,
    MAX_FRAME,
    ProtocolError,
    pack_str,
    parse_hostport_url,
    read_exact,
    read_frame,
    unpack_str,
    write_frame,
)


class TestStrFields:
    def test_round_trip(self):
        payload = pack_str("hello") + pack_str("wörld")
        value, offset = unpack_str(payload, 0)
        assert value == "hello"
        value, offset = unpack_str(payload, offset)
        assert value == "wörld"
        assert offset == len(payload)

    def test_truncated_length_prefix_raises(self):
        with pytest.raises(ProtocolError):
            unpack_str(b"\x00", 0)

    def test_truncated_body_raises(self):
        blob = pack_str("hello")[:-2]
        with pytest.raises(ProtocolError):
            unpack_str(blob, 0)

    def test_oversized_string_raises(self):
        with pytest.raises(ProtocolError):
            pack_str("x" * 0x10000)


class TestFrames:
    def test_round_trip(self):
        buf = io.BytesIO()
        write_frame(buf, b"payload-bytes")
        buf.seek(0)
        assert read_frame(buf) == b"payload-bytes"

    def test_short_read_is_a_dead_peer(self):
        buf = io.BytesIO(LEN.pack(100) + b"only-a-few")
        with pytest.raises(ProtocolError):
            read_frame(buf)

    def test_zero_length_frame_rejected(self):
        buf = io.BytesIO(LEN.pack(0))
        with pytest.raises(ProtocolError):
            read_frame(buf)

    def test_oversized_length_rejected_before_allocation(self):
        buf = io.BytesIO(LEN.pack(MAX_FRAME + 1))
        with pytest.raises(ProtocolError):
            read_frame(buf)

    def test_read_exact_reassembles_chunks(self):
        class Dribble:
            def __init__(self, data):
                self.data = data

            def read(self, n):
                take, self.data = self.data[:1], self.data[1:]
                return take

        assert read_exact(Dribble(b"abcdef"), 6) == b"abcdef"


class TestUrlParsing:
    def test_round_trip(self):
        assert parse_hostport_url("x://h:80", "x://") == ("h", 80)
        assert parse_hostport_url("x://h:80/", "x://") == ("h", 80)

    @pytest.mark.parametrize(
        "bad", ["x://", "x://hostonly", "x://h:nan", "x://h:0", "x://h:99999", "y://h:80"]
    )
    def test_junk_is_a_loud_config_error(self, bad):
        with pytest.raises(ValueError):
            parse_hostport_url(bad, "x://")


class TestSingleSourceOfTruth:
    def test_memo_service_consumes_wire(self):
        # The memo service's historical private names must be the wire
        # objects themselves, not drifted copies of the framing contract.
        assert service._LEN is wire.LEN
        assert service._MAX_FRAME == wire.MAX_FRAME
        assert service._pack_str is wire.pack_str
        assert service._ProtocolError is wire.ProtocolError

    def test_serve_service_consumes_wire(self):
        from repro.serve import client as serve_client
        from repro.serve import server as serve_server

        assert serve_server.FrameService is wire.FrameService
        assert serve_client.read_frame is wire.read_frame
        assert serve_client.write_frame is wire.write_frame
        assert serve_client.MAX_FRAME == wire.MAX_FRAME
