"""Tests for the shared framing module (``repro.parallel.wire``).

The framing contract has a single source of truth consumed by both the memo
service and the serve service; these tests pin the helpers directly, plus
the fact that both services actually import them (no drifted copies).

The hostile-client suite pins the thread-reclamation contract: a client
that connects and goes silent, sends a partial length prefix or a partial
payload, or holds its connection after a response used to park a handler
thread in ``read_exact`` forever.  With per-connection timeouts the thread
must be reclaimed within the configured timeout, a concurrent healthy
client must be unaffected, and the admission guard must shed arrivals past
``max_connections`` instead of queueing threads unboundedly.
"""

import io
import socket
import threading
import time

import pytest

from repro.parallel import service, wire
from repro.parallel.wire import (
    LEN,
    MAX_FRAME,
    FrameService,
    ProtocolError,
    pack_str,
    parse_hostport_url,
    read_exact,
    read_frame,
    unpack_str,
    write_frame,
)


class TestStrFields:
    def test_round_trip(self):
        payload = pack_str("hello") + pack_str("wörld")
        value, offset = unpack_str(payload, 0)
        assert value == "hello"
        value, offset = unpack_str(payload, offset)
        assert value == "wörld"
        assert offset == len(payload)

    def test_truncated_length_prefix_raises(self):
        with pytest.raises(ProtocolError):
            unpack_str(b"\x00", 0)

    def test_truncated_body_raises(self):
        blob = pack_str("hello")[:-2]
        with pytest.raises(ProtocolError):
            unpack_str(blob, 0)

    def test_oversized_string_raises(self):
        with pytest.raises(ProtocolError):
            pack_str("x" * 0x10000)


class TestFrames:
    def test_round_trip(self):
        buf = io.BytesIO()
        write_frame(buf, b"payload-bytes")
        buf.seek(0)
        assert read_frame(buf) == b"payload-bytes"

    def test_short_read_is_a_dead_peer(self):
        buf = io.BytesIO(LEN.pack(100) + b"only-a-few")
        with pytest.raises(ProtocolError):
            read_frame(buf)

    def test_zero_length_frame_rejected(self):
        buf = io.BytesIO(LEN.pack(0))
        with pytest.raises(ProtocolError):
            read_frame(buf)

    def test_oversized_length_rejected_before_allocation(self):
        buf = io.BytesIO(LEN.pack(MAX_FRAME + 1))
        with pytest.raises(ProtocolError):
            read_frame(buf)

    def test_read_exact_reassembles_chunks(self):
        class Dribble:
            def __init__(self, data):
                self.data = data

            def read(self, n):
                take, self.data = self.data[:1], self.data[1:]
                return take

        assert read_exact(Dribble(b"abcdef"), 6) == b"abcdef"


class TestUrlParsing:
    def test_round_trip(self):
        assert parse_hostport_url("x://h:80", "x://") == ("h", 80)
        assert parse_hostport_url("x://h:80/", "x://") == ("h", 80)

    @pytest.mark.parametrize(
        "bad", ["x://", "x://hostonly", "x://h:nan", "x://h:0", "x://h:99999", "y://h:80"]
    )
    def test_junk_is_a_loud_config_error(self, bad):
        with pytest.raises(ValueError):
            parse_hostport_url(bad, "x://")


class _EchoService(FrameService):
    """Minimal framed service: echoes every request payload back."""

    scheme = "echo://"

    def _handle_frame(self, request: bytes) -> bytes:
        return b"+" + request


def _wait_until(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _healthy_echo(service_: FrameService, payload: bytes) -> bytes:
    with socket.create_connection((service_.host, service_.port), timeout=5.0) as sock:
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        write_frame(wfile, payload)
        return read_frame(rfile)


class TestHostileClients:
    """Silent/half-framed clients must not park handler threads forever."""

    TIMEOUT = 0.5

    @pytest.fixture()
    def echo(self):
        with _EchoService(timeout=self.TIMEOUT, max_connections=4) as service_:
            yield service_

    def _assert_reclaimed(self, echo, sock):
        # The handler thread exists while the connection is open...
        assert _wait_until(lambda: echo.open_connections == 1)
        baseline = threading.active_count()
        # ...and once the timeout fires the server must close the
        # connection (our end sees EOF) and reclaim the thread.
        sock.settimeout(self.TIMEOUT * 8)
        assert sock.recv(1) == b""
        assert _wait_until(lambda: echo.open_connections == 0)
        assert _wait_until(lambda: threading.active_count() < baseline)

    def test_silent_connection_is_reclaimed(self, echo):
        with socket.create_connection((echo.host, echo.port), timeout=5.0) as sock:
            self._assert_reclaimed(echo, sock)

    def test_partial_length_prefix_is_reclaimed(self, echo):
        with socket.create_connection((echo.host, echo.port), timeout=5.0) as sock:
            sock.sendall(LEN.pack(10)[:3])  # 3 of the 4 header bytes
            self._assert_reclaimed(echo, sock)

    def test_partial_payload_is_reclaimed(self, echo):
        with socket.create_connection((echo.host, echo.port), timeout=5.0) as sock:
            sock.sendall(LEN.pack(100) + b"only-a-few")
            self._assert_reclaimed(echo, sock)

    def test_hold_after_response_is_reclaimed(self, echo):
        with socket.create_connection((echo.host, echo.port), timeout=5.0) as sock:
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            write_frame(wfile, b"ping")
            assert read_frame(rfile) == b"+ping"
            # A completed exchange, then silence: the idle gap must also
            # fall under the deadline.
            self._assert_reclaimed(echo, sock)

    def test_healthy_client_unaffected_by_hostile_peer(self, echo):
        with socket.create_connection((echo.host, echo.port), timeout=5.0) as hostile:
            hostile.sendall(LEN.pack(50) + b"stall")
            for _ in range(3):
                assert _healthy_echo(echo, b"still-serving") == b"+still-serving"

    def test_no_thread_outlives_its_connection_by_more_than_timeout(self, echo):
        baseline = threading.active_count()
        socks = [
            socket.create_connection((echo.host, echo.port), timeout=5.0)
            for _ in range(3)
        ]
        try:
            assert _wait_until(lambda: threading.active_count() >= baseline + 3)
            deadline = time.monotonic() + self.TIMEOUT * 8
            while time.monotonic() < deadline:
                if threading.active_count() <= baseline:
                    break
                time.sleep(0.02)
            assert threading.active_count() <= baseline
        finally:
            for sock in socks:
                sock.close()


class TestAdmissionGuard:
    def test_connections_past_cap_are_shed_not_queued(self):
        with _EchoService(timeout=5.0, max_connections=2) as echo:
            held = [
                socket.create_connection((echo.host, echo.port), timeout=5.0)
                for _ in range(2)
            ]
            try:
                assert _wait_until(lambda: echo.open_connections == 2)
                # The third arrival must be shed: accepted, closed, no
                # handler thread — our end reads a clean EOF.
                with socket.create_connection(
                    (echo.host, echo.port), timeout=5.0
                ) as extra:
                    extra.settimeout(5.0)
                    assert extra.recv(1) == b""
                assert _wait_until(lambda: echo.connections_shed >= 1)
                assert echo.open_connections == 2
            finally:
                for sock in held:
                    sock.close()
            # Draining a held connection frees a slot for the next client.
            assert _wait_until(lambda: echo.open_connections == 0)
            assert _healthy_echo(echo, b"back") == b"+back"

    def test_disabled_knobs_accept_everything(self):
        with _EchoService(timeout=0, max_connections=0) as echo:
            assert echo.timeout is None
            assert echo.max_connections is None
            assert _healthy_echo(echo, b"hi") == b"+hi"


class _SheddingEchoService(_EchoService):
    """Echo service that announces overload instead of closing silently."""

    def _shed_frame(self):
        return b"!overloaded-for-test"


class TestShedFrame:
    def test_shed_connection_receives_the_overload_frame(self):
        with _SheddingEchoService(timeout=5.0, max_connections=1) as echo:
            with socket.create_connection((echo.host, echo.port), timeout=5.0) as held:
                assert _wait_until(lambda: echo.open_connections == 1)
                with socket.create_connection(
                    (echo.host, echo.port), timeout=5.0
                ) as extra:
                    extra.settimeout(5.0)
                    rfile = extra.makefile("rb")
                    # A full frame arrives before the close: the client can
                    # tell "overloaded, retry elsewhere" from a dead peer.
                    assert read_frame(rfile) == b"!overloaded-for-test"
                    assert extra.recv(1) == b""
                assert _wait_until(lambda: echo.connections_shed >= 1)
                held.close()

    def test_default_shed_is_a_silent_close(self):
        # The base FrameService keeps the historical contract: no frame,
        # just EOF (asserted in TestAdmissionGuard); _shed_frame says so.
        assert wire.FrameService._shed_frame(_EchoService.__new__(_EchoService)) is None


class TestSingleSourceOfTruth:
    def test_memo_service_consumes_wire(self):
        # The memo service's historical private names must be the wire
        # objects themselves, not drifted copies of the framing contract.
        assert service._LEN is wire.LEN
        assert service._MAX_FRAME == wire.MAX_FRAME
        assert service._pack_str is wire.pack_str
        assert service._ProtocolError is wire.ProtocolError

    def test_serve_service_consumes_wire(self):
        from repro.serve import client as serve_client
        from repro.serve import server as serve_server

        assert serve_server.FrameService is wire.FrameService
        assert serve_client.read_frame is wire.read_frame
        assert serve_client.write_frame is wire.write_frame
        assert serve_client.MAX_FRAME == wire.MAX_FRAME
