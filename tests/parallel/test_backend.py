"""Tests for the ``repro.parallel`` execution backend.

Covers the ISSUE-1 contract: serial-vs-process parity of search results for
fixed seeds, exception propagation from worker tasks, and graceful fallback
when ``n_jobs=1`` or tasks cannot be shipped to a pool.
"""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.gradient_boosting import GradientBoostingRegressor
from repro.ml.model_selection import cross_val_predict, cross_validate
from repro.ml.search import GridSearchCV, RandomizedSearchCV
from repro.parallel import clear_caches, parallel_map, resolve_n_jobs
from repro.parallel.backend import ParallelMap, effective_cpu_count


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError(f"task {x} exploded")
    return x


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture()
def data():
    rng = np.random.default_rng(7)
    X = rng.uniform(0.0, 3.0, size=(120, 4))
    y = X @ np.array([1.5, -2.0, 0.5, 1.0]) + rng.normal(0.0, 0.1, size=120)
    return X, y


class TestParallelMap:
    def test_serial_map_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], n_jobs=1) == [9, 1, 4]

    def test_process_map_preserves_order(self):
        assert parallel_map(_square, list(range(10)), n_jobs=2) == [x * x for x in range(10)]

    def test_priority_reorders_submission_not_results(self):
        tasks = list(range(6))
        priority = [5, 4, 3, 2, 1, 0]
        assert parallel_map(_square, tasks, n_jobs=2, priority=priority) == [
            x * x for x in tasks
        ]

    def test_invalid_priority_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            parallel_map(_square, [1, 2], n_jobs=2, priority=[0, 0])

    def test_worker_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="task 3 exploded"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], n_jobs=1)

    def test_worker_exception_propagates_parallel(self):
        with pytest.raises(ValueError, match="task 3 exploded"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], n_jobs=2)

    def test_unpicklable_task_falls_back_to_serial(self):
        # A closure cannot be pickled for a process pool; the backend must
        # quietly run it serially instead of erroring out.
        captured = []

        def record(x):
            captured.append(x)
            return x + 1

        assert parallel_map(record, [1, 2, 3], n_jobs=2) == [2, 3, 4]
        assert captured == [1, 2, 3]

    def test_single_task_runs_inline(self):
        assert ParallelMap(n_jobs=4).map(_square, [5]) == [25]

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(-1) == effective_cpu_count()
        assert resolve_n_jobs(-10**6) == 1
        with pytest.raises(ValueError):
            resolve_n_jobs(0)


class TestSearchParity:
    """Serial and process-parallel searches are bit-identical for fixed seeds."""

    def test_grid_search_parity(self, data):
        X, y = data
        grid = {"n_estimators": [5, 10], "max_depth": [3, None]}
        serial = GridSearchCV(
            RandomForestRegressor(random_state=0), grid, cv=3, n_jobs=1
        ).fit(X, y)
        clear_caches()
        parallel = GridSearchCV(
            RandomForestRegressor(random_state=0), grid, cv=3, n_jobs=2
        ).fit(X, y)
        assert serial.best_params_ == parallel.best_params_
        assert serial.best_score_ == parallel.best_score_
        assert np.array_equal(
            serial.cv_results_["mean_test_score"], parallel.cv_results_["mean_test_score"]
        )
        assert np.array_equal(
            serial.cv_results_["std_test_score"], parallel.cv_results_["std_test_score"]
        )

    def test_randomized_search_parity(self, data):
        X, y = data
        dists = {"n_estimators": [5, 10, 20], "learning_rate": [0.05, 0.1, 0.2]}
        serial = RandomizedSearchCV(
            GradientBoostingRegressor(random_state=0), dists, n_iter=4, cv=3,
            random_state=11, n_jobs=1,
        ).fit(X, y)
        clear_caches()
        parallel = RandomizedSearchCV(
            GradientBoostingRegressor(random_state=0), dists, n_iter=4, cv=3,
            random_state=11, n_jobs=2,
        ).fit(X, y)
        assert serial.cv_results_["params"] == parallel.cv_results_["params"]
        assert serial.best_params_ == parallel.best_params_
        assert serial.best_score_ == parallel.best_score_

    def test_cross_validate_parity(self, data):
        X, y = data
        est = GradientBoostingRegressor(n_estimators=10, random_state=0)
        serial = cross_validate(est, X, y, cv=4, n_jobs=1)
        clear_caches()
        parallel = cross_validate(est, X, y, cv=4, n_jobs=2)
        assert np.array_equal(serial["test_score"], parallel["test_score"])

    def test_cross_val_predict_parity(self, data):
        X, y = data
        est = RandomForestRegressor(n_estimators=5, random_state=1)
        serial = cross_val_predict(est, X, y, cv=3, n_jobs=1)
        clear_caches()
        parallel = cross_val_predict(est, X, y, cv=3, n_jobs=2)
        assert np.array_equal(serial, parallel)

    def test_forest_parity(self, data):
        X, y = data
        serial = RandomForestRegressor(n_estimators=8, oob_score=True, random_state=5, n_jobs=1)
        parallel = RandomForestRegressor(n_estimators=8, oob_score=True, random_state=5, n_jobs=2)
        serial.fit(X, y)
        parallel.fit(X, y)
        assert np.array_equal(serial.predict(X), parallel.predict(X))
        assert serial.oob_score_ == parallel.oob_score_
