"""Bit-parity matrix for the memo store (ISSUE 2 + ISSUE 3 acceptance).

For sampled seeds, ``run_model_comparison`` on a tiny dataset must return
identical results (modulo wall-time fields) whether it runs serially, on a
process pool, against a warm memo store — disk *or* service-backed — or
resumed after an interrupt; and a fully warm rerun must perform **zero**
model fits.

The suite configures its own store directories explicitly, so it is
deterministic whether or not an ambient ``REPRO_MEMO_DIR`` is set (CI runs
it both ways, including ``memo://`` service URLs).
"""

import pytest

import repro.core.hyperopt as hyperopt
from repro.core.hyperopt import run_model_comparison
from repro.parallel import clear_caches, configure_store, get_store
from repro.parallel.service import MemoServer

#: A sweep small enough for tier-1 but wide enough to cross model/strategy
#: boundaries (grid + randomized over a deterministic and a seeded model).
SWEEP = dict(
    models=["PR", "DT"],
    strategies=("GridSearchCV", "RandomizedSearchCV"),
    scale="fast",
    cv=3,
    max_train_samples=50,
)


@pytest.fixture(autouse=True)
def _isolated_store_state():
    configure_store(None)
    clear_caches()
    yield
    configure_store(None)
    clear_caches()


def _run(dataset, seed, *, n_jobs=1, memo_dir=None):
    """One sweep run with a fresh in-process cache state."""
    configure_store(memo_dir)
    clear_caches()
    return run_model_comparison(dataset, n_jobs=n_jobs, seed=seed, **SWEEP)


def _comparable(results):
    """Result dicts with the only run-dependent field (wall time) dropped."""
    return [
        {k: v for k, v in r.as_dict().items() if k != "search_time_s"} for r in results
    ]


@pytest.mark.parametrize("seed", [0, 7])
def test_parity_matrix(small_aurora_dataset, tmp_path, seed):
    """serial == n_jobs=2 == cold-store == warm-store for sampled seeds."""
    serial = _run(small_aurora_dataset, seed)
    parallel = _run(small_aurora_dataset, seed, n_jobs=2)
    cold = _run(small_aurora_dataset, seed, memo_dir=tmp_path / "memo")
    warm = _run(small_aurora_dataset, seed, memo_dir=tmp_path / "memo")

    assert _comparable(serial) == _comparable(parallel)
    assert _comparable(serial) == _comparable(cold)
    assert _comparable(serial) == _comparable(warm)
    # A fully warm run replays the stored results byte-for-byte, including
    # the original run's search_time_s.
    assert [r.as_dict() for r in warm] == [r.as_dict() for r in cold]


def test_warm_store_run_performs_zero_fits(small_aurora_dataset, tmp_path):
    """ISSUE 2 acceptance: the second (fully warm) run fits no models at all."""
    cold = _run(small_aurora_dataset, 0, memo_dir=tmp_path / "memo")
    cold_fits = get_store().aggregated_stats()["fits"]
    assert cold_fits > 0

    def no_search_allowed(*args, **kwargs):
        raise AssertionError("a fully warm sweep must never construct a search")

    configure_store(tmp_path / "memo")
    clear_caches()
    hyperopt_make_search = hyperopt._make_search
    hyperopt._make_search = no_search_allowed
    try:
        warm = run_model_comparison(small_aurora_dataset, n_jobs=1, seed=0, **SWEEP)
    finally:
        hyperopt._make_search = hyperopt_make_search
    assert get_store().aggregated_stats()["fits"] == 0
    assert [r.as_dict() for r in warm] == [r.as_dict() for r in cold]


def test_memo_service_parity_and_zero_fits(small_aurora_dataset, tmp_path):
    """ISSUE 3 acceptance: a run against a warm memo *service* is
    byte-identical to a cold serial run for the same seed, with zero model
    fits.  The server is spun up in-process on an ephemeral localhost port
    and fronts an ordinary disk store directory."""
    cold_serial = _run(small_aurora_dataset, 0)  # no store at all

    with MemoServer(tmp_path / "served") as server:
        service_cold = _run(small_aurora_dataset, 0, memo_dir=server.url)
        assert _comparable(cold_serial) == _comparable(service_cold)
        assert get_store().aggregated_stats()["fits"] > 0

        # Pool workers are initialised with the memo:// URL and build their
        # own client connections; results stay identical.
        service_pool = _run(small_aurora_dataset, 0, n_jobs=2, memo_dir=server.url)
        assert _comparable(service_pool) == _comparable(cold_serial)

        def no_search_allowed(*args, **kwargs):
            raise AssertionError("a warm memo-service sweep must never construct a search")

        configure_store(server.url)
        clear_caches()
        hyperopt_make_search = hyperopt._make_search
        hyperopt._make_search = no_search_allowed
        try:
            service_warm = run_model_comparison(
                small_aurora_dataset, n_jobs=1, seed=0, **SWEEP
            )
        finally:
            hyperopt._make_search = hyperopt_make_search
        assert get_store().aggregated_stats()["fits"] == 0
        # Byte-identical replay, including the original run's wall-time
        # fields, and identical (modulo wall time) to the storeless serial run.
        assert [r.as_dict() for r in service_warm] == [r.as_dict() for r in service_cold]
        assert _comparable(service_warm) == _comparable(cold_serial)


def test_memo_service_killed_mid_sweep_still_finishes(small_aurora_dataset, tmp_path):
    """Killing the memo service between runs degrades the client to a plain
    recompute: same results, no crash."""
    baseline = _run(small_aurora_dataset, 0)
    server = MemoServer(tmp_path / "served").start()
    configure_store(server.url)
    clear_caches()
    server.shutdown()  # dies before the sweep ever reaches it
    survived = run_model_comparison(small_aurora_dataset, n_jobs=1, seed=0, **SWEEP)
    assert _comparable(survived) == _comparable(baseline)
    assert get_store().stats()["errors"] > 0


def test_resume_after_interrupt(small_aurora_dataset, tmp_path, monkeypatch):
    """An interrupted sweep resumes from the store without redoing finished work."""
    baseline = _run(small_aurora_dataset, 0)

    real_make_search = hyperopt._make_search

    def explode_on_randomized(strategy, *args, **kwargs):
        if strategy == "RandomizedSearchCV":
            raise RuntimeError("simulated interrupt")
        return real_make_search(strategy, *args, **kwargs)

    configure_store(tmp_path / "memo")
    clear_caches()
    monkeypatch.setattr(hyperopt, "_make_search", explode_on_randomized)
    with pytest.raises(RuntimeError, match="simulated interrupt"):
        run_model_comparison(small_aurora_dataset, n_jobs=1, seed=0, **SWEEP)
    monkeypatch.undo()

    # The first model's GridSearchCV combination finished before the
    # interrupt and is already on disk.
    assert get_store().object_count() > 0

    searched = []

    def counting_make_search(strategy, *args, **kwargs):
        searched.append(strategy)
        return real_make_search(strategy, *args, **kwargs)

    monkeypatch.setattr(hyperopt, "_make_search", counting_make_search)
    clear_caches()
    resumed = run_model_comparison(small_aurora_dataset, n_jobs=1, seed=0, **SWEEP)

    # PR/GridSearchCV was restored from the store, the other three
    # combinations were computed on resume.
    assert len(searched) == 3
    assert searched.count("GridSearchCV") == 1
    assert _comparable(resumed) == _comparable(baseline)
