"""Tests for the memo service (``repro.parallel.service``).

Covers the ISSUE 3 contract: the ``RemoteMemoStore`` client presents the
same get/put/stats surface as the disk store over length-prefixed binary
frames, interoperates byte-for-byte with disk clients of the served
directory, and degrades to recomputation — never a crash — on every
failure mode: dead server, server killed mid-run, truncated frames,
oversized frames, corrupt payloads, concurrent writers.
"""

import json
import socket
import struct
import threading

import numpy as np
import pytest

from repro.parallel.service import (
    _LEN,
    MemoServer,
    RemoteMemoStore,
    parse_memo_url,
)
from repro.parallel.store import MemoStore, make_store


@pytest.fixture()
def server(tmp_path):
    """An in-process memo server on an ephemeral localhost port."""
    with MemoServer(tmp_path / "served") as srv:
        yield srv


@pytest.fixture()
def client(server):
    c = RemoteMemoStore(server.url)
    yield c
    c.close()


class TestUrlParsing:
    def test_round_trip(self):
        assert parse_memo_url("memo://127.0.0.1:7501") == ("127.0.0.1", 7501)
        assert parse_memo_url("memo://memohost:80/") == ("memohost", 80)

    @pytest.mark.parametrize(
        "bad",
        ["memo://", "memo://hostonly", "memo://host:notaport", "memo://host:0",
         "memo://host:99999", "http://host:80", "/plain/dir"],
    )
    def test_junk_is_a_loud_config_error(self, bad):
        with pytest.raises(ValueError):
            parse_memo_url(bad)

    def test_make_store_dispatches_on_scheme(self, server, tmp_path):
        remote = make_store(server.url)
        assert isinstance(remote, RemoteMemoStore)
        assert remote.location == server.url
        disk = make_store(tmp_path / "plain")
        assert isinstance(disk, MemoStore)
        assert make_store(None) is None
        assert make_store("  ") is None

    def test_make_store_strips_stray_whitespace(self, server):
        # ' memo://...' (a YAML env block easily adds the space) must reach
        # the URL branch, not become a disk directory named ' memo:'.
        remote = make_store(f"  {server.url} ")
        assert isinstance(remote, RemoteMemoStore)
        assert remote.location == server.url


class TestRoundTrip:
    def test_put_get_round_trip(self, client):
        value = {"scores": np.arange(4.0), "label": "x", "pair": (1, 2)}
        assert client.get("unit", ("k", 1)) is None
        client.put("unit", ("k", 1), value)
        got = client.get("unit", ("k", 1))
        assert got["label"] == "x" and got["pair"] == (1, 2)
        assert np.array_equal(got["scores"], np.arange(4.0))

    def test_arrays_come_back_read_only(self, client):
        client.put("unit", "frozen", {"arr": np.arange(3.0), "nested": [np.ones(2)]})
        got = client.get("unit", "frozen")
        with pytest.raises(ValueError):
            got["arr"][0] = 99.0
        with pytest.raises(ValueError):
            got["nested"][0][0] = 99.0

    def test_namespaces_do_not_collide(self, client):
        client.put("ns-a", "k", 1)
        client.put("ns-b", "k", 2)
        assert client.get("ns-a", "k") == 1
        assert client.get("ns-b", "k") == 2

    def test_miss_returns_default(self, client):
        assert client.get("unit", "absent", default="fallback") == "fallback"

    def test_ping(self, client):
        assert client.ping()

    def test_served_directory_is_disk_store_compatible(self, server, client):
        """The service fronts an ordinary MemoStore directory: disk clients of
        the same root and remote clients read each other's objects."""
        disk = MemoStore(server.store.root)
        client.put("interop", ("remote", 1), [1, 2, 3])
        assert disk.get("interop", ("remote", 1)) == [1, 2, 3]
        disk.put("interop", ("disk", 2), {"from": "disk"})
        assert client.get("interop", ("disk", 2)) == {"from": "disk"}

    def test_multiple_clients_share_the_memo(self, server):
        a, b = RemoteMemoStore(server.url), RemoteMemoStore(server.url)
        a.put("shared", "k", 41)
        assert b.get("shared", "k") == 41
        a.close(), b.close()


class TestFailureModes:
    def test_unreachable_server_reads_as_miss(self):
        # Bind-then-close guarantees a dead localhost port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        store = RemoteMemoStore(f"memo://127.0.0.1:{port}", retry_delay=0.05)
        assert store.get("unit", "k", default="recompute") == "recompute"
        store.put("unit", "k", 1)  # must not raise
        assert store.stats()["errors"] >= 2
        assert store.object_count() == 0

    def test_server_killed_mid_run_degrades_to_misses(self, tmp_path):
        server = MemoServer(tmp_path / "served").start()
        store = RemoteMemoStore(server.url, retry_delay=0.05)
        store.put("unit", "k", {"v": 1})
        assert store.get("unit", "k") == {"v": 1}
        server.shutdown()
        # The established connection is severed and reconnects are refused:
        # every further operation is a silent miss/no-op, never an exception.
        assert store.get("unit", "k", default="recompute") == "recompute"
        store.put("unit", "k2", 2)
        assert store.get("unit", "k2") is None
        counters = store.stats()
        assert counters["errors"] > 0 and counters["hits"] == 1
        # Aggregated stats still answer (local-process view) off-line.
        assert store.aggregated_stats()["store"]["puts"] >= 1
        store.close()

    def test_down_window_backoff_doubles_per_failed_window(self):
        # A server that times out rather than refusing must not cost two
        # connect timeouts per *operation*: the circuit's open window is
        # jittered and doubles per consecutive failed half-open probe —
        # and for a fixed retry_seed the whole sequence is reproducible.
        from repro.parallel.resilience import OPEN, RetryPolicy, policy_rng

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        store = RemoteMemoStore(
            f"memo://127.0.0.1:{port}", retry_delay=0.05, retry_seed="pin"
        )
        twin = policy_rng("pin")  # replays the store's jitter draws
        cooldown = RetryPolicy(
            retries=None, base_delay=0.05, max_delay=30.0, jitter=0.5
        )

        store.get("unit", "k")
        snap = store.circuits.snapshot()[store.url]
        assert snap["state"] == OPEN and snap["trips"] == 1
        first_window = cooldown.delay(1, twin)
        assert 0 < store.circuits.open_remaining(store.url) <= first_window
        failures = snap["failures"]
        store.get("unit", "k")  # inside the window: no connect attempt
        assert store.circuits.snapshot()[store.url]["failures"] == failures
        # Force the window shut: the next op is the half-open probe; its
        # failure must re-open with a doubled (still jittered) window.
        store.circuits._endpoints[store.url].open_until = 0.0
        store.get("unit", "k")
        snap = store.circuits.snapshot()[store.url]
        assert snap["state"] == OPEN and snap["trips"] == 2
        second_window = cooldown.delay(2, twin)
        # Raw delays double; jitter keeps each in [raw/2, raw], and for
        # this seed the drawn windows are ~0.046s then ~0.080s.
        assert first_window < second_window
        assert first_window < store.circuits.open_remaining(store.url) <= second_window
        store.close()

    def test_client_survives_server_restart_on_same_port(self, tmp_path):
        server = MemoServer(tmp_path / "served").start()
        port = server.port
        store = RemoteMemoStore(server.url, retry_delay=0.0)
        store.put("unit", "k", 7)
        server.shutdown()
        assert store.get("unit", "k") is None  # down: miss
        revived = MemoServer(tmp_path / "served", port=port).start()
        try:
            assert store.get("unit", "k") == 7  # reconnected, object persisted
        finally:
            revived.shutdown()
            store.close()

    def _rogue_server(self, respond):
        """A server speaking garbage: accepts, reads a frame, answers with
        ``respond(length_prefixed_request)`` raw bytes, closes."""
        srv = socket.socket()
        srv.bind(("127.0.0.1", 0))
        srv.listen(8)
        srv.settimeout(5.0)
        stop = threading.Event()

        def run():
            while not stop.is_set():
                try:
                    conn, _ = srv.accept()
                except OSError:
                    return
                try:
                    conn.settimeout(2.0)
                    conn.recv(1 << 16)
                    conn.sendall(respond())
                except OSError:
                    pass
                finally:
                    conn.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()

        def cleanup():
            stop.set()
            srv.close()

        return srv.getsockname()[1], cleanup

    def test_truncated_frame_reads_as_miss(self):
        # The length prefix promises 100 bytes; the connection dies after 2.
        port, cleanup = self._rogue_server(lambda: _LEN.pack(100) + b"xy")
        try:
            store = RemoteMemoStore(f"memo://127.0.0.1:{port}", retry_delay=0.05)
            assert store.get("unit", "k", default="recompute") == "recompute"
            assert store.stats()["errors"] >= 1
            store.close()
        finally:
            cleanup()

    def test_oversized_frame_is_rejected_not_allocated(self):
        # A garbled length prefix (2 GiB) must be refused outright.
        port, cleanup = self._rogue_server(lambda: _LEN.pack(1 << 31))
        try:
            store = RemoteMemoStore(f"memo://127.0.0.1:{port}", retry_delay=0.05)
            assert store.get("unit", "k") is None
            assert store.stats()["errors"] >= 1
            store.close()
        finally:
            cleanup()

    def test_corrupt_payload_on_server_reads_as_miss(self, server, client):
        client.put("unit", "victim", [1, 2, 3])
        path = server.store.path_for("unit", "victim")
        path.write_bytes(b"not a store payload at all")
        # The server discards the corrupt object and reports a miss.
        assert client.get("unit", "victim") is None
        assert not path.exists()
        client.put("unit", "victim", [1, 2, 3])  # next put heals it
        assert client.get("unit", "victim") == [1, 2, 3]

    def test_concurrent_clients_writing_the_same_key(self, server):
        """Writers hammer one key from separate connections while readers
        poll it: every read is a miss or a *complete* value (atomic
        publication), and nothing raises."""
        value = {"arr": np.arange(64.0), "tag": "payload"}
        stop = threading.Event()
        failures: list = []

        def writer():
            store = RemoteMemoStore(server.url)
            while not stop.is_set():
                store.put("race", "shared", value)
            store.close()

        def reader():
            store = RemoteMemoStore(server.url)
            while not stop.is_set():
                got = store.get("race", "shared")
                if got is not None and not np.array_equal(got["arr"], value["arr"]):
                    failures.append(got)
            store.close()

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        stop.wait(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert not failures
        check = RemoteMemoStore(server.url)
        assert np.array_equal(check.get("race", "shared")["arr"], value["arr"])
        check.close()

    def test_oversized_value_fails_alone_without_poisoning_the_store(
        self, client, monkeypatch
    ):
        # One value above the frame cap is a local error for that key only;
        # the connection and every other key keep working.
        from repro.parallel import service as service_module

        client.put("unit", "small", 1)
        monkeypatch.setattr(service_module, "_MAX_FRAME", 64)
        client.put("unit", "huge", np.arange(1024.0))
        assert client.get("unit", "huge", default="recompute") == "recompute"
        monkeypatch.undo()
        assert client.get("unit", "small") == 1  # connection never dropped
        assert client.stats()["errors"] >= 1

    def test_malformed_namespace_is_rejected_loudly_client_side(self, client):
        # A namespace is a compile-time constant of the caching layer: one
        # the server would refuse must raise, not silently become a
        # 100%-miss cache for that layer.
        with pytest.raises(ValueError, match="memo://"):
            client.get("../escape", "k")
        with pytest.raises(ValueError, match="memo://"):
            client.put("cv:splits", "k", 1)

    def test_malformed_namespace_from_rogue_client_never_touches_disk(self, server):
        # The server defends independently of well-behaved clients: speak
        # the raw protocol with a path-traversal namespace and expect an
        # ERR frame, with nothing written outside the store.
        from repro.parallel.service import _OP_GET, _pack_str

        sock = socket.create_connection((server.host, server.port), timeout=5.0)
        try:
            payload = _OP_GET + _pack_str("../escape") + _pack_str("ab" * 20)
            sock.sendall(_LEN.pack(len(payload)) + payload)
            header = sock.recv(4, socket.MSG_WAITALL)
            (length,) = _LEN.unpack(header)
            body = sock.recv(length, socket.MSG_WAITALL)
            assert body[:1] == b"!"
        finally:
            sock.close()
        assert not (server.store.root / "escape").exists()
        assert not (server.store.root.parent / "escape").exists()


class TestStats:
    def test_counters_track_operations(self, client):
        client.get("unit", "a")
        client.put("unit", "a", 1)
        client.get("unit", "a")
        s = client.stats()
        assert s["misses"] == 1 and s["puts"] == 1 and s["hits"] == 1
        assert s["objects"] == 1

    def test_snapshots_aggregate_across_processes(self, server, client):
        client.put("unit", "k", 1)
        client.get("unit", "k")
        client.flush_stats()
        # The client's snapshot lands in the served directory's stats dir —
        # the same place local processes write theirs.
        assert len(list((server.store.root / "stats").glob("*.json"))) == 1
        # Simulate a second process's snapshot to check the summation path.
        other = {
            "pid": 999999,
            "store": {"hits": 3, "misses": 2, "puts": 2, "errors": 1},
            "fits": 7,
            "caches": {"candidate_eval": {"hits": 5, "misses": 4}},
        }
        (server.store.root / "stats" / "999999.json").write_text(json.dumps(other))
        agg = client.aggregated_stats()
        assert agg["processes"] == 2
        assert agg["fits"] == 7
        assert agg["store"]["hits"] == 3 + 1
        assert agg["store"]["puts"] == 2 + 1
        assert agg["store"]["errors"] == 1
        assert agg["store"]["objects"] == 1
        assert agg["caches"]["candidate_eval"]["hits"] >= 5

    def test_reset_stats_drops_server_snapshots_and_keeps_objects(self, server, client):
        client.put("unit", "kept", "value")
        client.flush_stats()
        client.reset_stats()
        assert client._local_counters() == {"hits": 0, "misses": 0, "puts": 0, "errors": 0}
        assert not list((server.store.root / "stats").glob("*.json"))
        assert client.get("unit", "kept") == "value"

    def test_clear_removes_objects(self, client):
        client.put("unit", "gone", "value")
        client.clear()
        assert client.object_count() == 0
        assert client.get("unit", "gone") is None


def test_protocol_unknown_opcode_is_an_error_frame(server):
    """Speak the raw protocol: an unknown opcode gets an ERR status, and the
    connection stays usable for the next request."""
    sock = socket.create_connection((server.host, server.port), timeout=5.0)
    try:
        payload = b"Z"  # no such opcode
        sock.sendall(_LEN.pack(len(payload)) + payload)
        header = sock.recv(4, socket.MSG_WAITALL)
        (length,) = _LEN.unpack(header)
        body = sock.recv(length, socket.MSG_WAITALL)
        assert body[:1] == b"!"
        # Next request on the same connection still works.
        sock.sendall(_LEN.pack(1) + b"?")
        header = sock.recv(4, socket.MSG_WAITALL)
        (length,) = struct.unpack("!I", header)
        body = sock.recv(length, socket.MSG_WAITALL)
        assert body[:1] == b"+" and b"repro-memo" in body
    finally:
        sock.close()
