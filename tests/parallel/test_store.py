"""Tests for the cross-process memo store (``repro.parallel.store``).

Covers the storage contract of ISSUE 2: deterministic content keys,
round-tripping, atomic publication under concurrent writers, corruption /
truncation / version-mismatch tolerance (recompute, never crash), the
read-only array contract across the pickle boundary, and per-process stats
aggregation.
"""

import json
import os
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.parallel.cache import cache_stats, clear_caches
from repro.parallel.store import (
    _MAGIC,
    _MAGIC_PREFIX,
    MemoStore,
    configure_store,
    get_store,
    key_digest,
    make_store,
)
from repro.parallel import store as store_module


@pytest.fixture()
def store(tmp_path):
    """A fresh store, active for the duration of the test."""
    st = configure_store(tmp_path / "memo")
    clear_caches()
    yield st
    configure_store(None)
    clear_caches()


class TestKeyDigest:
    def test_equal_structures_hash_equal(self):
        key = ("Model", (("alpha", 0.5), ("n", 10)), ((3, 4), "<f8", "ab" * 20), "r2")
        assert key_digest(key) == key_digest(
            ("Model", (("alpha", 0.5), ("n", 10)), ((3, 4), "<f8", "ab" * 20), "r2")
        )

    def test_type_tags_prevent_collisions(self):
        assert key_digest(1) != key_digest(1.0)
        assert key_digest(1) != key_digest(True)
        assert key_digest(0) != key_digest(False) != key_digest(None)
        assert key_digest("1") != key_digest(1)
        assert key_digest((1, 2)) != key_digest([1, 2])

    def test_numpy_scalars_hash_like_python_scalars(self):
        assert key_digest(np.int64(7)) == key_digest(7)
        assert key_digest(np.float64(7.25)) == key_digest(7.25)

    def test_nesting_is_not_flattened(self):
        assert key_digest(((1, 2), 3)) != key_digest((1, (2, 3)))
        assert key_digest(((1,), (2,))) != key_digest(((1, 2),))

    def test_dicts_are_order_insensitive(self):
        assert key_digest({"a": 1, "b": 2}) == key_digest({"b": 2, "a": 1})

    def test_unsupported_types_rejected(self):
        with pytest.raises(TypeError):
            key_digest(object())
        with pytest.raises(TypeError):
            key_digest({1: "non-string key"})


class TestRoundTrip:
    def test_put_get_round_trip(self, store):
        key = ("ns-key", 1, 2.5)
        value = {"scores": np.arange(4.0), "label": "x", "pair": (1, 2)}
        assert store.get("unit", key) is None
        store.put("unit", key, value)
        got = store.get("unit", key)
        assert got["label"] == "x" and got["pair"] == (1, 2)
        assert np.array_equal(got["scores"], np.arange(4.0))

    def test_float_bits_survive_the_round_trip(self, store):
        value = (0.1 + 0.2, float(np.float64(1) / 3))
        store.put("unit", "floats", value)
        assert store.get("unit", "floats") == value

    def test_miss_returns_default(self, store):
        assert store.get("unit", "absent", default="fallback") == "fallback"

    def test_namespaces_do_not_collide(self, store):
        store.put("ns-a", "k", 1)
        store.put("ns-b", "k", 2)
        assert store.get("ns-a", "k") == 1
        assert store.get("ns-b", "k") == 2

    def test_arrays_come_back_read_only(self, store):
        value = {"arr": np.arange(3.0), "nested": [np.ones(2), (np.zeros(2),)]}
        store.put("unit", "frozen", value)
        got = store.get("unit", "frozen")
        with pytest.raises(ValueError):
            got["arr"][0] = 99.0
        with pytest.raises(ValueError):
            got["nested"][0][0] = 99.0
        with pytest.raises(ValueError):
            got["nested"][1][0][0] = 99.0


class TestAtomicityAndCorruption:
    def test_concurrent_writers_never_expose_partial_payloads(self, store):
        # Writers hammer the same key while readers poll it: every read must
        # be either a miss (before first publication) or a complete value.
        value = {"arr": np.arange(64.0), "tag": "payload"}
        stop = threading.Event()
        failures = []

        def writer():
            while not stop.is_set():
                store.put("race", "shared", value)

        def reader():
            while not stop.is_set():
                got = store.get("race", "shared")
                if got is not None and not np.array_equal(got["arr"], value["arr"]):
                    failures.append(got)

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        stop.wait(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert not failures
        assert store.stats()["errors"] == 0

    def test_garbage_payload_reads_as_miss_and_is_discarded(self, store):
        store.put("unit", "victim", [1, 2, 3])
        path = store.path_for("unit", "victim")
        path.write_bytes(b"not a store payload at all")
        assert store.get("unit", "victim") is None
        assert store.stats()["errors"] == 1
        assert not path.exists()  # invalid file removed so the next put heals it
        store.put("unit", "victim", [1, 2, 3])
        assert store.get("unit", "victim") == [1, 2, 3]

    def test_truncated_payload_reads_as_miss(self, store):
        store.put("unit", "short", np.arange(100.0))
        path = store.path_for("unit", "short")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert store.get("unit", "short") is None
        assert store.stats()["errors"] == 1

    def test_version_mismatch_invalidates_without_error(self, store):
        store.put("unit", "versioned", "value")
        path = store.path_for("unit", "versioned")
        blob = path.read_bytes()
        assert blob.startswith(_MAGIC)
        # Re-stamp the payload as a future format version: a stale-version
        # file is an expected miss (invalidation), not a corruption error.
        future = _MAGIC_PREFIX + bytes([99]) + b"\n" + blob[len(_MAGIC):]
        path.write_bytes(future)
        stats_before = store.stats()
        assert store.get("unit", "versioned") is None
        stats_after = store.stats()
        assert stats_after["errors"] == stats_before["errors"]
        assert stats_after["misses"] == stats_before["misses"] + 1
        assert not path.exists()

    def test_failed_publication_degrades_to_noop(self, tmp_path, monkeypatch):
        # A full or read-only disk must turn the store into a no-op cache,
        # never an exception in the computation it memoises.
        store = MemoStore(tmp_path / "ro")

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        store.put("unit", "k", "v")  # must not raise
        assert store.stats()["errors"] == 1
        monkeypatch.undo()
        assert store.get("unit", "k") is None
        assert not list(store._objects.rglob("*.tmp"))  # temp file cleaned up


class TestStats:
    def test_counters_track_operations(self, store):
        store.get("unit", "a")
        store.put("unit", "a", 1)
        store.get("unit", "a")
        s = store.stats()
        assert s["misses"] == 1 and s["puts"] == 1 and s["hits"] == 1
        assert s["objects"] == 1

    def test_aggregation_sums_process_snapshots(self, store):
        store.put("unit", "a", 1)
        store.get("unit", "a")
        store.flush_stats()
        # Simulate a second process's snapshot alongside ours.
        other = {
            "pid": 999999,
            "store": {"hits": 3, "misses": 2, "puts": 2, "errors": 1},
            "fits": 7,
            "caches": {"candidate_eval": {"hits": 5, "misses": 4}},
        }
        (store._stats_dir / "999999.json").write_text(json.dumps(other))
        agg = store.aggregated_stats()
        assert agg["processes"] == 2
        assert agg["fits"] == 7
        assert agg["store"]["hits"] == 3 + 1
        assert agg["store"]["puts"] == 2 + 1
        assert agg["store"]["errors"] == 1
        assert agg["caches"]["candidate_eval"]["hits"] == 5
        assert agg["caches"]["candidate_eval"]["misses"] == 4

    def test_corrupt_stats_snapshot_is_skipped(self, store):
        (store._stats_dir / "888888.json").write_text("{not json")
        agg = store.aggregated_stats()
        assert agg["processes"] == 1  # only this process's snapshot counts

    def test_reset_stats_keeps_objects(self, store):
        store.put("unit", "kept", "value")
        store.reset_stats()
        s = store.stats()
        assert s["hits"] == s["misses"] == s["puts"] == 0
        assert store.get("unit", "kept") == "value"

    def test_clear_removes_objects(self, store):
        store.put("unit", "gone", "value")
        store.clear()
        assert store.object_count() == 0
        assert store.get("unit", "gone") is None


class TestActivation:
    def test_configure_none_disables(self, tmp_path):
        configure_store(tmp_path / "memo")
        assert get_store() is not None
        configure_store(None)
        assert get_store() is None

    def test_env_var_activates_lazily(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO_DIR", str(tmp_path / "env-memo"))
        monkeypatch.setattr(store_module, "_STORE", None)
        monkeypatch.setattr(store_module, "_CONFIGURED", False)
        store = get_store()
        assert store is not None
        assert store.root == tmp_path / "env-memo"
        configure_store(None)

    def test_explicit_configuration_beats_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO_DIR", str(tmp_path / "env-memo"))
        assert configure_store(None) is None
        assert get_store() is None

    def test_worker_init_respects_parent_disabled_store(self, tmp_path, monkeypatch):
        # A parent that explicitly disabled the store passes memo_dir=None to
        # its workers; a worker must not resurrect the store from
        # REPRO_MEMO_DIR (spawn/forkserver workers start unconfigured).
        from repro.parallel import backend

        monkeypatch.setenv("REPRO_MEMO_DIR", str(tmp_path / "env-memo"))
        monkeypatch.setattr(backend, "_IN_WORKER", False)
        monkeypatch.setattr(store_module, "_STORE", None)
        monkeypatch.setattr(store_module, "_CONFIGURED", False)
        backend._init_worker(None)
        assert get_store() is None

    def test_stats_snapshot_name_is_unique_per_process(self, tmp_path, monkeypatch):
        # PID reuse across runs must not overwrite an older snapshot: the
        # filename carries a per-process random suffix beside the PID.
        store = MemoStore(tmp_path / "memo")
        name = store._stats_path().name
        assert name.startswith(f"{os.getpid()}-")
        monkeypatch.setattr(store_module, "_PROC_PID", 0)  # simulate a new process
        assert store._stats_path().name != name
        assert store._stats_path().name.startswith(f"{os.getpid()}-")

    def test_tilde_and_missing_parents_are_handled(self, tmp_path, monkeypatch):
        # ``--memo-dir ~/.cache/...`` must expand the tilde and create every
        # missing parent instead of erroring (or literally mkdir-ing "~").
        monkeypatch.setenv("HOME", str(tmp_path))
        store = configure_store("~/deeply/nested/memo")
        assert store.root == tmp_path / "deeply" / "nested" / "memo"
        store.put("unit", "k", 1)
        assert store.get("unit", "k") == 1
        assert not (Path.cwd() / "~").exists()
        configure_store(None)

    def test_env_var_tilde_expands(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        monkeypatch.setenv("REPRO_MEMO_DIR", "~/env-memo")
        monkeypatch.setattr(store_module, "_STORE", None)
        monkeypatch.setattr(store_module, "_CONFIGURED", False)
        store = get_store()
        assert store.root == tmp_path / "env-memo"
        configure_store(None)

    def test_make_store_blank_spec_disables(self):
        assert make_store(None) is None
        assert make_store("") is None
        assert make_store("   ") is None

    def test_cache_stats_gains_store_entry_only_when_active(self, tmp_path):
        configure_store(None)
        assert "memo_store" not in cache_stats()
        configure_store(tmp_path / "memo")
        try:
            entry = cache_stats()["memo_store"]
            assert set(entry) == {"hits", "misses", "puts", "errors", "objects"}
        finally:
            configure_store(None)
