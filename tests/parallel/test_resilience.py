"""Unit tests for the shared resilience engine (ISSUE 9).

RetryPolicy/RetryState and HealthTracker are pure state machines — no
sockets, no sleeps — so everything here runs on a fake clock and a
seeded RNG and asserts exact, reproducible behaviour: the delay ladder,
budget/deadline exhaustion, circuit trip/half-open/close transitions,
the single-probe claim, and the shed-vs-dead rule (overloads never
trip).
"""

from __future__ import annotations

import random

import pytest

from repro.parallel.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    RETRY_SEED_ENV,
    HealthTracker,
    RetryPolicy,
    RetryState,
    policy_rng,
)


class FakeClock:
    """An injectable monotonic clock tests advance by hand."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ---------------------------------------------------------------- policy_rng


def test_policy_rng_explicit_seed_is_deterministic():
    a = [policy_rng("abc").random() for _ in range(5)]
    b = [policy_rng("abc").random() for _ in range(5)]
    assert a == b


def test_policy_rng_stringifies_seeds():
    # 7 and "7" must draw the same sequence (CLI flags arrive as strings).
    assert policy_rng(7).random() == policy_rng("7").random()


def test_policy_rng_env_fallback(monkeypatch):
    monkeypatch.setenv(RETRY_SEED_ENV, "env-seed")
    from_env = policy_rng().random()
    explicit = policy_rng("env-seed").random()
    assert from_env == explicit
    # An explicit seed wins over the environment.
    assert policy_rng("other").random() != explicit


# --------------------------------------------------------------- RetryPolicy


def test_delay_ladder_without_jitter():
    policy = RetryPolicy(base_delay=0.5, max_delay=4.0, multiplier=2.0, jitter=0.0)
    assert [policy.delay(n) for n in (1, 2, 3, 4, 5)] == [
        0.5,
        1.0,
        2.0,
        4.0,
        4.0,  # capped at max_delay
    ]


def test_delay_jitter_range_and_determinism():
    policy = RetryPolicy(base_delay=1.0, max_delay=8.0, jitter=0.5)
    rng = policy_rng("jitter")
    delays = [policy.delay(1, rng) for _ in range(200)]
    # Equal jitter: every draw lives in [raw/2, raw].
    assert all(0.5 <= d <= 1.0 for d in delays)
    assert min(delays) < 0.6 and max(delays) > 0.9  # actually spread out
    # Same seed, same sequence.
    rng2 = policy_rng("jitter")
    assert delays == [policy.delay(1, rng2) for _ in range(200)]


def test_delay_without_rng_is_raw():
    policy = RetryPolicy(base_delay=2.0, jitter=0.5)
    assert policy.delay(1) == 2.0


def test_retry_budget_exhaustion():
    policy = RetryPolicy(retries=2, base_delay=0.1, jitter=0.0)
    state = policy.start()
    assert state.note_failure() == pytest.approx(0.1)
    assert state.note_failure() == pytest.approx(0.2)
    assert state.note_failure() is None  # budget of 2 retries spent
    assert state.exhausted


def test_zero_retries_fails_immediately():
    state = RetryPolicy(retries=0).start()
    assert state.note_failure() is None


def test_deadline_clips_delay_and_exhausts():
    clock = FakeClock()
    policy = RetryPolicy(
        retries=None, base_delay=10.0, max_delay=10.0, jitter=0.0, deadline=12.0
    )
    state = policy.start(clock=clock)
    # 10s raw delay fits inside the 12s deadline untouched.
    assert state.note_failure() == pytest.approx(10.0)
    clock.advance(10.0)
    # Only 2s of deadline left: the 10s delay is clipped to it.
    assert state.note_failure() == pytest.approx(2.0)
    clock.advance(2.0)
    assert state.note_failure() is None  # deadline spent
    assert state.exhausted


def test_unbounded_retries_without_deadline_never_exhaust():
    policy = RetryPolicy(retries=None, base_delay=0.01, jitter=0.0)
    state = policy.start()
    for _ in range(50):
        assert state.note_failure() is not None
    assert not state.exhausted


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=2.0, max_delay=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(deadline=0.0)
    with pytest.raises(ValueError):
        RetryPolicy().delay(0)


def test_retry_sequences_replay_under_seed():
    policy = RetryPolicy(retries=5, base_delay=0.5, jitter=0.5)

    def sequence(seed):
        state = policy.start(policy_rng(seed))
        out = []
        while True:
            d = state.note_failure()
            if d is None:
                return out
            out.append(d)

    assert sequence("run-1") == sequence("run-1")
    assert sequence("run-1") != sequence("run-2")


# ------------------------------------------------------------- HealthTracker


def make_tracker(clock, *, base=1.0):
    """A tracker with jitter-free doubling cooldowns for exact assertions."""
    return HealthTracker(
        cooldown=RetryPolicy(
            retries=None, base_delay=base, max_delay=64.0, jitter=0.0
        ),
        rng=random.Random(0),
        clock=clock,
    )


def test_first_failure_trips_circuit():
    clock = FakeClock()
    tracker = make_tracker(clock)
    assert tracker.state("a") == CLOSED
    assert tracker.routable("a")
    tracker.record_failure("a")
    assert tracker.state("a") == OPEN
    assert not tracker.routable("a")
    assert tracker.open_remaining("a") == pytest.approx(1.0)


def test_cooldown_expiry_goes_half_open_single_probe():
    clock = FakeClock()
    tracker = make_tracker(clock)
    tracker.record_failure("a")
    # Inside the window: no probes, not routable.
    assert not tracker.claim_probe("a")
    clock.advance(1.01)
    assert tracker.state("a") == HALF_OPEN
    assert not tracker.routable("a")  # half-open is still out of the ring
    # Exactly one caller wins the trial request.
    assert tracker.claim_probe("a")
    assert not tracker.claim_probe("a")


def test_probe_success_closes_and_resets_trips():
    clock = FakeClock()
    tracker = make_tracker(clock)
    tracker.record_failure("a")
    clock.advance(1.01)
    assert tracker.claim_probe("a")
    tracker.record_success("a")
    assert tracker.state("a") == CLOSED
    assert tracker.routable("a")
    # Consecutive-trip count reset: the next trip starts back at base.
    tracker.record_failure("a")
    assert tracker.open_remaining("a") == pytest.approx(1.0)


def test_probe_failure_doubles_the_window():
    clock = FakeClock()
    tracker = make_tracker(clock)
    tracker.record_failure("a")  # trip 1: 1s window
    clock.advance(1.01)
    assert tracker.claim_probe("a")
    tracker.record_failure("a")  # probe failed: trip 2
    assert tracker.state("a") == OPEN
    assert tracker.open_remaining("a") == pytest.approx(2.0)
    clock.advance(2.01)
    assert tracker.claim_probe("a")
    tracker.record_failure("a")  # trip 3
    assert tracker.open_remaining("a") == pytest.approx(4.0)


def test_overloads_never_trip():
    clock = FakeClock()
    tracker = make_tracker(clock)
    for _ in range(100):
        tracker.record_overload("a")
    # Shed-vs-dead: a shedding replica is a healthy replica.
    assert tracker.state("a") == CLOSED
    assert tracker.routable("a")
    assert tracker.snapshot()["a"]["overloads"] == 100


def test_success_decays_ewma_below_trip_threshold():
    clock = FakeClock()
    # alpha=0.3: one failure folds to 0.3 < 0.5 threshold — no trip; a
    # second consecutive failure (0.3 + 0.7*0.3 = 0.51) crosses it.
    tracker = HealthTracker(
        alpha=0.3,
        cooldown=RetryPolicy(retries=None, base_delay=1.0, jitter=0.0),
        rng=random.Random(0),
        clock=clock,
    )
    tracker.record_failure("a")
    assert tracker.state("a") == CLOSED
    tracker.record_success("a")  # decays the ewma back down
    tracker.record_failure("a")
    assert tracker.state("a") == CLOSED  # decay kept it under threshold
    tracker.record_failure("a")
    assert tracker.state("a") == OPEN


def test_generation_bumps_only_on_transitions():
    clock = FakeClock()
    tracker = make_tracker(clock)
    g0 = tracker.generation
    tracker.record_success("a")
    assert tracker.generation == g0  # closed -> closed: no transition
    tracker.record_failure("a")
    g1 = tracker.generation
    assert g1 > g0  # closed -> open
    clock.advance(1.01)
    g2 = tracker.generation  # open -> half-open observed lazily
    assert g2 > g1
    assert tracker.claim_probe("a")
    tracker.record_success("a")
    assert tracker.generation > g2  # half-open -> closed


def test_stale_probe_claim_releases():
    clock = FakeClock()
    tracker = make_tracker(clock)
    tracker.record_failure("a")
    clock.advance(1.01)
    assert tracker.claim_probe("a")
    # The prober vanished; after the stale window another caller may try.
    clock.advance(61.0)
    assert tracker.claim_probe("a")


def test_snapshot_reports_operator_fields():
    clock = FakeClock()
    tracker = make_tracker(clock)
    tracker.record_failure("a")
    clock.advance(0.5)
    tracker.record_success("b")
    snap = tracker.snapshot()
    assert snap["a"]["state"] == OPEN
    assert snap["a"]["failures"] == 1
    assert snap["a"]["trips"] == 1
    assert snap["a"]["last_failure_age_s"] == pytest.approx(0.5)
    assert snap["a"]["last_success_age_s"] is None
    assert snap["a"]["open_remaining_s"] == pytest.approx(0.5)
    assert snap["b"]["state"] == CLOSED
    assert snap["b"]["successes"] == 1
    assert snap["b"]["open_remaining_s"] == 0.0


def test_tracker_validation():
    with pytest.raises(ValueError):
        HealthTracker(alpha=0.0)
    with pytest.raises(ValueError):
        HealthTracker(trip_threshold=1.5)


def test_retry_state_is_importable_and_documented_loop_works():
    # The canonical loop from the RetryState docstring, end to end.
    policy = RetryPolicy(retries=3, base_delay=0.0, jitter=0.0)
    state: RetryState = policy.start()
    attempts = 0
    while True:
        attempts += 1
        if attempts >= 3:  # "op" succeeds on the third try
            break
        assert state.note_failure() is not None
    assert attempts == 3
