"""Cluster wire under injected faults: serial-identical or serial (ISSUE 9).

Workers dial the dispatcher through :class:`repro.testing.FaultWire`, so
the dispatcher→worker response leg — task handoffs, acks — takes
scheduled damage.  The contracts: a garbled or torn frame never kills a
worker (teardown, redial, re-queue), a batch completes byte-correct
through a lossy wire, an unusable payload is re-queued a bounded number
of times and then degrades the batch to the serial path, and
``dispatcher_status`` redials under the shared policy.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.parallel import cluster as cluster_mod
from repro.parallel.cluster import (
    ClusterExecutor,
    ClusterWorker,
    dispatcher_status,
    ensure_dispatcher,
)
from repro.parallel.executors import ExecutorUnavailableError
from repro.parallel.wire import pack_str, read_frame, unpack_str, write_frame
from repro.testing import FaultSchedule, FaultWire


def _square(task):
    return task * task


def _thread_worker(url, name, **kwargs):
    kwargs.setdefault("poll_interval", 0.01)
    kwargs.setdefault("heartbeat_interval", 0.1)
    kwargs.setdefault("reconnect_window", 10.0)
    worker = ClusterWorker(url, name=name, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


class TestLossyWorkerWire:
    def test_batch_completes_through_lossy_wire(self):
        # Short heartbeat: a worker that teardown-redials after a fault
        # gets a fresh id, and its orphaned assignment is reaped quickly.
        dispatcher = ensure_dispatcher(
            "cluster://127.0.0.1:0", heartbeat_timeout=0.5
        )
        schedule = FaultSchedule(
            "cluster-storm", garble=0.1, drop=0.1, warmup_frames=1
        )
        proxy = FaultWire((dispatcher.host, dispatcher.port), schedule).start()
        workers = [
            _thread_worker(proxy.url("cluster"), f"lossy{i}", retry_seed=i)[0]
            for i in range(2)
        ]
        try:
            executor = ClusterExecutor(url=dispatcher.url, worker_wait=10.0)
            tasks = list(range(12))
            got = executor.map(
                _square, tasks, order=list(range(12)), n_workers=2
            )
            assert got == [t * t for t in tasks]
            # The fleet survives for a second batch on the same wire.
            got = executor.map(_square, [13, 14], order=[0, 1], n_workers=2)
            assert got == [169, 196]
        finally:
            for worker in workers:
                worker.stop()
            proxy.shutdown()

    def test_worker_survives_scripted_garbled_polls(self):
        dispatcher = ensure_dispatcher(
            "cluster://127.0.0.1:0", heartbeat_timeout=0.5
        )
        # Garble the first few responses of the worker's first connection
        # (hello ack and early polls): the worker must drop the
        # connection and redial, never crash or report garbage.
        schedule = FaultSchedule(0, garble=1.0, warmup_frames=0)
        proxy = FaultWire((dispatcher.host, dispatcher.port), schedule).start()
        worker, thread = _thread_worker(proxy.url("cluster"), "garbled")
        try:
            # After a couple of garbled rounds, clear the storm: the
            # worker's redial loop finds a clean wire and serves.
            time.sleep(0.3)
            proxy.schedule = FaultSchedule(0)  # all pass
            executor = ClusterExecutor(url=dispatcher.url, worker_wait=10.0)
            got = executor.map(_square, [2, 3, 4], order=[0, 1, 2], n_workers=1)
            assert got == [4, 9, 16]
            assert thread.is_alive()  # the worker never died
        finally:
            worker.stop()
            proxy.shutdown()


class TestBadPayloadDegradation:
    def test_bad_payload_requeues_then_poisons_to_serial_degradation(self):
        """A worker that keeps reporting BAD forces the bounded re-queue
        path: _BAD_PAYLOAD_LIMIT re-sends, then the result slot poisons
        and the executor degrades the batch (ExecutorUnavailableError →
        the caller's bit-identical serial fallback)."""
        dispatcher = ensure_dispatcher("cluster://127.0.0.1:0")
        executor = ClusterExecutor(url=dispatcher.url, worker_wait=10.0)
        box: dict = {}

        def run_map():
            try:
                box["got"] = executor.map(_square, [3], order=[0], n_workers=1)
            except Exception as exc:  # noqa: BLE001 - recorded for assertions
                box["error"] = exc

        runner = threading.Thread(target=run_map, daemon=True)
        runner.start()

        # A hand-rolled worker speaking the wire protocol: polls, then
        # reports every payload as BAD (as if it arrived unusable).
        import socket

        sock = socket.create_connection(
            (dispatcher.host, dispatcher.port), timeout=5.0
        )
        rfile, wfile = sock.makefile("rb"), sock.makefile("wb")

        def call(frame):
            write_frame(wfile, frame)
            wfile.flush()
            return read_frame(rfile)

        try:
            hello = call(cluster_mod._OP_HELLO + pack_str("badmouth"))
            assert hello[:1] == cluster_mod._ST_OK
            worker_id, _ = unpack_str(hello, 1)
            bad_reports = 0
            deadline = time.monotonic() + 10.0
            while bad_reports < cluster_mod._BAD_PAYLOAD_LIMIT + 1:
                assert time.monotonic() < deadline, "poison path never fired"
                response = call(cluster_mod._OP_POLL + pack_str(worker_id))
                if response[:1] != cluster_mod._ST_OK:
                    time.sleep(0.02)
                    continue
                token, _ = unpack_str(response, 1)
                ack = call(
                    cluster_mod._OP_RESULT
                    + pack_str(worker_id)
                    + pack_str(token)
                    + cluster_mod._RESULT_BAD
                    + b"unreadable payload"
                )
                assert ack[:1] == cluster_mod._ST_OK
                bad_reports += 1
        finally:
            sock.close()

        runner.join(timeout=10.0)
        assert not runner.is_alive()
        # The batch did not hang and did not fabricate a result: it
        # degraded cleanly for the serial fallback to take over.
        assert isinstance(box.get("error"), ExecutorUnavailableError)
        stats = dispatcher.stats()
        assert stats["payloads_rejected"] == cluster_mod._BAD_PAYLOAD_LIMIT + 1
        assert stats["tasks_redispatched"] >= cluster_mod._BAD_PAYLOAD_LIMIT


class TestStatusRedial:
    def test_dispatcher_status_redials_under_policy(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        url = f"cluster://127.0.0.1:{dead_port}"
        t0 = time.monotonic()
        with pytest.raises(ConnectionError):
            dispatcher_status(
                url, timeout=0.5, retries=2, retry_delay=0.1, retry_seed="redial"
            )
        elapsed = time.monotonic() - t0
        # Two jittered redial delays actually happened (>= raw/2 each).
        assert elapsed >= 0.1

    def test_dispatcher_status_with_retries_still_reads_live_counters(self):
        dispatcher = ensure_dispatcher("cluster://127.0.0.1:0")
        stats = dispatcher_status(dispatcher.url, retries=2, retry_delay=0.05)
        assert stats == dispatcher.stats()
