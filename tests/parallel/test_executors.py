"""Tests for the named executor registry (``repro.parallel.executors``).

Covers the ISSUE 3 contract: ``serial`` and ``process`` are registered,
selection goes explicit argument > ``REPRO_EXECUTOR`` > ``process`` default,
unknown names fail loudly, third-party executors can be registered without
touching ``ParallelMap`` call sites, and infrastructure failures
(``ExecutorUnavailableError``) fall back to the bit-identical serial path.
"""

import os

import pytest

from repro.parallel import available_executors, get_executor, parallel_map, register_executor
from repro.parallel.backend import ParallelMap
from repro.parallel.executors import (
    _REGISTRY,
    DEFAULT_EXECUTOR,
    EXECUTOR_ENV_VAR,
    Executor,
    ExecutorUnavailableError,
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
)


def _pid_task(_):
    return os.getpid()


class TestRegistry:
    def test_builtins_are_registered(self):
        names = available_executors()
        assert "serial" in names and "process" in names

    def test_get_executor_instantiates(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)

    def test_unknown_name_fails_loudly_listing_choices(self):
        with pytest.raises(ValueError, match="serial"):
            get_executor("sharded-quantum")

    def test_register_requires_a_name(self):
        class Nameless(Executor):
            pass

        with pytest.raises(ValueError, match="name"):
            register_executor(Nameless)

    def test_custom_executor_registration(self):
        @register_executor
        class Tagging(Executor):
            name = "tagging-test"

            def map(self, fn, tasks, *, order, n_workers):
                return [("tagged", fn(task)) for task in tasks]

        try:
            result = parallel_map(abs, [-1, -2], n_jobs=2, executor="tagging-test")
            assert result == [("tagged", 1), ("tagged", 2)]
        finally:
            del _REGISTRY["tagging-test"]


class TestSelection:
    def test_default_is_process(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        assert DEFAULT_EXECUTOR == "process"
        assert isinstance(resolve_executor(), ProcessExecutor)

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "serial")
        assert isinstance(resolve_executor(), SerialExecutor)

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "serial")
        assert isinstance(resolve_executor("process"), ProcessExecutor)
        assert isinstance(resolve_executor(SerialExecutor()), SerialExecutor)

    def test_env_typo_fails_loudly_when_parallel_region_entered(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "rya")  # typo'd "ray"
        # Serial regions never consult the registry...
        assert parallel_map(abs, [-1, -2], n_jobs=1) == [1, 2]
        # ...but a parallel region must surface the typo, not run with it.
        with pytest.raises(ValueError, match="rya"):
            parallel_map(abs, [-1, -2], n_jobs=2)

    def test_invalid_priority_rejected_under_every_executor(self, monkeypatch):
        # The permutation check is executor-independent: a buggy priority
        # list cannot hide behind REPRO_EXECUTOR=serial.
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "serial")
        with pytest.raises(ValueError, match="permutation"):
            parallel_map(abs, [-1, -2], n_jobs=2, priority=[0, 0])

    def test_env_serial_keeps_n_jobs_in_process(self, monkeypatch):
        """REPRO_EXECUTOR=serial swaps the backend under every call site:
        n_jobs=2 work stays in this process."""
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "serial")
        pids = parallel_map(_pid_task, [None] * 3, n_jobs=2)
        assert set(pids) == {os.getpid()}

    def test_process_executor_leaves_this_process(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        pids = parallel_map(_pid_task, [None] * 3, n_jobs=2)
        assert os.getpid() not in set(pids)


class TestFallbacks:
    def test_unavailable_executor_falls_back_to_serial(self):
        class Flaky(Executor):
            name = "flaky-test"

            def map(self, fn, tasks, *, order, n_workers):
                raise ExecutorUnavailableError("cluster unreachable")

        result = ParallelMap(n_jobs=2, executor=Flaky()).map(abs, [-1, -2, -3])
        assert result == [1, 2, 3]

    def test_unsupported_tasks_fall_back_to_serial(self):
        captured = []

        def closure(x):  # un-picklable: ProcessExecutor.supports is False
            captured.append(x)
            return x + 1

        assert parallel_map(closure, [1, 2, 3], n_jobs=2) == [2, 3, 4]
        assert captured == [1, 2, 3]

    def test_task_exceptions_still_propagate(self):
        class Faithful(Executor):
            name = "faithful-test"

            def map(self, fn, tasks, *, order, n_workers):
                return [fn(task) for task in tasks]

        def boom(x):
            raise RuntimeError(f"task {x} exploded")

        with pytest.raises(RuntimeError, match="task 1 exploded"):
            ParallelMap(n_jobs=2, executor=Faithful()).map(boom, [1, 2])
