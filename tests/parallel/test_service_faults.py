"""Memo service behind the fault proxy: degrade-to-miss, never crash (ISSUE 9).

The memo client's contract is the softest in the stack — a cache may
always miss — so under injected wire faults every operation must resolve
to a hit with the exact stored bytes or a clean default, the circuit
must make a hard-dead server cost fast local checks instead of repeated
timeouts, and a recovered wire must heal it.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.parallel.resilience import CLOSED, OPEN
from repro.parallel.service import MemoServer, RemoteMemoStore
from repro.testing import FaultSchedule, FaultWire


@pytest.fixture()
def memo_server(tmp_path):
    server = MemoServer(tmp_path / "memo").start()
    yield server
    server.shutdown()


def proxied_store(proxy, **kwargs):
    kwargs.setdefault("timeout", 5.0)
    return RemoteMemoStore(proxy.url("memo"), **kwargs)


class TestLossyWire:
    def test_every_get_is_exact_hit_or_clean_default(self, memo_server):
        schedule = FaultSchedule(
            "memo-storm", drop=0.1, garble=0.1, truncate=0.08
        )
        values = {
            f"key-{i}": {"i": i, "arr": np.arange(4) * i} for i in range(30)
        }
        with FaultWire((memo_server.host, memo_server.port), schedule) as proxy:
            store = proxied_store(
                proxy, retry_delay=0.02, retry_seed="memo-storm"
            )
            try:
                for key, value in values.items():
                    store.put("tests", key, value)
                hits = 0
                for key, value in values.items():
                    got = store.get("tests", key, default=None)
                    if got is None:
                        continue  # a miss is always a legal answer
                    # A hit must be the exact stored value — faults may
                    # cost misses, never corrupt data.
                    assert got["i"] == value["i"]
                    assert np.array_equal(got["arr"], value["arr"])
                    hits += 1
                stats = store.stats()
                assert stats["hits"] == hits
                # The storm really happened and was absorbed as errors.
                assert proxy.stats()["injected"] > 0
                assert stats["errors"] > 0
            finally:
                store.close()

    def test_lossy_run_replays_identically_under_seed(self, memo_server):
        def run(wire_seed, retry_seed):
            schedule = FaultSchedule(wire_seed, drop=0.15, garble=0.1)
            outcomes = []
            with FaultWire(
                (memo_server.host, memo_server.port), schedule
            ) as proxy:
                store = proxied_store(
                    proxy, retry_delay=0.01, retry_seed=retry_seed
                )
                try:
                    for i in range(20):
                        key = f"replay-{i}"
                        store.put("tests", key, i)
                        # Let any open window lapse so the schedule, not
                        # wall-clock jitter, decides each op's fate.
                        ep = store.circuits._endpoints.get(store.url)
                        if ep is not None:
                            ep.open_until = 0.0
                        got = store.get("tests", key, default="miss")
                        outcomes.append(got)
                finally:
                    store.close()
            return outcomes

        assert run("wire-A", "retry-A") == run("wire-A", "retry-A")

    def test_put_failures_degrade_to_noop_cache(self, memo_server):
        # Every response frame dies: puts and gets are all errors/misses,
        # but none of them raises.
        schedule = FaultSchedule(0, drop=1.0)
        with FaultWire((memo_server.host, memo_server.port), schedule) as proxy:
            store = proxied_store(proxy, retry_delay=0.01, retry_seed="noop")
            try:
                for i in range(5):
                    store.put("tests", f"k{i}", i)
                    assert store.get("tests", f"k{i}", default="miss") == "miss"
                assert store.stats()["hits"] == 0
                assert store.stats()["errors"] > 0
            finally:
                store.close()


class TestHardDead:
    def test_reset_storm_trips_circuit_to_fast_local_misses(self, memo_server):
        schedule = FaultSchedule(0, reset=1.0)
        with FaultWire((memo_server.host, memo_server.port), schedule) as proxy:
            # Wide retry_delay: the circuit must stay open for the test.
            store = proxied_store(proxy, retry_delay=5.0, retry_seed="dead")
            try:
                assert store.get("tests", "k", default="miss") == "miss"
                assert store.circuit_state() == OPEN
                failures = store.circuits.snapshot()[store.url]["failures"]
                # Inside the open window operations are instant local
                # misses — no connect, no timeout, no new failures.
                t0 = time.monotonic()
                for i in range(20):
                    assert store.get("tests", f"k{i}", default="miss") == "miss"
                assert time.monotonic() - t0 < 0.5
                assert (
                    store.circuits.snapshot()[store.url]["failures"] == failures
                )
            finally:
                store.close()

    def test_recovered_wire_heals_the_circuit(self, memo_server):
        proxy = FaultWire(
            (memo_server.host, memo_server.port), FaultSchedule(0, reset=1.0)
        ).start()
        try:
            store = proxied_store(proxy, retry_delay=0.05, retry_seed="heal")
            try:
                assert store.get("tests", "k", default="miss") == "miss"
                assert store.circuit_state() == OPEN
                # The wire recovers; the schedule is swappable live.
                proxy.schedule = FaultSchedule(0)  # all pass
                store.circuits._endpoints[store.url].open_until = 0.0
                # The half-open probe succeeds and the circuit closes.
                store.put("tests", "k", {"v": 42})
                assert store.get("tests", "k") == {"v": 42}
                assert store.circuit_state() == CLOSED
            finally:
                store.close()
        finally:
            proxy.shutdown()
