"""Tests for the deterministic fault-injecting proxy (ISSUE 9).

FaultWire is the proof harness for the resilience layer, so it has to be
trustworthy itself: schedules must be pure functions of (seed, conn,
frame), and each action must do exactly what the clients are later
asserted to survive — drop = EOF, truncate = torn frame, reset = RST,
garble = same-length unparseable body, delay = stall.  Everything here
runs against a tiny in-process echo service.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.parallel.wire import ProtocolError, FrameService, read_frame, write_frame
from repro.testing import (
    ACTIONS,
    Fault,
    FaultSchedule,
    FaultWire,
    ScriptedSchedule,
)


class EchoService(FrameService):
    """Echoes every request frame back verbatim."""

    scheme = "echo://"

    def _handle_frame(self, request: bytes) -> bytes:
        return request


@pytest.fixture()
def echo():
    service = EchoService(timeout=10.0).start()
    yield service
    service.shutdown()


class ProxyClient:
    """A persistent framed connection through the proxy (one conn index)."""

    def __init__(self, proxy: FaultWire, timeout: float = 5.0) -> None:
        self.sock = socket.create_connection(
            (proxy.host, proxy.port), timeout=timeout
        )
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")

    def call(self, payload: bytes) -> bytes:
        write_frame(self.wfile, payload)
        self.wfile.flush()
        return read_frame(self.rfile)

    def close(self) -> None:
        for closer in (self.rfile.close, self.wfile.close, self.sock.close):
            try:
                closer()
            except OSError:
                pass


# ---------------------------------------------------------------- schedules


def test_fault_validation():
    with pytest.raises(ValueError):
        Fault("explode")
    with pytest.raises(ValueError):
        Fault("delay", delay_s=-1.0)
    with pytest.raises(ValueError):
        Fault("truncate", keep_bytes=-1)


def test_schedule_rate_validation():
    with pytest.raises(ValueError):
        FaultSchedule(0, drop=1.2)
    with pytest.raises(ValueError):
        FaultSchedule(0, drop=0.6, reset=0.6)  # sums past 1.0
    with pytest.raises(ValueError):
        FaultSchedule(0, delay_s=-0.1)
    with pytest.raises(ValueError):
        FaultSchedule(0, warmup_frames=-1)


def test_schedule_is_pure_function_of_seed_conn_frame():
    kwargs = dict(drop=0.1, delay=0.1, truncate=0.1, reset=0.1, garble=0.1)
    a = FaultSchedule("chaos-1", **kwargs)
    b = FaultSchedule("chaos-1", **kwargs)
    grid = [(c, f) for c in range(8) for f in range(32)]
    decisions_a = [a.decide(c, f) for c, f in grid]
    assert decisions_a == [b.decide(c, f) for c, f in grid]
    # Order of evaluation is irrelevant: each decision is independent.
    assert decisions_a == [a.decide(c, f) for c, f in grid]
    # A different seed yields a different storm.
    other = FaultSchedule("chaos-2", **kwargs)
    assert decisions_a != [other.decide(c, f) for c, f in grid]
    # With those rates something actually fires.
    assert any(d.action != "pass" for d in decisions_a)


def test_schedule_warmup_frames_pass_clean():
    schedule = FaultSchedule(0, drop=1.0, warmup_frames=3)
    for frame in range(3):
        assert schedule.decide(0, frame).action == "pass"
    assert schedule.decide(0, 3).action == "drop"


def test_scripted_schedule():
    schedule = ScriptedSchedule(
        {(0, 1): "drop", (2, 0): Fault("delay", delay_s=0.5)}
    )
    assert schedule.decide(0, 0).action == "pass"
    assert schedule.decide(0, 1).action == "drop"
    assert schedule.decide(2, 0).delay_s == 0.5
    assert schedule.decide(9, 9).action == "pass"


def test_actions_tuple_is_complete():
    assert set(ACTIONS) == {"pass", "delay", "drop", "truncate", "reset", "garble"}


# ------------------------------------------------------------------- proxy


def test_pass_through_is_byte_identical(echo):
    with FaultWire((echo.host, echo.port)) as proxy:
        client = ProxyClient(proxy)
        try:
            for i in range(5):
                payload = f"hello-{i}".encode() * (i + 1)
                assert client.call(payload) == payload
        finally:
            client.close()
        stats = proxy.stats()
    assert stats["connections"] == 1
    assert stats["frames"] == 5
    assert stats["injected"] == 0
    assert stats["by_action"]["pass"] == 5


def test_drop_looks_like_server_death_mid_await(echo):
    schedule = ScriptedSchedule({(0, 1): "drop"})
    with FaultWire((echo.host, echo.port), schedule) as proxy:
        client = ProxyClient(proxy)
        try:
            assert client.call(b"first") == b"first"  # frame 0 passes
            with pytest.raises((ProtocolError, OSError)):
                client.call(b"second")  # frame 1 swallowed, conn closed
        finally:
            client.close()
        assert proxy.stats()["by_action"]["drop"] == 1


def test_truncate_tears_the_frame(echo):
    schedule = ScriptedSchedule({(0, 0): Fault("truncate", keep_bytes=3)})
    with FaultWire((echo.host, echo.port), schedule) as proxy:
        sock = socket.create_connection((proxy.host, proxy.port), timeout=5.0)
        try:
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            write_frame(wfile, b"0123456789")
            wfile.flush()
            # The length header promises 10 bytes; only 3 arrive then EOF.
            with pytest.raises((ProtocolError, OSError)):
                read_frame(rfile)
        finally:
            sock.close()
        assert proxy.stats()["by_action"]["truncate"] == 1


def test_reset_is_a_hard_rst(echo):
    schedule = ScriptedSchedule({(0, 0): "reset"})
    with FaultWire((echo.host, echo.port), schedule) as proxy:
        client = ProxyClient(proxy)
        try:
            with pytest.raises((ConnectionError, ProtocolError, OSError)):
                client.call(b"doomed")
        finally:
            client.close()
        assert proxy.stats()["by_action"]["reset"] == 1


def test_delay_stalls_but_delivers(echo):
    schedule = ScriptedSchedule({(0, 0): Fault("delay", delay_s=0.3)})
    with FaultWire((echo.host, echo.port), schedule) as proxy:
        client = ProxyClient(proxy)
        try:
            t0 = time.monotonic()
            assert client.call(b"slow but intact") == b"slow but intact"
            assert time.monotonic() - t0 >= 0.28
        finally:
            client.close()


def test_garble_keeps_length_and_status_byte_but_breaks_the_body(echo):
    schedule = ScriptedSchedule({(0, 0): "garble"})
    payload = b'+{"answer": 42}'
    with FaultWire((echo.host, echo.port), schedule) as proxy:
        client = ProxyClient(proxy)
        try:
            got = client.call(payload)
        finally:
            client.close()
    assert len(got) == len(payload)
    assert got[:1] == payload[:1]  # status byte survives classification
    assert got[1:] == bytes(0xFF ^ b for b in payload[1:])
    # The inverted body cannot decode as UTF-8, so it can never re-parse
    # as different-but-valid JSON: garbled bodies fail, never lie.
    with pytest.raises(UnicodeDecodeError):
        got[1:].decode("utf-8")


def test_connection_indices_follow_accept_order(echo):
    # Conn 1's frame 0 dropped; conn 0 untouched.
    schedule = ScriptedSchedule({(1, 0): "drop"})
    with FaultWire((echo.host, echo.port), schedule) as proxy:
        first = ProxyClient(proxy)
        try:
            assert first.call(b"conn-0") == b"conn-0"
            second = ProxyClient(proxy)
            try:
                with pytest.raises((ProtocolError, OSError)):
                    second.call(b"conn-1")
            finally:
                second.close()
            assert first.call(b"conn-0 again") == b"conn-0 again"
        finally:
            first.close()
        assert proxy.stats()["connections"] == 2


def test_dead_upstream_yields_clean_eof():
    # Find a port nothing listens on by binding and closing it.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    with FaultWire(("127.0.0.1", dead_port)) as proxy:
        client = ProxyClient(proxy)
        try:
            with pytest.raises((ProtocolError, OSError)):
                client.call(b"nobody home")
        finally:
            client.close()


def test_upstream_url_parsing():
    with pytest.raises(ValueError):
        FaultWire("not-a-hostport")
    proxy = FaultWire("memo://127.0.0.1:7777")
    assert proxy.upstream == ("127.0.0.1", 7777)
    assert proxy.url("serve").startswith("serve://127.0.0.1:")
    proxy.shutdown()


def test_seeded_storm_replays_identically(echo):
    """Same seed, same request sequence => byte-identical fault pattern."""

    def run(seed):
        schedule = FaultSchedule(seed, drop=0.3, garble=0.2)
        outcomes = []
        with FaultWire((echo.host, echo.port), schedule) as proxy:
            for _ in range(6):
                client = ProxyClient(proxy)
                try:
                    for i in range(4):
                        try:
                            got = client.call(b"ping-%d" % i)
                            outcomes.append(
                                "ok" if got == b"ping-%d" % i else "garbled"
                            )
                        except (ProtocolError, OSError):
                            outcomes.append("dead")
                            break
                finally:
                    client.close()
            stats = proxy.stats()
        return outcomes, stats["by_action"]

    outcomes_a, by_action_a = run("replay")
    outcomes_b, by_action_b = run("replay")
    assert outcomes_a == outcomes_b
    assert by_action_a == by_action_b
    assert by_action_a["drop"] + by_action_a["garble"] > 0
