"""Tests for trace records and table conversion."""

import pytest

from repro.simulator.ccsd_iteration import run_ccsd_iteration
from repro.simulator.traces import Trace, experiments_to_traces, traces_to_table


class TestTrace:
    def test_node_hours_and_seconds(self):
        t = Trace("aurora", 44, 260, 10, 40, runtime_s=360.0)
        assert t.node_seconds == pytest.approx(3600.0)
        assert t.node_hours == pytest.approx(1.0)

    def test_features_tuple(self):
        t = Trace("aurora", 44, 260, 10, 40, runtime_s=1.0)
        assert t.features() == (44, 260, 10, 40)


class TestConversions:
    def test_experiments_to_traces(self):
        exps = [run_ccsd_iteration("aurora", 44, 260, 5, 40, rng=i) for i in range(3)]
        traces = experiments_to_traces(exps)
        assert len(traces) == 3
        assert traces[0].runtime_s == exps[0].runtime_s

    def test_traces_to_table_schema(self):
        traces = [
            Trace("aurora", 44, 260, 5, 40, 17.0),
            Trace("aurora", 99, 718, 60, 80, 50.0),
        ]
        table = traces_to_table(traces)
        assert table.n_rows == 2
        for col in ("machine", "n_occupied", "n_virtual", "n_nodes", "tile_size", "runtime_s", "node_hours"):
            assert col in table
        assert table["node_hours"][0] == pytest.approx(17.0 * 5 / 3600)

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            traces_to_table([])
