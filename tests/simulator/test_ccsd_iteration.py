"""Tests for the one-call CCSD experiment API."""

import pytest

from repro.machines import AURORA
from repro.simulator.ccsd_iteration import run_ccsd_iteration
from repro.tamm.runtime import InfeasibleConfigurationError, TammRuntimeSimulator


class TestRunCCSDIteration:
    def test_returns_experiment_record(self):
        exp = run_ccsd_iteration("aurora", 44, 260, 5, 40, rng=0)
        assert exp.machine == "aurora"
        assert exp.features == (44, 260, 5, 40)
        assert exp.runtime_s > 0
        assert exp.node_hours == pytest.approx(exp.runtime_s * 5 / 3600)

    def test_accepts_machine_spec_object(self):
        exp = run_ccsd_iteration(AURORA, 44, 260, 5, 40, rng=0)
        assert exp.machine == "aurora"

    def test_noise_toggle(self):
        noisy = run_ccsd_iteration("frontier", 99, 718, 50, 80, rng=0, apply_noise=True)
        clean = run_ccsd_iteration("frontier", 99, 718, 50, 80, rng=0, apply_noise=False)
        assert clean.runtime_s == pytest.approx(clean.breakdown.total_time)
        assert noisy.runtime_s != clean.runtime_s

    def test_reuses_provided_simulator(self):
        sim = TammRuntimeSimulator(AURORA)
        exp = run_ccsd_iteration("aurora", 44, 260, 5, 40, rng=0, simulator=sim)
        assert exp.breakdown.machine == "aurora"

    def test_infeasible_configuration_raises(self):
        with pytest.raises(InfeasibleConfigurationError):
            run_ccsd_iteration("aurora", 146, 1568, 1, 80)

    def test_unknown_machine(self):
        with pytest.raises(ValueError):
            run_ccsd_iteration("summit", 44, 260, 5, 40)

    def test_breakdown_fields_consistent(self):
        exp = run_ccsd_iteration("aurora", 99, 718, 60, 80, rng=1)
        b = exp.breakdown
        assert b.n_nodes == 60 and b.tile_size == 80
        assert b.noisy_time == exp.runtime_s
        assert set(b.per_term) and all(v >= 0 for v in b.per_term.values())
