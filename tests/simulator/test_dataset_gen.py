"""Tests for the dataset sweep generator."""

import numpy as np
import pytest

from repro.simulator.dataset_gen import (
    DEFAULT_TILE_GRID,
    PAPER_DATASET_SIZES,
    SweepConfig,
    generate_dataset,
    generate_sweep,
)


@pytest.fixture(scope="module")
def tiny_config() -> SweepConfig:
    return SweepConfig(
        machine="aurora",
        problems=[(44, 260), (99, 718)],
        tile_grid=[40, 80, 120],
        node_grid=[5, 20, 80, 320],
        seed=3,
    )


class TestSweep:
    def test_sweep_covers_requested_problems(self, tiny_config):
        experiments = generate_sweep(tiny_config)
        pairs = {(e.n_occupied, e.n_virtual) for e in experiments}
        assert pairs == {(44, 260), (99, 718)}

    def test_sweep_configs_are_feasible_and_unique(self, tiny_config):
        experiments = generate_sweep(tiny_config)
        configs = [(e.n_occupied, e.n_virtual, e.n_nodes, e.tile_size) for e in experiments]
        assert len(configs) == len(set(configs))
        assert all(e.runtime_s > 0 for e in experiments)

    def test_sweep_respects_grids(self, tiny_config):
        experiments = generate_sweep(tiny_config)
        assert {e.tile_size for e in experiments} <= set(tiny_config.tile_grid)
        assert {e.n_nodes for e in experiments} <= set(tiny_config.node_grid)

    def test_catalogue_defaults_to_machine(self):
        config = SweepConfig(machine="frontier")
        assert len(config.catalogue()) == 20


class TestGenerateDataset:
    def test_paper_sizes_by_default(self):
        # This generates the full Aurora sweep once; it is the slowest test of
        # the module (~2 s).
        traces = generate_dataset("aurora", seed=0)
        assert len(traces) == PAPER_DATASET_SIZES["aurora"][0]

    def test_subsampling_keeps_every_problem_size(self, tiny_config):
        traces = generate_dataset("aurora", n_total=10, config=tiny_config)
        assert len(traces) == 10
        pairs = {(t.n_occupied, t.n_virtual) for t in traces}
        assert pairs == {(44, 260), (99, 718)}

    def test_subsampling_larger_than_sweep_returns_all(self, tiny_config):
        traces = generate_dataset("aurora", n_total=10_000, config=tiny_config)
        full = generate_sweep(tiny_config)
        assert len(traces) == len(full)

    def test_reproducible_with_seed(self, tiny_config):
        a = generate_dataset("aurora", n_total=12, config=tiny_config)
        b = generate_dataset("aurora", n_total=12, config=tiny_config)
        assert [t.features() for t in a] == [t.features() for t in b]
        np.testing.assert_allclose([t.runtime_s for t in a], [t.runtime_s for t in b])

    def test_default_tile_grid_contains_paper_values(self):
        assert 73 in DEFAULT_TILE_GRID
        assert min(DEFAULT_TILE_GRID) == 40 and max(DEFAULT_TILE_GRID) == 150
