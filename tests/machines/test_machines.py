"""Tests for the Aurora and Frontier machine models."""

import pytest

from repro.machines import AURORA, FRONTIER, get_machine


class TestLookups:
    def test_get_machine_case_insensitive(self):
        assert get_machine("Aurora") is AURORA
        assert get_machine("FRONTIER") is FRONTIER

    def test_unknown_machine(self):
        with pytest.raises(ValueError):
            get_machine("perlmutter")


class TestSpecs:
    def test_node_peak_flops(self):
        assert AURORA.node_peak_flops == pytest.approx(6 * 52.0e12)
        assert FRONTIER.node_peak_flops == pytest.approx(4 * 53.0e12)

    def test_node_memory(self):
        assert AURORA.node_memory_bytes == pytest.approx(6 * 128e9)
        assert FRONTIER.node_memory_bytes == pytest.approx(4 * 128e9)

    def test_frontier_noisier_than_aurora(self):
        # The paper observes Frontier is harder to predict; our machine models
        # encode that via run-to-run noise and straggler parameters.
        assert FRONTIER.noise_sigma > AURORA.noise_sigma
        assert FRONTIER.straggler_probability > AURORA.straggler_probability

    def test_gemm_efficiency_monotone_in_tile(self):
        for machine in (AURORA, FRONTIER):
            effs = [machine.gemm_efficiency(t) for t in (20, 40, 80, 160)]
            assert all(b > a for a, b in zip(effs, effs[1:]))
            assert all(0 < e < 1 for e in effs)

    def test_gemm_efficiency_halfpoint(self):
        assert AURORA.gemm_efficiency(AURORA.gemm_halfpoint_tile) == pytest.approx(0.5)

    def test_gemm_efficiency_rejects_nonpositive_tile(self):
        with pytest.raises(ValueError):
            AURORA.gemm_efficiency(0)

    def test_effective_flops_below_peak(self):
        for machine in (AURORA, FRONTIER):
            assert machine.effective_node_flops(100) < machine.node_peak_flops

    def test_specs_are_frozen(self):
        with pytest.raises(Exception):
            AURORA.gpus_per_node = 12  # type: ignore[misc]
