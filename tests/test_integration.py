"""End-to-end integration tests: simulator -> dataset -> model -> advisor -> evaluation.

These mirror the paper's full pipeline at reduced scale and check the
headline qualitative conclusions rather than exact numbers.
"""

import numpy as np
import pytest

import repro
from repro.core.estimator import ResourceEstimator
from repro.core.evaluation import question_loss_report
from repro.ml.linear import LinearRegression
from repro.ml.metrics import mean_absolute_percentage_error, r2_score


class TestPackageSurface:
    def test_version_and_top_level_exports(self):
        assert repro.__version__
        assert hasattr(repro, "ResourceAdvisor")
        assert hasattr(repro, "build_dataset")
        assert repro.get_machine("aurora").name == "aurora"


class TestEndToEnd:
    def test_gb_model_predicts_runtime_well(self, fast_estimator_aurora, small_aurora_dataset):
        report = fast_estimator_aurora.evaluate_on(small_aurora_dataset)
        assert report["r2"] > 0.9
        assert report["mape"] < 0.2

    def test_gb_beats_linear_baseline(self, fast_estimator_aurora, small_aurora_dataset):
        ds = small_aurora_dataset
        lin = LinearRegression().fit(ds.X_train, ds.y_train)
        r2_gb = r2_score(ds.y_test, fast_estimator_aurora.predict(ds.X_test))
        r2_lin = r2_score(ds.y_test, lin.predict(ds.X_test))
        assert r2_gb > r2_lin

    def test_stq_vs_bq_node_count_contrast(self, fast_advisor_aurora):
        """Key paper observation: STQ picks many nodes, BQ picks few."""
        stq_nodes, bq_nodes = [], []
        for o, v in [(44, 260), (99, 718), (134, 951)]:
            stq_nodes.append(fast_advisor_aurora.shortest_time(o, v).n_nodes)
            bq_nodes.append(fast_advisor_aurora.budget(o, v).n_nodes)
        assert np.mean(bq_nodes) < np.mean(stq_nodes)

    def test_question_level_metrics_reasonable(self, fast_estimator_aurora, small_aurora_dataset):
        ds = small_aurora_dataset
        preds = fast_estimator_aurora.predict(ds.X_test)
        stq = question_loss_report(ds.X_test, ds.y_test, preds, "runtime")
        bq = question_loss_report(ds.X_test, ds.y_test, preds, "node_hours")
        assert stq["mape"] < 0.35
        assert bq["mape"] < 0.5

    def test_frontier_harder_to_predict_than_aurora(
        self, fast_estimator_aurora, small_aurora_dataset, small_frontier_dataset
    ):
        """The paper reports higher MAPE on Frontier than Aurora for the same model."""
        ds_f = small_frontier_dataset
        est_f = ResourceEstimator(preset="fast", random_state=0).fit(ds_f.X_train, ds_f.y_train)
        results = {
            "aurora": mean_absolute_percentage_error(
                small_aurora_dataset.y_test,
                fast_estimator_aurora.predict(small_aurora_dataset.X_test),
            ),
            "frontier": mean_absolute_percentage_error(ds_f.y_test, est_f.predict(ds_f.X_test)),
        }
        assert results["frontier"] > results["aurora"] * 0.8  # noisier, generally harder

    def test_simulated_experiment_matches_dataset_schema(self, small_aurora_dataset):
        exp = repro.run_ccsd_iteration("aurora", 44, 260, 5, 40, rng=0)
        features = np.asarray(exp.features, dtype=float)
        assert features.shape[0] == small_aurora_dataset.X.shape[1]
