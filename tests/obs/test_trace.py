"""Tests for the tracing core (``repro.obs.trace``).

Pins the PR 10 contracts: spans are free when tracing is off, trace ids
replay under a seed, context propagates through ``contextvars`` and the
wire-context JSON, and the ring/sink record what the CLI tools read back.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import (
    TRACE_DIR_ENV,
    TRACE_SEED_ENV,
    configure_tracing,
    current_span,
    new_trace_id,
    parent_from_wire,
    recent_spans,
    reset_tracing,
    span,
    tracing_enabled,
    wire_context,
)


class TestEnablement:
    def test_disabled_by_default(self):
        assert not tracing_enabled()
        with span("x") as s:
            assert s.trace_id is None  # the null span
        assert recent_spans() == []

    def test_trace_dir_env_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        reset_tracing()
        assert tracing_enabled()

    def test_configure_enabled_without_dir(self):
        configure_tracing(enabled=True)
        assert tracing_enabled()
        with span("x") as s:
            assert s.trace_id is not None
        assert len(recent_spans()) == 1


class TestSeededReplay:
    def test_same_seed_same_ids(self):
        configure_tracing(enabled=True, seed=42)
        first = [new_trace_id() for _ in range(5)]
        reset_tracing()
        configure_tracing(enabled=True, seed=42)
        assert [new_trace_id() for _ in range(5)] == first

    def test_env_seed_respected(self, monkeypatch):
        monkeypatch.setenv(TRACE_SEED_ENV, "7")
        configure_tracing(enabled=True)
        first = new_trace_id()
        reset_tracing()
        configure_tracing(enabled=True)
        assert new_trace_id() == first

    def test_different_seeds_differ(self):
        configure_tracing(enabled=True, seed=1)
        a = new_trace_id()
        reset_tracing()
        configure_tracing(enabled=True, seed=2)
        assert new_trace_id() != a


class TestSpans:
    def test_nesting_links_parent_and_trace(self):
        configure_tracing(enabled=True)
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        assert current_span() is None
        names = [s["name"] for s in recent_spans()]
        assert names == ["inner", "outer"]  # children finish first

    def test_annotate_accumulates_and_clamps(self):
        configure_tracing(enabled=True)
        with span("x") as s:
            s.annotate("wait", 0.25)
            s.annotate("wait", 0.25)
            s.annotate("wait", -5.0)  # clamped, never negative
        recorded = recent_spans()[-1]
        assert recorded["hops"]["wait"] == pytest.approx(0.5)

    def test_module_annotate_without_span_is_noop(self):
        configure_tracing(enabled=True)
        obs_trace.annotate("wait", 1.0)  # must not raise

    def test_duration_is_positive(self):
        configure_tracing(enabled=True)
        with span("x"):
            pass
        assert recent_spans()[-1]["duration_s"] >= 0.0


class TestWireContext:
    def test_round_trip(self):
        configure_tracing(enabled=True)
        with span("root") as root:
            ctx = wire_context()
            parent = parent_from_wire(ctx)
            assert parent["trace_id"] == root.trace_id
            assert parent["span_id"] == root.span_id
            with span("remote", parent=parent) as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id

    def test_none_without_live_span_or_tracing(self):
        assert wire_context() is None
        configure_tracing(enabled=True)
        assert wire_context() is None  # enabled but no live span

    @pytest.mark.parametrize(
        "junk", [None, "", "not json", "[]", "42", '{"a": "b"}', '{"trace_id": ""}']
    )
    def test_junk_wire_context_never_raises(self, junk):
        assert parent_from_wire(junk) is None

    def test_non_string_ids_coerce(self):
        parent = parent_from_wire('{"trace_id": 7, "span_id": 8}')
        assert parent == {"trace_id": "7", "span_id": "8"}


class TestSink:
    def test_spans_append_to_jsonl(self, tmp_path):
        configure_tracing(trace_dir=str(tmp_path))
        with span("first"):
            pass
        with span("second"):
            pass
        path = tmp_path / f"trace-{os.getpid()}.jsonl"
        lines = path.read_text().strip().splitlines()
        docs = [json.loads(line) for line in lines]
        assert [d["name"] for d in docs] == ["first", "second"]
        assert all(d["trace_id"] for d in docs)

    def test_unwritable_sink_is_swallowed(self, tmp_path):
        target = tmp_path / "nope"
        target.write_text("a file, not a directory")
        configure_tracing(trace_dir=str(target / "sub"))
        with span("x"):
            pass  # must not raise; ring still records
        assert recent_spans()[-1]["name"] == "x"
