"""Trace propagation across all three wire protocols (PR 10 tentpole).

In-process servers and clients share one span ring, so linkage is
asserted directly: the server-side frame span's ``parent_id`` must be the
client-side span that sent the request.  The same linkage is then proven
across real process boundaries through the JSONL sinks (see
``test_subprocess.py``).  The hard parity bar rides along: tracing on vs
off changes no answered byte, and old peers (``wire_extensions = False``)
keep round-tripping with traced clients.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.trace import configure_tracing, recent_spans
from repro.parallel.cluster import (
    ClusterExecutor,
    ClusterWorker,
    ensure_dispatcher,
    shutdown_dispatchers,
)
from repro.parallel.service import MemoServer, RemoteMemoStore
from repro.serve import ServeClient, ServeServer


def _square(task):
    return task * task


def _find(spans, name):
    return [s for s in spans if s["name"] == name]


def _assert_linked(spans, client_name, frame_name):
    """Some client-side span must parent some server-side frame span."""
    client_ids = {s["span_id"]: s["trace_id"] for s in _find(spans, client_name)}
    assert client_ids, f"no {client_name} span recorded"
    linked = [
        s
        for s in _find(spans, frame_name)
        if s["parent_id"] in client_ids
        and s["trace_id"] == client_ids[s["parent_id"]]
    ]
    assert linked, f"no {frame_name} span parented by a {client_name} span"
    return linked


class TestServeProtocol:
    def test_client_span_parents_server_frame_span(self, tiny_advisor, probe_X):
        configure_tracing(enabled=True)
        with ServeServer({"default": tiny_advisor}) as srv:
            client = ServeClient(srv.url)
            try:
                client.predict(probe_X)
            finally:
                client.close()
        linked = _assert_linked(recent_spans(500), "serve.call", "serve.frame")
        # Hop timings are non-negative and bounded by the frame duration.
        frame = linked[0]
        assert all(v >= 0.0 for v in frame["hops"].values())
        assert frame["duration_s"] >= max(frame["hops"].values(), default=0.0)

    def test_tracing_changes_no_answered_byte(self, tiny_advisor, probe_X):
        with ServeServer({"default": tiny_advisor}) as srv:
            client = ServeClient(srv.url)
            try:
                baseline = client.predict(probe_X)
                configure_tracing(enabled=True)
                traced_same_conn = client.predict(probe_X)
            finally:
                client.close()
            fresh = ServeClient(srv.url)
            try:
                traced_fresh_conn = fresh.predict(probe_X)
            finally:
                fresh.close()
        assert baseline.tobytes() == traced_same_conn.tobytes()
        assert baseline.tobytes() == traced_fresh_conn.tobytes()

    def test_traced_client_against_legacy_server(self, tiny_advisor, probe_X):
        class LegacyServeServer(ServeServer):
            wire_extensions = False  # a pre-observability peer

        configure_tracing(enabled=True)
        with LegacyServeServer({"default": tiny_advisor}) as srv:
            client = ServeClient(srv.url)
            try:
                traced = client.predict(probe_X)
                # Caps negotiation discovered the peer speaks no extension.
                assert client._replicas[0].caps == frozenset()
            finally:
                client.close()
        untraced_server = ServeServer({"default": tiny_advisor})
        with untraced_server as srv:
            client = ServeClient(srv.url)
            try:
                modern = client.predict(probe_X)
            finally:
                client.close()
        assert traced.tobytes() == modern.tobytes()


class TestMemoProtocol:
    def test_client_span_parents_server_frame_span(self, tmp_path):
        configure_tracing(enabled=True)
        with MemoServer(tmp_path / "served") as srv:
            store = RemoteMemoStore(srv.url)
            try:
                store.put("ns", {"k": 1}, {"value": 7})
                assert store.get("ns", {"k": 1}) == {"value": 7}
            finally:
                store.close()
            srv.shutdown()
        spans = recent_spans(500)
        _assert_linked(spans, "memo.get", "memo.frame")
        _assert_linked(spans, "memo.put", "memo.frame")
        # The round trip itself was attributed to the client span.
        get_span = _find(spans, "memo.get")[0]
        assert get_span["hops"].get("memo_wait", 0.0) > 0.0

    def test_traced_client_against_legacy_server(self, tmp_path):
        class LegacyMemoServer(MemoServer):
            wire_extensions = False

        configure_tracing(enabled=True)
        with LegacyMemoServer(tmp_path / "served") as srv:
            store = RemoteMemoStore(srv.url)
            try:
                store.put("ns", "key", [1, 2, 3])
                assert store.get("ns", "key") == [1, 2, 3]
                assert store.errors == 0
            finally:
                store.close()
            srv.shutdown()

    def test_tracing_off_probes_no_caps(self, tmp_path):
        with MemoServer(tmp_path / "served") as srv:
            store = RemoteMemoStore(srv.url)
            try:
                store.put("ns", "key", "value")
                assert store.get("ns", "key") == "value"
                # No tracing: the caps probe never ran, so the wire
                # behaviour is byte-identical to the pre-PR 10 client.
                assert store._caps is None
            finally:
                store.close()
            srv.shutdown()


class TestClusterProtocol:
    def test_worker_task_span_parents_result_frame(self):
        import threading

        configure_tracing(enabled=True)
        dispatcher = ensure_dispatcher("cluster://127.0.0.1:0")
        worker = ClusterWorker(
            dispatcher.url,
            name="obs-test",
            poll_interval=0.01,
            heartbeat_interval=0.2,
            reconnect_window=10.0,
        )
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            results = ClusterExecutor(url=dispatcher.url, worker_wait=10.0).map(
                _square, [2, 3, 4], order=[0, 1, 2], n_workers=2
            )
            assert results == [4, 9, 16]
        finally:
            worker.stop()
            thread.join(timeout=5.0)
            shutdown_dispatchers()
        spans = recent_spans(500)
        task_spans = _find(spans, "cluster.task")
        assert len(task_spans) == 3
        assert all(s["tags"]["ok"] for s in task_spans)
        _assert_linked(spans, "cluster.task", "cluster.frame")

    def test_parallel_map_records_a_span(self):
        from repro.parallel.backend import parallel_map

        configure_tracing(enabled=True)
        assert parallel_map(_square, [1, 2, 3], n_jobs=2, executor="serial") == [
            1,
            4,
            9,
        ]
        fanouts = _find(recent_spans(500), "parallel.map")
        assert fanouts and fanouts[-1]["tags"]["n_tasks"] == 3
