"""Shared fixtures for the observability tests.

Tracing is process-global state (ring, sink, RNG), so every test starts
and ends from a clean slate; the serve-layer fixtures mirror
``tests/serve/conftest.py`` — a deliberately tiny fitted advisor, because
the tracing contracts are model-size-independent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.advisor import ResourceAdvisor
from repro.core.estimator import ResourceEstimator
from repro.ml.gradient_boosting import GradientBoostingRegressor
from repro.obs.trace import TRACE_DIR_ENV, TRACE_SEED_ENV, reset_tracing


@pytest.fixture(autouse=True)
def _clean_tracing(monkeypatch):
    monkeypatch.delenv(TRACE_DIR_ENV, raising=False)
    monkeypatch.delenv(TRACE_SEED_ENV, raising=False)
    reset_tracing()
    yield
    reset_tracing()


@pytest.fixture(scope="session")
def tiny_advisor(small_aurora_dataset) -> ResourceAdvisor:
    estimator = ResourceEstimator(
        model=GradientBoostingRegressor(n_estimators=12, max_depth=3, random_state=0)
    )
    return ResourceAdvisor.from_dataset(small_aurora_dataset, estimator=estimator)


@pytest.fixture(scope="session")
def probe_X(small_aurora_dataset) -> np.ndarray:
    return np.ascontiguousarray(small_aurora_dataset.X_test[:8])
