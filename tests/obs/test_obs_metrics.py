"""Tests for the typed metrics registry (``repro.obs.metrics``).

The contract that matters most is the histogram's bucket math: quantiles
derived from fixed log-spaced buckets must track ``numpy.percentile``
within the bucket resolution (a factor of sqrt(2)) for any latency-shaped
sample, because CI's tail-latency guards read p95/p99 straight from
telemetry snapshots.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(10)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5


class TestHistogram:
    def test_empty_quantile_is_zero(self):
        assert Histogram("h").quantile(0.99) == 0.0

    def test_count_sum_max(self):
        h = Histogram("h")
        for v in (0.001, 0.002, 0.004):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(0.007)
        assert snap["max"] == pytest.approx(0.004)

    def test_negative_and_nan_clamp_to_zero(self):
        h = Histogram("h")
        h.observe(-1.0)
        h.observe(float("nan"))
        assert h.snapshot()["count"] == 2
        assert h.quantile(0.5) <= LATENCY_BUCKETS_S[0]

    @pytest.mark.parametrize("q", [0.50, 0.95, 0.99])
    def test_quantiles_track_numpy_percentile(self, q):
        # Latency-shaped sample: log-uniform over three decades, well
        # inside the fixed bucket range.
        rng = np.random.default_rng(7)
        samples = 10.0 ** rng.uniform(-3.5, -0.5, size=5000)
        h = Histogram("h")
        for v in samples:
            h.observe(float(v))
        estimated = h.quantile(q)
        true = float(np.percentile(samples, 100.0 * q))
        # Bucket bounds are sqrt(2)-spaced, so the interpolated estimate
        # can be off by at most one bucket's width.
        assert true / math.sqrt(2.0) * 0.999 <= estimated <= true * math.sqrt(2.0) * 1.001

    def test_overflow_bucket_counts(self):
        h = Histogram("h")
        h.observe(1e9)  # beyond the last bound
        assert h.snapshot()["count"] == 1
        # Overflow interpolates between the last bound and the observed
        # max — never past what was actually seen.
        assert LATENCY_BUCKETS_S[-1] <= h.quantile(0.5) <= 1e9
        assert h.quantile(1.0) == pytest.approx(1e9)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", model="m") is reg.counter("a", model="m")
        assert reg.counter("a") is not reg.counter("a", model="m")

    def test_type_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_labels_render_sorted_into_key(self):
        reg = MetricsRegistry()
        reg.counter("req", b="2", a="1").inc()
        snap = reg.snapshot()
        assert snap["counters"] == {"req{a=1,b=2}": 1}

    def test_snapshot_has_derived_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.001, 0.002, 0.004, 0.008):
            h.observe(v)
        snap = reg.snapshot()["histograms"]["lat"]
        assert snap["count"] == 4
        assert 0.0005 < snap["p50"] < snap["p95"] <= snap["p99"] < 0.02
