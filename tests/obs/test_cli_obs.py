"""The observability CLI surface: ``query fleet-stats``, ``trace``, ``--slow-ms``.

All in-process through ``repro.cli.main`` (the subprocess wiring is proven
in ``test_subprocess.py`` and the serve CLI suite), pinning the exit-code
contract: dead replica -> clean one-line stderr and exit 1, never a
traceback; missing configuration -> exit 2.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.cli import main
from repro.obs.trace import configure_tracing
from repro.serve import ServeClient, ServeServer


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _span(trace, span_id, name, *, parent=None, t=0.0, dur=0.001, hops=None, tags=None):
    return {
        "trace_id": trace,
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "t_wall": t,
        "duration_s": dur,
        "hops": hops or {},
        "tags": tags or {},
    }


@pytest.fixture()
def trace_dir(tmp_path):
    """Two recorded traces plus a torn tail line (a process died mid-write)."""
    spans = [
        _span("aaaa", "s1", "cli.query", t=1.0, dur=0.010),
        _span("aaaa", "s2", "serve.call", parent="s1", t=1.001, dur=0.005,
              tags={"op": "predict"}),
        _span("aaaa", "s3", "serve.frame", parent="s2", t=1.002, dur=0.002,
              hops={"queue_wait": 0.0001, "traverse": 0.001}),
        _span("bbbb", "s4", "memo.get", t=2.0, dur=0.001),
    ]
    lines = [json.dumps(s) for s in spans]
    lines.append('{"trace_id": "cc')  # torn mid-write: must be skipped
    (tmp_path / "trace-12345.jsonl").write_text("\n".join(lines) + "\n")
    return tmp_path


class TestTraceTop:
    def test_ranks_slowest_first(self, trace_dir, capsys):
        assert main(["trace", "top", "--trace-dir", str(trace_dir)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "trace aaaa  10.000ms  spans=3  root=cli.query"
        assert lines[1].startswith("trace bbbb  1.000ms  spans=1")

    def test_limit(self, trace_dir, capsys):
        assert main(["trace", "top", "-n", "1", "--trace-dir", str(trace_dir)]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 1

    def test_env_dir_default(self, trace_dir, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(trace_dir))
        assert main(["trace", "top"]) == 0
        assert "trace aaaa" in capsys.readouterr().out


class TestTraceShow:
    def test_reconstructs_multi_hop_tree(self, trace_dir, capsys):
        assert main(["trace", "show", "aaaa", "--trace-dir", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0] == "trace aaaa  (3 spans)"
        # Indentation encodes the hop chain: CLI -> client call -> server frame.
        assert lines[1].startswith("  cli.query  10.000ms")
        assert lines[2].startswith("    serve.call  5.000ms")
        assert "[op=predict]" in lines[2]
        assert lines[3].startswith("      serve.frame  2.000ms")
        assert "queue_wait=0.100ms" in lines[3]
        assert "traverse=1.000ms" in lines[3]

    def test_defaults_to_slowest_trace(self, trace_dir, capsys):
        assert main(["trace", "show", "--trace-dir", str(trace_dir)]) == 0
        assert "trace aaaa" in capsys.readouterr().out

    def test_unknown_id_exits_one(self, trace_dir, capsys):
        assert main(["trace", "show", "zzzz", "--trace-dir", str(trace_dir)]) == 1
        assert "no spans recorded" in capsys.readouterr().err

    def test_no_dir_or_url_exits_two(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        assert main(["trace", "top"]) == 2
        assert "--trace-dir" in capsys.readouterr().err

    def test_empty_dir_exits_one(self, tmp_path, capsys):
        assert main(["trace", "top", "--trace-dir", str(tmp_path)]) == 1
        assert "no recorded spans" in capsys.readouterr().err

    def test_scrapes_replica_ring_over_the_wire(self, tiny_advisor, probe_X, capsys):
        configure_tracing(enabled=True)
        with ServeServer({"default": tiny_advisor}) as srv:
            client = ServeClient(srv.url)
            try:
                client.predict(probe_X)
            finally:
                client.close()
            assert main(["trace", "top", "--url", srv.url]) == 0
        assert "serve" in capsys.readouterr().out

    def test_dead_url_is_clean_error(self, capsys):
        url = f"serve://127.0.0.1:{_free_port()}"
        assert main(["trace", "top", "--url", url, "--timeout", "1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("trace: ")
        assert "Traceback" not in err


class TestFleetStats:
    def test_live_replica_snapshot(self, tiny_advisor, probe_X, capsys):
        with ServeServer({"default": tiny_advisor}) as srv:
            client = ServeClient(srv.url)
            try:
                client.predict(probe_X)
            finally:
                client.close()
            assert main(["query", "fleet-stats", "--url", srv.url]) == 0
        report = json.loads(capsys.readouterr().out)
        doc = report[srv.url]
        assert doc["schema_version"] == 1
        assert doc["metrics"]["counters"]["serve.requests{op=predict}"] >= 1
        assert "spans" not in doc  # spans belong to `trace`, not fleet-stats

    def test_dead_replica_is_one_line_exit_one(self, capsys):
        url = f"serve://127.0.0.1:{_free_port()}"
        assert main(["query", "fleet-stats", "--url", url, "--timeout", "1"]) == 1
        captured = capsys.readouterr()
        err_lines = captured.err.strip().splitlines()
        assert len(err_lines) == 1
        assert err_lines[0].startswith("query: fleet-stats: ")
        assert "Traceback" not in captured.err

    def test_mixed_fleet_reports_live_and_flags_dead(
        self, tiny_advisor, probe_X, capsys
    ):
        dead = f"serve://127.0.0.1:{_free_port()}"
        with ServeServer({"default": tiny_advisor}) as srv:
            code = main(
                ["query", "fleet-stats", "--url", f"{srv.url},{dead}", "--timeout", "1"]
            )
        captured = capsys.readouterr()
        assert code == 1  # the dead replica still fails the scrape...
        report = json.loads(captured.out)  # ...but the live one reported
        assert srv.url in report and dead not in report
        assert dead in captured.err


class TestSlowMs:
    def test_slow_request_line_is_structured(self, tiny_advisor, probe_X, capsys):
        # Threshold of ~0 means every request is "slow": one predict, one line.
        with ServeServer({"default": tiny_advisor}, slow_ms=1e-4) as srv:
            client = ServeClient(srv.url)
            try:
                client.predict(probe_X)
            finally:
                client.close()
        err = capsys.readouterr().err
        lines = [l for l in err.splitlines() if '"slow_request"' in l]
        assert lines, err
        doc = json.loads(lines[0])
        assert doc["event"] == "slow_request"
        assert doc["threshold_ms"] == pytest.approx(1e-4)
        assert doc["duration_ms"] >= 0.0
        assert doc["op"] == "predict"
        assert doc["trace_id"]  # frame spans are forced on, ring-only
        assert isinstance(doc["hops_ms"], dict)

    def test_off_by_default_logs_nothing(self, tiny_advisor, probe_X, capsys):
        with ServeServer({"default": tiny_advisor}) as srv:
            client = ServeClient(srv.url)
            try:
                client.predict(probe_X)
            finally:
                client.close()
        assert '"slow_request"' not in capsys.readouterr().err
