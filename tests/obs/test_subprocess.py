"""Trace propagation across REAL process boundaries.

The in-process suite (``test_propagation.py``) proves span linkage inside
one ring; these tests prove the wire actually carries the context: a
traced client in this process must show up as the ``parent_id`` of frame
spans recorded in the *server process's* JSONL sink — for the memo
protocol (enabled via the ``REPRO_TRACE_DIR`` env), the serve protocol
(enabled via the ``--trace-dir`` flag), and a cluster worker agent.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.obs.trace import TRACE_DIR_ENV, configure_tracing, recent_spans
from repro.parallel.cluster import (
    ClusterExecutor,
    ensure_dispatcher,
    shutdown_dispatchers,
)
from repro.parallel.service import RemoteMemoStore
from repro.serve import ServeClient


def _env(trace_dir=None, extra_pythonpath=None):
    env = dict(os.environ)
    parts = [str(Path(repro.__file__).resolve().parents[1])]
    if extra_pythonpath:
        parts.append(str(extra_pythonpath))
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    if trace_dir is not None:
        env[TRACE_DIR_ENV] = str(trace_dir)
    else:
        env.pop(TRACE_DIR_ENV, None)
    return env


def _sink_spans(trace_dir, pid):
    path = Path(trace_dir) / f"trace-{pid}.jsonl"
    assert path.exists(), f"server process wrote no trace sink at {path}"
    return [json.loads(line) for line in path.read_text().splitlines() if line]


def _terminate(proc):
    if proc.poll() is None:
        proc.terminate()
    proc.wait(timeout=10.0)


class TestMemoServeSubprocess:
    def test_client_span_parents_frame_span_across_processes(self, tmp_path):
        sink = tmp_path / "traces"
        sink.mkdir()
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "memo-serve",
                "--memo-dir", str(tmp_path / "memo"),
                "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env(trace_dir=sink),
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on memo://" in banner, banner
            url = banner.rsplit("listening on ", 1)[1].strip()

            configure_tracing(enabled=True)
            store = RemoteMemoStore(url)
            try:
                store.put("ns", {"q": 1}, {"answer": 42})
                assert store.get("ns", {"q": 1}) == {"answer": 42}
            finally:
                store.close()
        finally:
            _terminate(proc)

        client_ids = {
            s["span_id"]: s["trace_id"]
            for s in recent_spans(100)
            if s["name"] in ("memo.get", "memo.put")
        }
        assert client_ids
        server_frames = [
            s for s in _sink_spans(sink, proc.pid) if s["name"] == "memo.frame"
        ]
        linked = [
            s
            for s in server_frames
            if s["parent_id"] in client_ids
            and s["trace_id"] == client_ids[s["parent_id"]]
        ]
        assert linked, server_frames


class TestServeSubprocess:
    def test_client_span_parents_frame_span_across_processes(self, tmp_path):
        sink = tmp_path / "traces"
        sink.mkdir()
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--rows", "150", "--trees", "12", "--depth", "3",
                "--tree-method", "hist",
                "--port", "0",
                "--registry", str(tmp_path / "registry"),
                "--trace-dir", str(sink),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env(),
        )
        try:
            url = None
            lines = []
            for line in proc.stdout:
                lines.append(line)
                if "listening on serve://" in line:
                    url = line.rsplit("listening on ", 1)[1].strip()
                    break
            assert url, "".join(lines)

            configure_tracing(enabled=True)
            client = ServeClient(url)
            try:
                import numpy as np

                client.predict(
                    np.array([[44.0, 260.0, 5.0, 40.0], [99.0, 718.0, 40.0, 80.0]])
                )
            finally:
                client.close()
        finally:
            _terminate(proc)

        call_ids = {
            s["span_id"]: s["trace_id"]
            for s in recent_spans(100)
            if s["name"] == "serve.call"
        }
        assert call_ids
        frames = [
            s for s in _sink_spans(sink, proc.pid) if s["name"] == "serve.frame"
        ]
        linked = [
            s
            for s in frames
            if s["parent_id"] in call_ids
            and s["trace_id"] == call_ids[s["parent_id"]]
        ]
        assert linked, frames
        # The hop breakdown survived the process boundary too.
        assert any("traverse" in s["hops"] for s in linked)


_TASK_MODULE = """\
def square(task):
    return task * task
"""


class TestClusterWorkerSubprocess:
    def test_worker_task_spans_land_in_worker_sink(self, tmp_path):
        sink = tmp_path / "traces"
        sink.mkdir()
        taskdir = tmp_path / "taskmod"
        taskdir.mkdir()
        (taskdir / "obs_cluster_tasks.py").write_text(_TASK_MODULE)
        sys.path.insert(0, str(taskdir))
        try:
            import obs_cluster_tasks

            configure_tracing(enabled=True)
            dispatcher = ensure_dispatcher("cluster://127.0.0.1:0")
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "cluster-work",
                    "--dispatcher", dispatcher.url,
                    "--name", "obs-sub",
                    "--heartbeat-interval", "0.2",
                    "--idle-exit", "60",
                    "--trace-dir", str(sink),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=_env(extra_pythonpath=taskdir),
            )
            try:
                banner = proc.stdout.readline()
                assert "cluster-work:" in banner, banner
                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    if dispatcher.stats()["workers"]:
                        break
                    time.sleep(0.02)
                got = ClusterExecutor(url=dispatcher.url, worker_wait=30.0).map(
                    obs_cluster_tasks.square, [2, 3], order=[0, 1], n_workers=1
                )
                assert got == [4, 9]
                # The batch completes when the dispatcher holds the results;
                # the worker may still be closing (and flushing) its second
                # task span — give the sink a moment before the SIGTERM.
                sink_path = sink / f"trace-{proc.pid}.jsonl"
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if (
                        sink_path.exists()
                        and sink_path.read_text().count('"cluster.task"') >= 2
                    ):
                        break
                    time.sleep(0.02)
            finally:
                _terminate(proc)
        finally:
            sys.path.remove(str(taskdir))
            sys.modules.pop("obs_cluster_tasks", None)
            shutdown_dispatchers()

        worker_tasks = {
            s["span_id"]: s["trace_id"]
            for s in _sink_spans(sink, proc.pid)
            if s["name"] == "cluster.task"
        }
        assert len(worker_tasks) == 2
        # The dispatcher (this process) parented its result-frame spans on
        # the worker's task spans — context crossed the wire backwards too.
        linked = [
            s
            for s in recent_spans(500)
            if s["name"] == "cluster.frame"
            and s["parent_id"] in worker_tasks
            and s["trace_id"] == worker_tasks[s["parent_id"]]
        ]
        assert len(linked) == 2
