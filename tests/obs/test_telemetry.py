"""The ``telemetry`` opcode and caps negotiation (exposure layer).

Every framed service answers one opcode with one versioned JSON document;
old builds refuse it with their normal unknown-opcode error, which is the
version negotiation. These tests scrape real sockets — the same path the
``fleet-stats`` CLI verb and the CI telemetry guards use.
"""

from __future__ import annotations

import socket

import pytest

from repro.obs.trace import configure_tracing
from repro.parallel.service import MemoServer, RemoteMemoStore
from repro.parallel.wire import (
    TELEMETRY_SCHEMA_VERSION,
    WIRE_CAPS,
    ProtocolError,
    fetch_telemetry,
    negotiate_caps,
    parse_hostport_url,
)
from repro.serve import ServeClient, ServeServer
from repro.serve.server import SERVE_URL_SCHEME


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestTelemetryOpcode:
    def test_serve_snapshot_shape_and_counters(self, tiny_advisor, probe_X):
        with ServeServer({"default": tiny_advisor}) as srv:
            client = ServeClient(srv.url)
            try:
                client.predict(probe_X)
            finally:
                client.close()
            host, port = parse_hostport_url(srv.url, SERVE_URL_SCHEME)
            doc = fetch_telemetry(host, port)
        assert doc["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert doc["service"] == "ServeServer"
        assert set(WIRE_CAPS) <= set(doc["caps"])
        assert doc["uptime_s"] >= 0.0
        assert doc["metrics"]["counters"]["serve.requests{op=predict}"] >= 1
        # Legacy stats ride along as a view, not a replacement.
        assert doc["stats"]["requests"]["predict"] >= 1
        assert isinstance(doc["spans"], list)

    def test_memo_snapshot_includes_store_stats(self, tmp_path):
        with MemoServer(tmp_path / "served") as srv:
            store = RemoteMemoStore(srv.url)
            try:
                store.put("ns", "k", 1)
                store.get("ns", "k")
            finally:
                store.close()
            host, port = parse_hostport_url(srv.url, "memo://")
            doc = fetch_telemetry(host, port)
            srv.shutdown()
        assert doc["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert doc["service"] == "MemoServer"
        assert "store" in doc["stats"]

    def test_dead_port_raises_oserror(self):
        with pytest.raises(OSError):
            fetch_telemetry("127.0.0.1", _free_port(), timeout=1.0)

    def test_legacy_peer_raises_protocol_error(self, tmp_path):
        class LegacyMemoServer(MemoServer):
            wire_extensions = False

        with LegacyMemoServer(tmp_path / "served") as srv:
            host, port = parse_hostport_url(srv.url, "memo://")
            with pytest.raises(ProtocolError):
                fetch_telemetry(host, port)
            srv.shutdown()


class TestCapsNegotiation:
    def _caps_of(self, url, scheme):
        host, port = parse_hostport_url(url, scheme)
        with socket.create_connection((host, port), timeout=5.0) as sock:
            with sock.makefile("rb") as rfile, sock.makefile("wb") as wfile:
                return negotiate_caps(rfile, wfile)

    def test_modern_peer_advertises_extensions(self, tmp_path):
        with MemoServer(tmp_path / "served") as srv:
            caps = self._caps_of(srv.url, "memo://")
            srv.shutdown()
        assert caps == frozenset(WIRE_CAPS)

    def test_legacy_peer_negotiates_to_empty(self, tmp_path):
        class LegacyMemoServer(MemoServer):
            wire_extensions = False

        with LegacyMemoServer(tmp_path / "served") as srv:
            caps = self._caps_of(srv.url, "memo://")
            srv.shutdown()
        assert caps == frozenset()


class TestFleetTelemetry:
    def test_mixed_fleet_scrape(self, tiny_advisor, probe_X):
        dead_url = f"serve://127.0.0.1:{_free_port()}"
        with ServeServer({"default": tiny_advisor}) as srv:
            client = ServeClient([srv.url, dead_url], timeout=1.0)
            try:
                client.predict(probe_X)
                docs = client.fleet_telemetry(timeout=1.0)
            finally:
                client.close()
        assert docs[srv.url]["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert docs[srv.url]["metrics"]["counters"]["serve.requests{op=predict}"] >= 1
        assert "error" in docs[dead_url]

    def test_scrape_carries_recent_spans(self, tiny_advisor, probe_X):
        configure_tracing(enabled=True)
        with ServeServer({"default": tiny_advisor}) as srv:
            client = ServeClient(srv.url)
            try:
                client.predict(probe_X)
                docs = client.fleet_telemetry()
            finally:
                client.close()
        spans = docs[srv.url]["spans"]
        assert any(s["name"] == "serve.frame" for s in spans)
