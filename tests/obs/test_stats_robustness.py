"""Cross-process stats aggregation under torn and garbled snapshots.

Snapshot files in ``<store>/stats/`` are written by other processes with
atomic rename, but a reader can still race a crashed writer (tmp rename
never happened, half a JSON document on disk) or meet a hostile/corrupt
file. The PR 10 contract: a torn snapshot reads as an empty snapshot — the
aggregation never crashes and never invents counts.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.parallel.service import MemoServer, RemoteMemoStore
from repro.parallel.store import MemoStore, sum_snapshots


class TestSumSnapshots:
    def test_sums_well_formed_snapshots(self):
        snaps = [
            {"pid": 1, "store": {"hits": 2, "misses": 1, "puts": 3, "errors": 0},
             "fits": 5, "caches": {"tree": {"hits": 1, "misses": 0}}},
            {"pid": 2, "store": {"hits": 1, "misses": 0, "puts": 0, "errors": 1},
             "fits": 2, "caches": {"tree": {"hits": 4, "misses": 2}}},
        ]
        agg = sum_snapshots(snaps, objects=7)
        assert agg["store"] == {
            "hits": 3, "misses": 1, "puts": 3, "errors": 1, "objects": 7,
        }
        assert agg["fits"] == 7
        assert agg["processes"] == 2
        assert agg["caches"]["tree"] == {"hits": 5, "misses": 2}

    @pytest.mark.parametrize(
        "garbage",
        [
            {"store": "nope", "fits": "x", "caches": 3},
            {"store": ["not", "a", "dict"], "caches": {"tree": "zap"}},
            {"store": {"hits": "garbage", "misses": None}, "fits": [1]},
            {"store": {"hits": 1, "bogus_field": 9}, "caches": {"t": {"hits": "?"}}},
        ],
    )
    def test_garbled_snapshot_contributes_zeros(self, garbage):
        clean = {"store": {"hits": 2, "misses": 0, "puts": 0, "errors": 0}, "fits": 1}
        agg = sum_snapshots([clean, garbage], objects=0)
        # The garbled snapshot counts as a process but adds at most its
        # parseable numeric fields — never a crash, never invented counts.
        assert agg["processes"] == 2
        assert agg["store"]["hits"] in (2, 3)
        assert agg["store"]["misses"] == 0

    def test_non_dict_snapshots_are_skipped(self):
        agg = sum_snapshots([None, [], "junk", 42], objects=0)
        assert agg["processes"] == 0
        assert agg["store"] == {
            "hits": 0, "misses": 0, "puts": 0, "errors": 0, "objects": 0,
        }


class TestTornSnapshotFiles:
    def test_torn_file_reads_as_empty_snapshot(self, tmp_path):
        store = MemoStore(tmp_path)
        store.put("ns", "k", 1)
        assert store.get("ns", "k") == 1
        # A process died mid-write: half a JSON document, no closing brace.
        (store._stats_dir / "99999.json").write_text('{"pid": 99999, "store": {"hi')
        agg = store.aggregated_stats()
        assert agg["store"]["hits"] >= 1
        assert agg["store"]["puts"] >= 1

    def test_parseable_garbage_file_does_not_crash(self, tmp_path):
        store = MemoStore(tmp_path)
        store.put("ns", "k", 1)
        (store._stats_dir / "66666.json").write_text(
            json.dumps({"pid": 66666, "store": "zap", "fits": "x", "caches": []})
        )
        agg = store.aggregated_stats()
        assert agg["store"]["puts"] >= 1

    def test_remote_aggregation_survives_torn_server_files(self, tmp_path):
        with MemoServer(tmp_path / "served") as srv:
            (srv.store._stats_dir / "31337.json").write_text('{"torn": ')
            remote = RemoteMemoStore(srv.url)
            try:
                remote.put("ns", "k", [1])
                assert remote.get("ns", "k") == [1]
                agg = remote.aggregated_stats()
            finally:
                remote.close()
            srv.shutdown()
        assert agg["store"]["puts"] >= 1


class TestConcurrentFlush:
    def test_racing_flushes_and_reads_stay_coherent(self, tmp_path):
        """Hammer put/get/flush/aggregate from threads: counters must end
        exactly right — the PR 7 lock discipline covers the snapshot path."""
        store = MemoStore(tmp_path)
        n_threads, n_ops = 4, 50
        errors = []

        def worker(tid):
            try:
                for i in range(n_ops):
                    store.put("ns", (tid, i), i)
                    assert store.get("ns", (tid, i)) == i
                    if i % 10 == 0:
                        store.flush_stats()
                        store.aggregated_stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        agg = store.aggregated_stats()
        assert agg["store"]["puts"] == n_threads * n_ops
        assert agg["store"]["hits"] == n_threads * n_ops
