"""Tests for the repro-chem command-line interface."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main
from repro.parallel import clear_caches, configure_store
from repro.parallel.service import RemoteMemoStore


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "-O", "44", "-V", "260", "--nodes", "5", "--tile", "40"]
        )
        assert args.command == "simulate"
        assert args.occupied == 44 and args.virtual == 260

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro-chem {repro.__version__}"

    def test_serve_and_query_args(self):
        args = build_parser().parse_args(["serve", "--port", "0", "--single-flight"])
        assert args.command == "serve"
        assert args.port == 0 and args.single_flight and args.preset == "fast"
        args = build_parser().parse_args(
            ["query", "predict", "--url", "serve://h:7601", "--features", "44,260,5,40"]
        )
        assert args.command == "query"
        assert args.action == "predict" and args.features == ["44,260,5,40"]


class TestCommands:
    def test_simulate_prints_breakdown(self, capsys):
        code = main(["simulate", "-O", "44", "-V", "260", "--nodes", "5", "--tile", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "runtime:" in out and "node-hours" in out

    def test_simulate_infeasible_reports_error(self, capsys):
        code = main(
            ["simulate", "-O", "146", "-V", "1568", "--nodes", "1", "--tile", "80"]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "Infeasible" in err

    def test_generate_data_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "data.csv"
        code = main(
            ["generate-data", "--machine", "aurora", "--rows", "150", "--output", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        assert "150 rows" in capsys.readouterr().out


class TestMemoFlags:
    """The ``--memo-dir`` / ``REPRO_MEMO_DIR`` wiring of the CLI."""

    @pytest.fixture(autouse=True)
    def _isolated_store(self):
        configure_store(None)
        clear_caches()
        yield
        configure_store(None)
        clear_caches()

    def test_memo_dir_accepted_on_compare_models_and_active_learn(self):
        args = build_parser().parse_args(["compare-models", "--memo-dir", "/tmp/m"])
        assert args.memo_dir == "/tmp/m"
        args = build_parser().parse_args(["active-learn", "--memo-dir", "/tmp/m"])
        assert args.memo_dir == "/tmp/m"

    def test_memo_dir_defaults_to_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO_DIR", "/tmp/from-env")
        args = build_parser().parse_args(["compare-models"])
        assert args.memo_dir == "/tmp/from-env"
        monkeypatch.delenv("REPRO_MEMO_DIR")
        args = build_parser().parse_args(["compare-models"])
        assert args.memo_dir is None

    def test_memo_dir_tilde_expands(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        from repro.parallel.store import make_store

        store = make_store(
            build_parser().parse_args(["compare-models", "--memo-dir", "~/m"]).memo_dir
        )
        assert store.root == tmp_path / "m"

    def test_compare_models_memo_dir_makes_second_run_fit_free(
        self, tmp_path, capsys, monkeypatch, small_aurora_dataset
    ):
        import repro.data.datasets as datasets

        monkeypatch.setattr(
            datasets, "build_dataset", lambda *args, **kwargs: small_aurora_dataset
        )
        argv = [
            "compare-models",
            "--models",
            "PR",
            "DT",
            "--max-train",
            "50",
            "--memo-dir",
            str(tmp_path / "memo"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "[memo] dir=" in first

        configure_store(None)
        clear_caches()
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "fits=0" in second  # fully warm: zero model fits
        # Identical results, replayed from the store.
        strip = lambda out: [line for line in out.splitlines() if "[memo]" not in line]
        assert strip(first) == strip(second)


class TestMemoServe:
    """The ``memo-serve`` subcommand: the operational front of the memo service."""

    def test_parser_accepts_memo_serve(self):
        args = build_parser().parse_args(
            ["memo-serve", "--memo-dir", "/tmp/m", "--port", "0"]
        )
        assert args.command == "memo-serve"
        assert args.host == "127.0.0.1" and args.port == 0

    def test_memo_serve_end_to_end(self, tmp_path):
        """Run the real subcommand in a subprocess (--port 0), parse the
        announced URL, and exercise the store through it."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1]) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "memo-serve",
                "--memo-dir",
                str(tmp_path / "served"),
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on memo://" in banner, banner
            url = banner.rsplit("listening on ", 1)[1].strip()
            store = RemoteMemoStore(url)
            assert store.ping()
            store.put("cli", ("k", 1), {"v": [1, 2, 3]})
            assert store.get("cli", ("k", 1)) == {"v": [1, 2, 3]}
            store.close()
            assert (tmp_path / "served" / "objects").is_dir()
        finally:
            proc.terminate()
            proc.wait(timeout=10)


class TestResilienceFlags:
    """ISSUE 9: retry/timeout knobs and the clean-failure contract."""

    def test_parser_accepts_resilience_knobs(self):
        args = build_parser().parse_args(
            ["query", "ping", "--url", "serve://h:1", "--timeout", "2.5",
             "--retries", "4"]
        )
        assert args.timeout == 2.5 and args.retries == 4
        args = build_parser().parse_args(["serve", "--max-pending", "64"])
        assert args.max_pending == 64
        args = build_parser().parse_args(
            ["cluster-status", "--dispatcher", "cluster://h:1", "--retries", "3"]
        )
        assert args.retries == 3

    @staticmethod
    def _dead_port() -> int:
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_query_unreachable_server_exits_cleanly(self, capsys):
        url = f"serve://127.0.0.1:{self._dead_port()}"
        code = main(
            ["query", "stq", "-O", "44", "-V", "260", "--url", url,
             "--timeout", "1.0", "--retries", "0"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("query:")
        assert "Traceback" not in err

    def test_query_malformed_url_exits_cleanly(self, capsys):
        code = main(
            ["query", "ping", "--url", "not-a-url", "--retries", "0"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("query:")
        assert "Traceback" not in err

    def test_cluster_status_retries_then_exits_cleanly(self, capsys):
        url = f"cluster://127.0.0.1:{self._dead_port()}"
        code = main(
            ["cluster-status", "--dispatcher", url, "--timeout", "0.5",
             "--retries", "1"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("cluster-status:")
        assert "Traceback" not in err
