"""Tests for the repro-chem command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "-O", "44", "-V", "260", "--nodes", "5", "--tile", "40"]
        )
        assert args.command == "simulate"
        assert args.occupied == 44 and args.virtual == 260


class TestCommands:
    def test_simulate_prints_breakdown(self, capsys):
        code = main(["simulate", "-O", "44", "-V", "260", "--nodes", "5", "--tile", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "runtime:" in out and "node-hours" in out

    def test_simulate_infeasible_reports_error(self, capsys):
        code = main(
            ["simulate", "-O", "146", "-V", "1568", "--nodes", "1", "--tile", "80"]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "Infeasible" in err

    def test_generate_data_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "data.csv"
        code = main(
            ["generate-data", "--machine", "aurora", "--rows", "150", "--output", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        assert "150 rows" in capsys.readouterr().out
