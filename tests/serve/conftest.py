"""Shared fixtures for the serving-layer tests: one tiny fitted advisor.

The serving contracts (parity, batching, registry round-trips) are
model-size-independent, so the suite runs them against a deliberately small
GB ensemble fitted once per session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.advisor import ResourceAdvisor
from repro.core.estimator import ResourceEstimator
from repro.ml.gradient_boosting import GradientBoostingRegressor


@pytest.fixture(scope="session")
def tiny_advisor(small_aurora_dataset) -> ResourceAdvisor:
    """A fitted advisor over a 12-tree GB — small, but the real serving shape."""
    estimator = ResourceEstimator(
        model=GradientBoostingRegressor(n_estimators=12, max_depth=3, random_state=0)
    )
    return ResourceAdvisor.from_dataset(small_aurora_dataset, estimator=estimator)


@pytest.fixture(scope="session")
def probe_X(small_aurora_dataset) -> np.ndarray:
    """A handful of real feature rows to predict on."""
    return np.ascontiguousarray(small_aurora_dataset.X_test[:16])
