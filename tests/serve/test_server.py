"""Tests for the serve server + client (``repro.serve.server``/``client``).

The ISSUE 5 contract: served predictions — micro-batched, concurrent,
single-flight — are byte-identical to local single-request inference on
the same fitted model; every failure (dead server, truncated/oversized
frame, malformed request) is a clean error, never a hang or a crash.
"""

from __future__ import annotations

import json
import socket
import threading

import numpy as np
import pytest

from repro.parallel.wire import LEN
from repro.serve import (
    ModelRegistry,
    ServeClient,
    ServeError,
    ServeServer,
    ServeUnavailableError,
    parse_serve_url,
)


@pytest.fixture()
def server(tiny_advisor):
    with ServeServer({"default": tiny_advisor, "aurora": tiny_advisor}) as srv:
        yield srv


@pytest.fixture()
def client(server):
    c = ServeClient(server.url, timeout=5.0, retry_delay=0.05)
    yield c
    c.close()


class TestUrlParsing:
    def test_round_trip(self):
        assert parse_serve_url("serve://127.0.0.1:7601") == ("127.0.0.1", 7601)

    @pytest.mark.parametrize(
        "bad", ["serve://", "serve://hostonly", "memo://h:80", "serve://h:0"]
    )
    def test_junk_is_a_loud_config_error(self, bad):
        with pytest.raises(ValueError):
            ServeClient(bad)


class TestPredictParity:
    def test_served_equals_local_byte_for_byte(self, client, tiny_advisor, probe_X):
        served = client.predict(probe_X)
        assert np.array_equal(served, tiny_advisor.estimator.predict(probe_X))

    def test_single_rows_equal_batch_rows(self, client, tiny_advisor, probe_X):
        local = tiny_advisor.estimator.predict(probe_X)
        for i in range(len(probe_X)):
            assert client.predict(probe_X[i])[0] == local[i]

    def test_named_model_routes_to_the_same_fit(self, client, tiny_advisor, probe_X):
        assert np.array_equal(
            client.predict(probe_X, model="aurora"),
            tiny_advisor.estimator.predict(probe_X),
        )

    def test_responses_echo_the_requested_alias(self, client, server):
        # "aurora" and "default" share one hosted model; the response must
        # name what the client asked for, not the first-registered alias.
        for name in ("default", "aurora"):
            out = client._call(b"p", {"model": name, "X": [[44.0, 260.0, 5.0, 40.0]]})
            assert out["model"] == name
            out = client._call(
                b"q",
                {"model": name, "question": "stq", "n_occupied": 99, "n_virtual": 718},
            )
            assert out["model"] == name

    def test_concurrent_clients_are_byte_identical_and_coalesce(
        self, server, tiny_advisor, probe_X
    ):
        local = tiny_advisor.estimator.predict(probe_X)
        errors = []

        def worker(i):
            c = ServeClient(server.url)
            try:
                for j in range(i, len(probe_X), 4):
                    got = c.predict(probe_X[j])[0]
                    if got != local[j]:
                        errors.append((j, got, local[j]))
            finally:
                c.close()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = server.stats()
        batcher = stats["models"]["default"]["batcher"]
        assert batcher["requests"] == len(probe_X)
        assert batcher["rows"] == len(probe_X)

    def test_single_flight_server_is_also_byte_identical(self, tiny_advisor, probe_X):
        with ServeServer(tiny_advisor, micro_batch=False) as srv:
            c = ServeClient(srv.url)
            try:
                assert np.array_equal(
                    c.predict(probe_X), tiny_advisor.estimator.predict(probe_X)
                )
                assert srv.stats()["models"]["default"]["batcher"] is None
            finally:
                c.close()


class TestAsk:
    @pytest.mark.parametrize("question", ["stq", "bq"])
    def test_ask_matches_local_advisor(self, client, tiny_advisor, question):
        served = client.ask(question, 99, 718)
        assert served == tiny_advisor.answer(question, 99, 718).as_dict()

    def test_bad_question_is_a_clean_error(self, client):
        with pytest.raises(ServeError, match="question"):
            client.ask("fastest", 99, 718)

    def test_missing_problem_size_is_a_clean_error(self, client, server):
        raw = ServeClient(server.url)
        try:
            with pytest.raises(ServeError, match="n_occupied"):
                raw._call(b"q", {"model": "default", "question": "stq"})
        finally:
            raw.close()


class TestOperationalEndpoints:
    def test_ping_and_health(self, client, server):
        assert client.ping()
        health = client.health()
        assert health["status"] == "ok"
        assert sorted(health["models"]) == ["aurora", "default"]
        assert health["micro_batch"] is True

    def test_stats_counts_requests_and_registry(self, tiny_advisor, probe_X, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(tiny_advisor, name="m")
        model = registry.load("m")
        with ServeServer(model, registry=registry) as srv:
            c = ServeClient(srv.url)
            try:
                c.predict(probe_X[:2])
                c.ask("stq", 99, 718)
                stats = c.stats()
            finally:
                c.close()
        assert stats["requests"]["predict"] == 1
        assert stats["requests"]["ask"] == 1
        assert stats["registry"]["publishes"] == 1
        assert stats["registry"]["loads"] == 1
        assert stats["models"]["default"]["n_features"] == 4


class TestRequestErrors:
    """Nothing a client sends can crash or wedge the server."""

    def test_unknown_model(self, client):
        with pytest.raises(ServeError, match="unknown model"):
            client.predict([[1.0, 2.0, 3.0, 4.0]], model="nope")

    def test_wrong_feature_count(self, client):
        with pytest.raises(ServeError, match="Expected shape"):
            client.predict([[1.0, 2.0, 3.0]])

    def test_non_finite_features(self, client):
        with pytest.raises(ServeError, match="NaN"):
            client.predict([[1.0, float("nan"), 3.0, 4.0]])

    def test_empty_X(self, client):
        with pytest.raises(ServeError, match="Empty"):
            client.predict(np.empty((0, 4)))

    def test_malformed_json_body_and_unknown_opcode(self, server):
        sock = socket.create_connection((server.host, server.port), timeout=5.0)
        try:
            for payload in (b"p{not json", b"Zwhatever"):
                sock.sendall(LEN.pack(len(payload)) + payload)
                header = sock.recv(4, socket.MSG_WAITALL)
                (length,) = LEN.unpack(header)
                body = sock.recv(length, socket.MSG_WAITALL)
                assert body[:1] == b"!"
        finally:
            sock.close()

    def test_server_keeps_serving_after_errors(self, client, tiny_advisor, probe_X):
        for _ in range(3):
            with pytest.raises(ServeError):
                client.predict([[1.0]])
        assert np.array_equal(
            client.predict(probe_X), tiny_advisor.estimator.predict(probe_X)
        )


class TestFailureContract:
    def test_dead_server_is_a_clean_fast_error(self):
        # Bind-then-close guarantees a dead localhost port.
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()
        client = ServeClient(f"serve://127.0.0.1:{port}", timeout=1.0, retry_delay=0.2)
        with pytest.raises(ServeUnavailableError):
            client.predict([[1.0, 2.0, 3.0, 4.0]])
        # Inside the back-off window calls fail fast, without re-connecting.
        with pytest.raises(ServeUnavailableError, match="backing off"):
            client.predict([[1.0, 2.0, 3.0, 4.0]])

    def test_severed_connection_recovers_with_one_reconnect(
        self, server, client, tiny_advisor, probe_X
    ):
        assert client.ping()
        # Sever every server-side connection: to the client this is exactly
        # a server restart — the next call's first attempt fails and the
        # single reconnect must absorb it.
        server._tcp.close_all_connections()
        assert np.array_equal(
            client.predict(probe_X), tiny_advisor.estimator.predict(probe_X)
        )

    def test_rogue_server_garbage_frame_is_clean(self):
        """A 'server' answering with an oversized frame length: the client
        must error out cleanly, not allocate or hang."""
        rogue = socket.socket()
        rogue.bind(("127.0.0.1", 0))
        rogue.listen(2)
        port = rogue.getsockname()[1]

        def serve_garbage():
            # Keep answering garbage for every reconnect and retry-round
            # probe until the listener closes: each attempt must fail
            # cleanly and instantly, however many the budget allows.
            while True:
                try:
                    conn, _ = rogue.accept()
                except OSError:
                    return
                try:
                    conn.recv(4096)
                    conn.sendall(LEN.pack(2**31 - 1))  # huge frame announcement
                    conn.close()
                except OSError:
                    pass

        thread = threading.Thread(target=serve_garbage, daemon=True)
        thread.start()
        client = ServeClient(f"serve://127.0.0.1:{port}", timeout=2.0, retry_delay=0.1)
        try:
            with pytest.raises(ServeUnavailableError):
                client.predict([[1.0, 2.0, 3.0, 4.0]])
        finally:
            client.close()
            rogue.close()

    def test_ok_response_without_predictions_is_loud(self):
        """A version-skewed 'server' answering predict with OK but no y:
        the client must raise, never return a silently short result."""
        rogue = socket.socket()
        rogue.bind(("127.0.0.1", 0))
        rogue.listen(1)
        port = rogue.getsockname()[1]

        def serve_empty_ok():
            conn, _ = rogue.accept()
            try:
                conn.recv(65536)
                body = b"+" + json.dumps({"model": "default"}).encode()
                conn.sendall(LEN.pack(len(body)) + body)
                conn.recv(65536)  # hold the connection until the assert ran
            finally:
                conn.close()

        thread = threading.Thread(target=serve_empty_ok, daemon=True)
        thread.start()
        client = ServeClient(f"serve://127.0.0.1:{port}", timeout=2.0)
        try:
            with pytest.raises(ServeUnavailableError, match="malformed prediction"):
                client.predict([[1.0, 2.0, 3.0, 4.0]])
        finally:
            client.close()
            rogue.close()

    def test_oversized_request_fails_locally_without_poisoning(
        self, client, tiny_advisor, probe_X, monkeypatch
    ):
        monkeypatch.setattr("repro.serve.client.MAX_FRAME", 64)
        with pytest.raises(ServeError, match="frame cap"):
            client.predict(probe_X)
        monkeypatch.undo()
        # The connection and back-off state were not touched.
        assert np.array_equal(
            client.predict(probe_X[:1]), tiny_advisor.estimator.predict(probe_X[:1])
        )

    def test_non_numeric_predictions_are_loud(self, client, monkeypatch):
        monkeypatch.setattr(
            ServeClient, "_call", lambda self, op, fields=None: {"y": ["a"]}
        )
        with pytest.raises(ServeUnavailableError, match="malformed prediction"):
            client.predict([[1.0, 2.0, 3.0, 4.0]])

    def test_bind_failure_does_not_leak_batcher_threads(self, tiny_advisor):
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        placeholder.listen(1)
        port = placeholder.getsockname()[1]
        try:
            with pytest.raises(OSError):
                ServeServer(tiny_advisor, port=port)
            # The half-built server closed its batcher workers on the way out.
            assert not [
                t for t in threading.enumerate() if t.name == "micro-batcher"
            ]
        finally:
            placeholder.close()

    def test_shutdown_then_queries_fail_cleanly(self, tiny_advisor, probe_X):
        srv = ServeServer(tiny_advisor)
        srv.start()
        client = ServeClient(srv.url, timeout=1.0, retry_delay=0.05)
        try:
            assert client.ping()
            srv.shutdown()
            with pytest.raises(ServeUnavailableError):
                client.predict(probe_X)
        finally:
            client.close()
            srv.shutdown()
