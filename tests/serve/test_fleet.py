"""Tests for fleet routing, failover and admission control (ISSUE 8).

The fleet contract: a multi-URL client consistent-hashes requests across
replicas with a deterministic failover order; a dead replica degrades
capacity, not availability, and every completed prediction stays
byte-identical to the local estimator no matter which replica answered.
Overload — request budget or connection cap — sheds with the distinct,
retryable ``overloaded`` flavour, never a hang.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    ServeClient,
    ServeError,
    ServeOverloadedError,
    ServeServer,
    ServeUnavailableError,
)


@pytest.fixture()
def fleet(tiny_advisor):
    servers = [ServeServer(tiny_advisor).start() for _ in range(2)]
    yield servers
    for srv in servers:
        srv.shutdown()


class TestFleetConstruction:
    def test_single_url_is_the_classic_client(self, fleet):
        client = ServeClient(fleet[0].url)
        assert client.urls == [fleet[0].url]
        assert client.url == fleet[0].url

    def test_accepts_sequence_and_comma_list(self, fleet):
        urls = [srv.url for srv in fleet]
        assert ServeClient(urls).urls == urls
        assert ServeClient(",".join(urls)).urls == urls

    def test_duplicate_urls_collapse(self, fleet):
        client = ServeClient([fleet[0].url, fleet[0].url])
        assert client.urls == [fleet[0].url]

    def test_no_urls_is_a_loud_config_error(self):
        with pytest.raises(ValueError):
            ServeClient([])
        with pytest.raises(ValueError):
            ServeClient(",")


class TestRouting:
    def test_route_is_deterministic_and_complete(self, fleet):
        client = ServeClient([srv.url for srv in fleet])
        key = b"p" + b'{"model": "default"}'
        order = client._route(key)
        assert order == client._route(key)
        assert sorted(order) == [0, 1]

    def test_different_keys_spread_across_replicas(self, fleet):
        client = ServeClient([srv.url for srv in fleet])
        homes = {
            client._route(f"request-{i}".encode())[0] for i in range(64)
        }
        assert homes == {0, 1}

    def test_equal_requests_prefer_the_same_replica(
        self, fleet, tiny_advisor, probe_X
    ):
        client = ServeClient([srv.url for srv in fleet], timeout=5.0)
        try:
            for _ in range(4):
                client.predict(probe_X[0])
            per_replica = client.fleet_stats()["requests"]
            assert sorted(per_replica.values()) == [0, 4]
        finally:
            client.close()


class TestFailover:
    def test_parity_survives_a_dead_replica(self, fleet, tiny_advisor, probe_X):
        local = tiny_advisor.estimator.predict(probe_X)
        client = ServeClient(
            [srv.url for srv in fleet], timeout=5.0, retry_delay=0.05
        )
        try:
            # Warm both replicas, then kill one mid-workload.
            for i in range(len(probe_X) // 2):
                assert client.predict(probe_X[i])[0] == local[i]
            fleet[0].shutdown()
            for i in range(len(probe_X)):
                assert client.predict(probe_X[i])[0] == local[i]
        finally:
            client.close()

    def test_failovers_are_counted(self, fleet, probe_X):
        client = ServeClient(
            [srv.url for srv in fleet], timeout=5.0, retry_delay=0.05
        )
        try:
            fleet[0].shutdown()
            for i in range(len(probe_X)):
                client.predict(probe_X[i])
            stats = client.fleet_stats()
            # Half the keys (on average) homed on the dead replica and had
            # to walk the ring; with 16 probes at least one must have.
            assert stats["failovers"] >= 1
        finally:
            client.close()

    def test_whole_fleet_down_is_unavailable(self, fleet, probe_X):
        client = ServeClient(
            [srv.url for srv in fleet], timeout=1.0, retry_delay=0.05
        )
        try:
            for srv in fleet:
                srv.shutdown()
            with pytest.raises(ServeUnavailableError):
                client.predict(probe_X[0])
        finally:
            client.close()

    def test_request_errors_do_not_fail_over(self, fleet):
        client = ServeClient([srv.url for srv in fleet], timeout=5.0)
        try:
            with pytest.raises(ServeError) as excinfo:
                client.predict(np.zeros((1, 3)), model="no-such-model")
            assert not isinstance(excinfo.value, ServeUnavailableError)
            # The bad request burned exactly one replica round trip: it
            # would be equally wrong everywhere.
            assert sum(client.fleet_stats()["requests"].values()) == 1
        finally:
            client.close()


class TestAdmissionControl:
    def test_inflight_budget_sheds_with_retryable_error(self, tiny_advisor, probe_X):
        gate = threading.Event()
        release = threading.Event()

        class SlowModel:
            n_features_in_ = tiny_advisor.estimator.n_features_in_

            def predict(self, X):
                gate.set()
                release.wait(timeout=10.0)
                return tiny_advisor.estimator.predict(X)

        with ServeServer(
            SlowModel(), micro_batch=False, max_inflight=1
        ) as server:
            blocker = ServeClient(server.url, timeout=10.0)
            prober = ServeClient(server.url, timeout=5.0)
            try:
                t = threading.Thread(
                    target=lambda: blocker.predict(probe_X[0]), daemon=True
                )
                t.start()
                assert gate.wait(timeout=5.0)
                with pytest.raises(ServeOverloadedError):
                    prober.predict(probe_X[1])
                # Health stays answerable from an overloaded server.
                assert prober.health()["status"] == "ok"
                assert server.stats()["admission"]["requests_shed"] >= 1
            finally:
                release.set()
                t.join(timeout=5.0)
                blocker.close()
                prober.close()

    def test_overloaded_fleet_raises_the_retryable_flavour(
        self, tiny_advisor, probe_X
    ):
        gates = []

        def make_slow():
            gate, release = threading.Event(), threading.Event()
            gates.append((gate, release))

            class SlowModel:
                n_features_in_ = tiny_advisor.estimator.n_features_in_

                def predict(self, X):
                    gate.set()
                    release.wait(timeout=10.0)
                    return tiny_advisor.estimator.predict(X)

            return SlowModel()

        servers = [
            ServeServer(make_slow(), micro_batch=False, max_inflight=1).start()
            for _ in range(2)
        ]
        client = ServeClient([srv.url for srv in servers], timeout=5.0)
        blockers = [ServeClient(srv.url, timeout=10.0) for srv in servers]
        threads = []
        try:
            for blocker, row in zip(blockers, probe_X):
                t = threading.Thread(
                    target=lambda b=blocker, r=row: b.predict(r), daemon=True
                )
                t.start()
                threads.append(t)
            for gate, _ in gates:
                assert gate.wait(timeout=5.0)
            # Every replica is saturated: the fleet answer is the
            # retryable overload, reached after trying them all.
            with pytest.raises(ServeOverloadedError):
                client.predict(probe_X[2])
            assert client.fleet_stats()["overloaded"] >= 2
        finally:
            for _, release in gates:
                release.set()
            for t in threads:
                t.join(timeout=5.0)
            for blocker in blockers:
                blocker.close()
            client.close()
            for srv in servers:
                srv.shutdown()

    def test_one_overloaded_replica_just_routes_elsewhere(
        self, tiny_advisor, probe_X
    ):
        gate, release = threading.Event(), threading.Event()

        class SlowModel:
            n_features_in_ = tiny_advisor.estimator.n_features_in_

            def predict(self, X):
                gate.set()
                release.wait(timeout=10.0)
                return tiny_advisor.estimator.predict(X)

        saturated = ServeServer(
            SlowModel(), micro_batch=False, max_inflight=1
        ).start()
        healthy = ServeServer(tiny_advisor).start()
        client = ServeClient([saturated.url, healthy.url], timeout=5.0)
        blocker = ServeClient(saturated.url, timeout=10.0)
        local = tiny_advisor.estimator.predict(probe_X)
        try:
            t = threading.Thread(
                target=lambda: blocker.predict(probe_X[0]), daemon=True
            )
            t.start()
            assert gate.wait(timeout=5.0)
            # Every request completes (possibly failing over), with parity.
            for i in range(len(probe_X)):
                assert client.predict(probe_X[i])[0] == local[i]
        finally:
            release.set()
            t.join(timeout=5.0)
            blocker.close()
            client.close()
            saturated.shutdown()
            healthy.shutdown()


class TestConnectionCapShedFrame:
    def test_shed_connection_reads_overloaded_not_bare_eof(
        self, tiny_advisor, probe_X
    ):
        with ServeServer(tiny_advisor, max_connections=1) as server:
            holder = ServeClient(server.url, timeout=5.0)
            try:
                holder.predict(probe_X[0])  # occupy the only slot
                for _ in range(50):
                    if server.open_connections >= 1:
                        break
                    time.sleep(0.01)
                shed = ServeClient(server.url, timeout=5.0, retry_delay=0.05)
                try:
                    with pytest.raises(ServeOverloadedError) as excinfo:
                        shed.predict(probe_X[1])
                    assert "overloaded" in str(excinfo.value)
                finally:
                    shed.close()
                assert server.connections_shed >= 1
            finally:
                holder.close()
