"""Tests for the host-shared packed arenas (``repro.serve.arena``).

The contract: sharing is an optimisation with a hard parity bar — a
view-backed ensemble predicts byte-identically to the private one — and
every failure mode (foreign segment, stale content, missing support)
degrades to the private arrays, never to wrong answers.
"""

from __future__ import annotations

import gc
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.ml.packed import PackedEnsemble
from repro.ml.tree import DecisionTreeRegressor
from repro.serve.arena import (
    ARENA_FORMAT_VERSION,
    attach_shared_arena,
    share_packed,
    _segment_name,
)

_FIELDS = (
    "feature",
    "threshold",
    "children_left",
    "children_right",
    "value",
    "n_node_samples",
    "offsets",
)


@pytest.fixture(scope="module")
def packed() -> PackedEnsemble:
    rng = np.random.default_rng(0)
    X = rng.normal(size=(150, 5))
    y = rng.normal(size=150)
    trees = []
    for seed in range(4):
        tree = DecisionTreeRegressor(max_depth=3, random_state=seed)
        tree.fit(X, y)
        trees.append(tree)
    return PackedEnsemble.from_trees(trees)


def _drop(*ensembles) -> None:
    """Release view-backed ensembles so close() can unmap the segment."""
    for ens in ensembles:
        for name in _FIELDS:
            setattr(ens, name, None)
        ens._trav = None
    gc.collect()


class TestSharePacked:
    def test_create_then_attach_round_trip(self, packed):
        key = "11" * 20
        created = share_packed(packed, key)
        assert created is not None
        ens_a, handle_a = created
        try:
            assert handle_a.created
            attached = share_packed(packed, key)
            assert attached is not None
            ens_b, handle_b = attached
            try:
                assert not handle_b.created
                assert handle_b.name == handle_a.name
                for name in _FIELDS:
                    ours = getattr(packed, name)
                    for ens in (ens_a, ens_b):
                        view = getattr(ens, name)
                        assert view.tobytes() == ours.tobytes()
                        assert not view.flags.writeable
            finally:
                _drop(ens_b)
                handle_b.close()
        finally:
            _drop(ens_a)
            handle_a.close()

    def test_view_backed_traversal_is_byte_identical(self, packed):
        key = "22" * 20
        ens, handle = share_packed(packed, key)
        try:
            rng = np.random.default_rng(1)
            X = rng.normal(size=(64, packed.n_features_in))
            local = packed.accumulate(X, init=0.25, scale=0.1)
            shared = ens.accumulate(X, init=0.25, scale=0.1)
            assert shared.tobytes() == local.tobytes()
        finally:
            _drop(ens)
            handle.close()

    def test_creator_close_unlinks_the_segment(self, packed):
        key = "33" * 20
        ens, handle = share_packed(packed, key)
        name = handle.name
        _drop(ens)
        handle.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        # And a fresh share simply creates again.
        ens2, handle2 = share_packed(packed, key)
        assert handle2.created
        _drop(ens2)
        handle2.close()

    def test_close_is_idempotent(self, packed):
        ens, handle = share_packed(packed, "44" * 20)
        _drop(ens)
        handle.close()
        handle.close()

    def test_foreign_segment_falls_back_to_private(self, packed):
        key = "55" * 20
        shm = shared_memory.SharedMemory(
            name=_segment_name(key), create=True, size=128
        )
        try:
            shm.buf[:4] = b"junk"
            assert share_packed(packed, key) is None
        finally:
            shm.close()
            shm.unlink()

    def test_key_mismatch_falls_back_to_private(self, packed):
        key_a, key_b = "66" * 20, "77" * 20
        ens, handle = share_packed(packed, key_a)
        try:
            # Same *content*, wrong key: the segment name for key_b is
            # different, so this creates its own segment -- force the
            # collision by creating key_b's segment as a copy of key_a's
            # header (which embeds key_a).
            src = shared_memory.SharedMemory(name=handle.name)
            clone = shared_memory.SharedMemory(
                name=_segment_name(key_b), create=True, size=src.size
            )
            try:
                clone.buf[:] = src.buf[:]
                assert share_packed(packed, key_b) is None
            finally:
                clone.close()
                clone.unlink()
                src.close()
        finally:
            _drop(ens)
            handle.close()

    def test_unusable_key_is_a_clean_fallback(self, packed):
        assert share_packed(packed, "!!!") is None

    def test_segment_name_is_versioned(self):
        assert f"-{ARENA_FORMAT_VERSION}-" in _segment_name("ab" * 20)


class TestAttachSharedArena:
    def test_swaps_the_estimator_arena(self, tiny_advisor, probe_X):
        import pickle

        # A private copy of the served advisor, as a registry load produces.
        advisor = pickle.loads(pickle.dumps(tiny_advisor))
        local = tiny_advisor.estimator.predict(probe_X)
        key = "88" * 20
        handle = attach_shared_arena(advisor, key)
        assert handle is not None
        try:
            gb = advisor.estimator.model_
            assert not gb._packed_ensemble().feature.flags.writeable
            served = advisor.estimator.predict(probe_X)
            assert served.tobytes() == local.tobytes()
        finally:
            _drop(advisor.estimator.model_._packed)
            advisor.estimator.model_._packed = None
            handle.close()

    def test_model_without_packed_surface_returns_none(self):
        class NotAModel:
            pass

        assert attach_shared_arena(NotAModel(), "99" * 20) is None
