"""Tests for the content-addressed model registry (``repro.serve.registry``)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.serve.registry import (
    REGISTRY_FORMAT_VERSION,
    _MAGIC,
    ModelRegistry,
    warm_model,
)


@pytest.fixture()
def registry(tmp_path) -> ModelRegistry:
    return ModelRegistry(tmp_path / "registry")


class TestPublishLoad:
    def test_round_trip_predictions_are_bit_identical(
        self, registry, tiny_advisor, probe_X
    ):
        digest = registry.publish(tiny_advisor, name="aurora-tiny")
        loaded = registry.load("aurora-tiny")
        assert loaded is not None
        assert np.array_equal(
            loaded.estimator.predict(probe_X), tiny_advisor.estimator.predict(probe_X)
        )
        # The advisor surface survives too.
        assert loaded.answer("stq", 99, 718) == tiny_advisor.answer("stq", 99, 718)
        assert registry.resolve("aurora-tiny") == digest

    def test_artifacts_are_content_addressed(self, registry, tiny_advisor):
        first = registry.publish(tiny_advisor, name="a")
        second = registry.publish(tiny_advisor, name="b")
        # Same fitted bytes -> same digest, one artifact, two aliases.
        assert first == second
        assert registry.artifacts() == [first]
        assert set(registry.aliases()) == {"a", "b"}

    def test_load_by_digest(self, registry, tiny_advisor, probe_X):
        digest = registry.publish(tiny_advisor)
        loaded = registry.load(digest)
        assert np.array_equal(
            loaded.estimator.predict(probe_X), tiny_advisor.estimator.predict(probe_X)
        )

    def test_alias_repoints_atomically(self, registry, tiny_advisor):
        d1 = registry.publish(tiny_advisor, name="deployed", meta={"gen": 1})
        d2 = registry.publish({"other": "model-like"}, name="deployed", meta={"gen": 2})
        assert d1 != d2
        assert registry.resolve("deployed") == d2
        # The superseded artifact stays addressable by digest.
        assert sorted(registry.artifacts()) == sorted([d1, d2])
        assert registry.aliases()["deployed"]["meta"] == {"gen": 2}

    def test_unknown_alias_is_a_miss(self, registry):
        assert registry.load("never-published") is None
        assert registry.stats()["misses"] == 1

    def test_bad_alias_name_is_a_loud_error(self, registry, tiny_advisor):
        with pytest.raises(ValueError, match="alias"):
            registry.publish(tiny_advisor, name="../escape")
        with pytest.raises(ValueError, match="alias"):
            registry._alias_path("a/b")


class TestCorruptionTolerance:
    def test_truncated_artifact_reads_as_miss_and_is_discarded(
        self, registry, tiny_advisor
    ):
        digest = registry.publish(tiny_advisor, name="m")
        path = registry.artifact_path(digest)
        path.write_bytes(path.read_bytes()[: len(_MAGIC) + 10])
        assert registry.load("m") is None
        assert registry.stats()["errors"] == 1
        assert not path.exists()

    def test_version_stale_artifact_reads_as_miss(self, registry, tiny_advisor):
        digest = registry.publish(tiny_advisor, name="m")
        path = registry.artifact_path(digest)
        stale = bytes([REGISTRY_FORMAT_VERSION + 1])
        path.write_bytes(b"RPMODEL" + stale + b"\n" + b"x" * 32)
        assert registry.load("m") is None

    def test_content_digest_mismatch_reads_as_miss(self, registry):
        # A well-formed payload parked at the wrong address must not load:
        # the digest is re-verified against the bytes on every read.
        digest = "ab" * 20
        blob = _MAGIC + pickle.dumps({"valid": "pickle"})
        path = registry.artifact_path(digest)
        path.parent.mkdir(parents=True)
        path.write_bytes(blob)
        assert registry.load(digest) is None
        assert registry.stats()["errors"] == 1

    def test_garbled_alias_reads_as_miss(self, registry, tiny_advisor):
        registry.publish(tiny_advisor, name="m")
        (registry.root / "aliases" / "m.json").write_text("{not json")
        assert registry.load("m") is None


class TestWarmLoading:
    def test_load_warms_packed_arena_and_traversal(self, registry, tiny_advisor):
        registry.publish(tiny_advisor, name="m")
        loaded = registry.load("m")
        gb = loaded.estimator.model_
        # The arena and its lazily-built traversal tables exist before the
        # first request, so serving never pays the one-off build.
        assert gb._packed is not None
        assert gb._packed._trav is not None

    def test_warm_model_tolerates_unpackable_models(self):
        class Bare:
            pass

        bare = Bare()
        assert warm_model(bare) is bare


class TestCounterThreadSafety:
    def test_counters_are_exact_under_concurrent_handlers(self, registry, tiny_advisor):
        """Registries are shared across ThreadingTCPServer handler threads;
        the stats lock must make the counters exact, not best-effort."""
        import threading

        digest = registry.publish(tiny_advisor, name="hot")
        n_threads, per_thread = 8, 25
        start = threading.Barrier(n_threads)

        def hammer():
            start.wait()
            for _ in range(per_thread):
                assert registry.load("hot", warm=False) is not None
                assert registry.load("never-published", warm=False) is None

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = registry.stats()
        assert stats["publishes"] == 1
        assert stats["loads"] == n_threads * per_thread
        assert stats["misses"] == n_threads * per_thread
        assert stats["errors"] == 0
        assert registry.resolve("hot") == digest
