"""End-to-end test of the ``repro-chem serve`` / ``repro-chem query`` CLI.

One real server subprocess serves one reduced-size fit; the test pins the
served-vs-local parity bar against an identically-configured local fit and
drives the ``query`` subcommand against the same process.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.cli import _serve_fit_advisor
from repro.serve import ServeClient

# ``hist`` keeps the two subprocess fits cheap (the binned fit path is the
# fast engine) without touching the parity bar: the local comparison fit
# below uses the identical method.
_SERVE_ARGS = dict(
    machine="aurora", preset="fast", seed=0, rows=150, trees=12, depth=3,
    tree_method="hist",
)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1]) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


@pytest.fixture(scope="module")
def serve_proc(tmp_path_factory):
    """A real `repro-chem serve` process on an ephemeral port."""
    registry = tmp_path_factory.mktemp("registry")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--rows", str(_SERVE_ARGS["rows"]),
            "--trees", str(_SERVE_ARGS["trees"]),
            "--depth", str(_SERVE_ARGS["depth"]),
            "--tree-method", _SERVE_ARGS["tree_method"],
            "--port", "0",
            "--registry", str(registry),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
    )
    url = None
    lines = []
    try:
        for line in proc.stdout:
            lines.append(line)
            if "listening on serve://" in line:
                url = line.rsplit("listening on ", 1)[1].strip()
                break
        assert url, "".join(lines)
        assert any("published model=" in line for line in lines), "".join(lines)
        yield url
    finally:
        proc.terminate()
        proc.wait(timeout=10)


@pytest.fixture(scope="module")
def local_advisor():
    """The same fit the server performed, built locally through the same path."""
    return _serve_fit_advisor(argparse.Namespace(**_SERVE_ARGS))


class TestServeProcess:
    def test_served_predictions_match_local_fit_byte_for_byte(
        self, serve_proc, local_advisor
    ):
        X = np.array(
            [[44.0, 260.0, 5.0, 40.0], [99.0, 718.0, 40.0, 80.0], [134.0, 951.0, 80.0, 60.0]]
        )
        client = ServeClient(serve_proc)
        try:
            assert np.array_equal(
                client.predict(X), local_advisor.estimator.predict(X)
            )
            served = client.ask("bq", 99, 718)
            assert served == local_advisor.answer("bq", 99, 718).as_dict()
        finally:
            client.close()

    def test_query_subcommand_round_trip(self, serve_proc, local_advisor):
        out = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "query", "predict",
                "--url", serve_proc, "--features", "44,260,5,40",
            ],
            capture_output=True, text=True, env=_env(), timeout=60,
        )
        assert out.returncode == 0, out.stderr
        expected = local_advisor.estimator.predict(np.array([[44.0, 260.0, 5.0, 40.0]]))[0]
        # The CLI prints the full-precision repr: parity survives the text.
        assert repr(float(expected)) in out.stdout

        out = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "query", "stq",
                "--url", serve_proc, "-O", "99", "-V", "718",
            ],
            capture_output=True, text=True, env=_env(), timeout=60,
        )
        assert out.returncode == 0, out.stderr
        answer = local_advisor.answer("stq", 99, 718)
        assert f"nodes={answer.n_nodes}, tile={answer.tile_size}" in out.stdout

    def test_query_health_and_dead_server_error(self, serve_proc, capsys):
        # In-process main() keeps these paths cheap; the subprocess spawn
        # above already proved the real-process wiring.
        from repro.cli import main

        assert main(["query", "health", "--url", serve_proc]) == 0
        assert '"status": "ok"' in capsys.readouterr().out

        assert main(["query", "stats", "--url", serve_proc]) == 0
        assert '"requests"' in capsys.readouterr().out

        assert main(["query", "ping", "--url", "serve://127.0.0.1:1", "--timeout", "1"]) == 1
        assert "no response" in capsys.readouterr().out

        code = main(["query", "stq", "--url", "serve://127.0.0.1:1", "--timeout", "1"])
        captured = capsys.readouterr()
        assert code == 2 and "needs -O and -V" in captured.err

        code = main(
            ["query", "predict", "--url", serve_proc,
             "--features", "44,260,5,40", "--features", "1,2"]
        )
        captured = capsys.readouterr()
        assert code == 2 and "same number of values" in captured.err

        code = main(
            ["query", "stq", "--url", "serve://127.0.0.1:1", "--timeout", "1",
             "-O", "99", "-V", "718"]
        )
        captured = capsys.readouterr()
        assert code == 1 and "query:" in captured.err  # clean error, no traceback
