"""Shed-vs-dead end-to-end under the deterministic fault proxy (ISSUE 9).

The resilience contract, proven against real servers through
:class:`repro.testing.FaultWire`:

* A lossy wire (drops, garbles, stalls) costs retries and failovers —
  never a wrong byte: every answered prediction is byte-identical to the
  local model.
* A **dead** replica (hard RST) trips its circuit: it leaves the ring,
  the healthy replica serves everything, and the fleet stats say so.
* A **shedding** replica (``max_pending`` admission) is healthy: the
  client retries under its budget and the circuit never opens.
* The whole fleet down resolves to ``ServeUnavailableError`` within the
  client's deadline — bounded, clean, no hang.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.parallel.resilience import CLOSED, OPEN
from repro.serve import (
    ServeClient,
    ServeServer,
    ServeUnavailableError,
)
from repro.testing import FaultSchedule, FaultWire


class TestLossyWireParity:
    def test_predictions_byte_identical_through_lossy_proxies(
        self, tiny_advisor, probe_X
    ):
        local = tiny_advisor.estimator.predict(probe_X)
        servers = [ServeServer(tiny_advisor).start() for _ in range(2)]
        proxies = [
            FaultWire(
                (srv.host, srv.port),
                FaultSchedule(
                    f"storm-{i}", drop=0.06, garble=0.06, delay=0.05, delay_s=0.05
                ),
            ).start()
            for i, srv in enumerate(servers)
        ]
        client = ServeClient(
            [p.url("serve") for p in proxies],
            timeout=5.0,
            retry_delay=0.05,
            retries=10,
            deadline=30.0,
            retry_seed="parity",
        )
        try:
            for _ in range(10):
                got = client.predict(probe_X)
                # Faults cost retries/failovers, never a wrong byte.
                assert np.array_equal(np.asarray(got), local)
            assert sum(p.stats()["injected"] for p in proxies) > 0
        finally:
            client.close()
            for p in proxies:
                p.shutdown()
            for s in servers:
                s.shutdown()

    def test_fleet_stats_surface_circuit_state_per_replica(
        self, tiny_advisor, probe_X
    ):
        server = ServeServer(tiny_advisor).start()
        client = ServeClient(server.url, timeout=5.0, retry_seed="stats")
        try:
            client.predict(probe_X[0])
            stats = client.fleet_stats()
            assert stats["urls"] == [server.url]
            replica = stats["replicas"][server.url]
            # The operator surface: circuit state plus counters and ages.
            assert replica["state"] == CLOSED
            assert replica["requests"] >= 1
            assert replica["successes"] >= 1
            assert replica["failures"] == 0
            assert replica["overloads"] == 0
            assert replica["trips"] == 0
            assert replica["last_failure_age_s"] is None
            assert replica["last_success_age_s"] is not None
            assert replica["open_remaining_s"] == 0.0
        finally:
            client.close()
            server.shutdown()


class TestDeadReplica:
    def test_hard_reset_trips_circuit_and_healthy_replica_serves(
        self, tiny_advisor, probe_X
    ):
        local = tiny_advisor.estimator.predict(probe_X)
        healthy = ServeServer(tiny_advisor).start()
        victim = ServeServer(tiny_advisor).start()
        # Every response frame from the victim is a hard RST: dead, not shed.
        proxy = FaultWire(
            (victim.host, victim.port), FaultSchedule(0, reset=1.0)
        ).start()
        client = ServeClient(
            [healthy.url, proxy.url("serve")],
            timeout=5.0,
            retry_delay=5.0,  # wide cooldown: the circuit stays open below
            retries=4,
            retry_seed="dead-replica",
        )
        try:
            for i in range(len(probe_X)):
                assert client.predict(probe_X[i])[0] == local[i]
            stats = client.fleet_stats()
            dead_url = proxy.url("serve")
            assert stats["replicas"][dead_url]["state"] == OPEN
            assert stats["replicas"][dead_url]["trips"] >= 1
            assert stats["replicas"][dead_url]["last_failure_age_s"] is not None
            assert stats["replicas"][dead_url]["open_remaining_s"] > 0.0
            assert stats["failovers"] >= 1
            # With the circuit open the dead replica has left the ring:
            # repeat traffic is all fast, healthy-replica work.
            failures_before = stats["replicas"][dead_url]["failures"]
            t0 = time.monotonic()
            for i in range(len(probe_X)):
                assert client.predict(probe_X[i])[0] == local[i]
            assert time.monotonic() - t0 < 2.0
            after = client.fleet_stats()["replicas"][dead_url]["failures"]
            assert after == failures_before
        finally:
            client.close()
            proxy.shutdown()
            victim.shutdown()
            healthy.shutdown()

    def test_whole_fleet_down_is_unavailable_within_deadline(
        self, tiny_advisor, probe_X
    ):
        servers = [ServeServer(tiny_advisor).start() for _ in range(2)]
        proxies = [
            FaultWire((srv.host, srv.port), FaultSchedule(0, reset=1.0)).start()
            for srv in servers
        ]
        client = ServeClient(
            [p.url("serve") for p in proxies],
            timeout=1.0,
            retry_delay=0.05,
            retries=2,
            deadline=3.0,
            retry_seed="fleet-down",
        )
        try:
            t0 = time.monotonic()
            with pytest.raises(ServeUnavailableError):
                client.predict(probe_X[0])
            # Bounded by the budget and deadline: clean error, no hang.
            assert time.monotonic() - t0 < 5.0
        finally:
            client.close()
            for p in proxies:
                p.shutdown()
            for s in servers:
                s.shutdown()


class TestPendingDepthShedding:
    def test_shed_replica_is_retryable_and_circuit_stays_closed(
        self, tiny_advisor, probe_X
    ):
        release = threading.Event()
        inner = tiny_advisor.estimator

        class Gated:
            n_features_in_ = inner.n_features_in_

            def predict(self, X):
                release.wait(10.0)
                return inner.predict(X)

        local = inner.predict(probe_X)
        server = ServeServer(Gated(), max_pending=1).start()
        blocker = ServeClient(server.url, timeout=15.0)
        client = ServeClient(
            server.url,
            timeout=5.0,
            retry_delay=0.1,
            retries=20,
            deadline=10.0,
            retry_seed="shed",
        )
        blocked = threading.Thread(
            target=lambda: blocker.predict(probe_X[:1]), daemon=True
        )
        try:
            blocked.start()
            # Wait until the gated request is actually pending server-side.
            for _ in range(100):
                batcher = server.stats()["models"]["default"]["batcher"]
                if batcher["pending"] >= 1:
                    break
                time.sleep(0.02)
            threading.Timer(0.5, release.set).start()
            # The shed request retries under its budget and lands once the
            # gate opens — byte-identical, like any other answer.
            got = client.predict(probe_X[1:2])
            assert got[0] == local[1]
            stats = client.fleet_stats()
            # Shed is not dead: overloads counted, circuit never opened.
            assert stats["overloaded"] >= 1
            assert stats["replicas"][server.url]["overloads"] >= 1
            assert stats["replicas"][server.url]["state"] == CLOSED
            assert stats["replicas"][server.url]["trips"] == 0
            admission = server.stats()["admission"]
            assert admission["max_pending"] == 1
            assert admission["requests_shed"] >= 1
        finally:
            release.set()
            blocked.join(timeout=5.0)
            blocker.close()
            client.close()
            server.shutdown()
