"""Tests for the micro-batcher (``repro.serve.batcher``).

The headline contract: a micro-batched prediction is byte-identical to
predicting that request alone, for any interleaving of concurrent
requests; a malformed request fails alone; a model error fails its batch
and nothing else.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve.batcher import MicroBatcher


class CountingPredict:
    """Wrap a predict fn, counting calls and rows (thread-safe enough: the
    batcher serialises all calls through one worker)."""

    def __init__(self, fn):
        self.fn = fn
        self.calls = 0
        self.rows = 0

    def __call__(self, X):
        self.calls += 1
        self.rows += X.shape[0]
        return self.fn(X)


@pytest.fixture()
def predict(tiny_advisor):
    return CountingPredict(tiny_advisor.estimator.predict)


class TestParity:
    def test_single_request_matches_direct_call(self, predict, probe_X, tiny_advisor):
        with MicroBatcher(predict, n_features=4) as batcher:
            got = batcher.submit(probe_X)
        assert np.array_equal(got, tiny_advisor.estimator.predict(probe_X))

    def test_concurrent_single_rows_are_byte_identical(
        self, predict, probe_X, tiny_advisor
    ):
        local = tiny_advisor.estimator.predict(probe_X)
        results = {}
        with MicroBatcher(predict, n_features=4) as batcher:
            def worker(i):
                out = []
                for j in range(i, len(probe_X), 4):
                    out.append((j, batcher.submit(probe_X[j:j + 1])[0]))
                results[i] = out

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for out in results.values():
            for j, y in out:
                assert y == local[j]

    def test_coalesced_batch_is_byte_identical(self, tiny_advisor, probe_X):
        """Force a known coalition: requests queued while the worker is busy
        ride one batch, and each answer still equals the lone-request one."""
        local = tiny_advisor.estimator.predict(probe_X)
        release = threading.Event()
        first_entered = threading.Event()

        def gated_predict(X):
            first_entered.set()
            release.wait(timeout=10.0)
            return tiny_advisor.estimator.predict(X)

        batcher = MicroBatcher(gated_predict, n_features=4)
        try:
            results = [None] * 6

            def submit(i):
                results[i] = batcher.submit(probe_X[i:i + 1])[0]

            threads = [threading.Thread(target=submit, args=(0,))]
            threads[0].start()
            assert first_entered.wait(timeout=10.0)
            # These five arrive while request 0 is mid-traversal: they must
            # coalesce into the next batch.
            for i in range(1, 6):
                threads.append(threading.Thread(target=submit, args=(i,)))
                threads[-1].start()
            while batcher._queue.qsize() < 5:  # noqa: SLF001 - deterministic gate
                pass
            release.set()
            for t in threads:
                t.join(timeout=10.0)
            stats = batcher.stats()
            assert stats["requests"] == 6
            assert stats["batches"] == 2
            assert stats["batched_requests_max"] == 5
            for i in range(6):
                assert results[i] == local[i]
        finally:
            release.set()
            batcher.close()


class TestValidation:
    def test_bad_requests_fail_alone_before_the_queue(self, predict):
        with MicroBatcher(predict, n_features=4) as batcher:
            with pytest.raises(ValueError, match="Expected shape"):
                batcher.submit(np.zeros((2, 3)))
            with pytest.raises(ValueError, match="Empty input"):
                batcher.submit(np.zeros((0, 4)))
            with pytest.raises(ValueError, match="NaN"):
                batcher.submit(np.array([[1.0, 2.0, np.nan, 4.0]]))
            with pytest.raises(ValueError):
                batcher.submit(np.zeros(4))  # 1-D
        assert predict.calls == 0  # nothing malformed ever reached the model

    def test_model_error_hits_every_rider_and_worker_survives(self, tiny_advisor, probe_X):
        fail = threading.Event()

        def flaky_predict(X):
            if fail.is_set():
                raise RuntimeError("model exploded")
            return tiny_advisor.estimator.predict(X)

        with MicroBatcher(flaky_predict, n_features=4) as batcher:
            fail.set()
            with pytest.raises(RuntimeError, match="model exploded"):
                batcher.submit(probe_X[:2])
            fail.clear()
            # The worker is still alive and serving.
            got = batcher.submit(probe_X[:2])
            assert np.array_equal(got, tiny_advisor.estimator.predict(probe_X[:2]))
            assert batcher.stats()["errors"] == 1

    def test_each_rider_gets_its_own_chained_error_copy(self, tiny_advisor, probe_X):
        """N riders of a failed batch must each re-raise a distinct exception
        instance (concurrent raises of one shared instance clobber each
        other's __traceback__), chained to the one model error."""
        release = threading.Event()
        first_entered = threading.Event()

        def gated_boom(X):
            first_entered.set()
            release.wait(timeout=10.0)
            raise RuntimeError("model exploded")

        batcher = MicroBatcher(gated_boom, n_features=4)
        try:
            caught = [None] * 4

            def submit(i):
                try:
                    batcher.submit(probe_X[i:i + 1])
                except RuntimeError as exc:
                    caught[i] = exc

            threads = [threading.Thread(target=submit, args=(0,))]
            threads[0].start()
            assert first_entered.wait(timeout=10.0)
            for i in range(1, 4):
                threads.append(threading.Thread(target=submit, args=(i,)))
                threads[-1].start()
            while batcher._queue.qsize() < 3:  # noqa: SLF001 - deterministic gate
                pass
            release.set()
            for t in threads:
                t.join(timeout=10.0)
        finally:
            release.set()
            batcher.close()
        assert all(isinstance(exc, RuntimeError) for exc in caught)
        assert "model exploded" in str(caught[0])
        # Distinct instances per rider; riders of the same batch (1-3 all
        # coalesced behind the gated request 0) chain to one shared
        # original, which carries the worker-side traceback.
        assert len({id(exc) for exc in caught}) == 4
        assert all(exc.__cause__ is not None for exc in caught)
        assert caught[1].__cause__ is caught[2].__cause__ is caught[3].__cause__

    def test_errored_batches_count_into_volume_stats(self, probe_X):
        def boom(X):
            raise RuntimeError("model exploded")

        with MicroBatcher(boom, n_features=4) as batcher:
            for _ in range(2):
                with pytest.raises(RuntimeError, match="model exploded"):
                    batcher.submit(probe_X[:3])
            stats = batcher.stats()
        assert stats["errors"] == 2
        # The failed traffic still ran: stats() must report it.
        assert stats["requests"] == 2
        assert stats["rows"] == 6
        assert stats["batches"] == 2

    def test_submit_after_close_raises(self, predict, probe_X):
        batcher = MicroBatcher(predict, n_features=4)
        batcher.close()
        batcher.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(probe_X[:1])

    def test_oversized_single_request_still_runs_alone(self, predict, probe_X, tiny_advisor):
        with MicroBatcher(predict, n_features=4, max_batch_rows=4) as batcher:
            got = batcher.submit(probe_X)  # 16 rows > cap of 4
        assert np.array_equal(got, tiny_advisor.estimator.predict(probe_X))

    def test_stats_are_coherent(self, predict, probe_X):
        with MicroBatcher(predict, n_features=4) as batcher:
            batcher.submit(probe_X[:3])
            batcher.submit(probe_X[:1])
        stats = batcher.stats()
        assert stats["requests"] == 2
        assert stats["rows"] == 4
        assert stats["batches"] >= 1
        assert stats["requests_per_batch_mean"] == pytest.approx(
            stats["requests"] / stats["batches"]
        )
