"""Tests for registry-routed multi-model hosting (ISSUE 8 tentpole).

Two contracts under test: interleaved requests against different aliases
never cross-contaminate micro-batches (every answer is byte-identical to
the alias's own local estimator), and LRU eviction under ``max_models``
is invisible to correctness — an evicted alias reloads from the registry
(digest re-verified by the load path) and keeps answering with parity.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.serve import ModelRegistry, ServeClient, ServeError, ServeServer


class ScaledEstimator:
    """A distinct second model: same inputs, recognisably different outputs.

    Module-level so it pickles through the registry.
    """

    def __init__(self, base, factor: float) -> None:
        self._base = base
        self._factor = factor
        self.n_features_in_ = base.n_features_in_

    def predict(self, X):
        return self._base.predict(X) * self._factor


@pytest.fixture()
def registry(tmp_path, tiny_advisor):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(tiny_advisor, name="alpha")
    registry.publish(
        ScaledEstimator(tiny_advisor.estimator, -3.5), name="beta"
    )
    registry.publish(
        ScaledEstimator(tiny_advisor.estimator, 7.25), name="gamma"
    )
    return registry


@pytest.fixture()
def locals_by_alias(registry, probe_X):
    return {
        alias: registry.load(alias).predict(probe_X)
        if alias != "alpha"
        else registry.load(alias).estimator.predict(probe_X)
        for alias in ("alpha", "beta", "gamma")
    }


class TestRegistryRouting:
    def test_alias_routes_lazily_through_the_registry(
        self, registry, probe_X, locals_by_alias
    ):
        with ServeServer({}, registry=registry) as server:
            client = ServeClient(server.url, timeout=5.0)
            try:
                assert server.model_names() == []
                served = client.predict(probe_X, model="beta")
                assert served.tobytes() == locals_by_alias["beta"].tobytes()
                assert server.model_names() == ["beta"]
                routing = server.stats()["routing"]
                assert routing["models_loaded"] == 1
                assert routing["resident"] == ["beta"]
            finally:
                client.close()

    def test_unknown_alias_is_a_request_error(self, registry, probe_X):
        with ServeServer({}, registry=registry) as server:
            client = ServeClient(server.url, timeout=5.0)
            try:
                with pytest.raises(ServeError, match="unknown model"):
                    client.predict(probe_X, model="never-published")
            finally:
                client.close()

    def test_interleaved_aliases_never_cross_contaminate(
        self, registry, probe_X, locals_by_alias
    ):
        aliases = ("alpha", "beta", "gamma")
        with ServeServer({}, registry=registry) as server:
            errors: list[str] = []
            barrier = threading.Barrier(len(aliases) * 2)

            def hammer(alias: str) -> None:
                client = ServeClient(server.url, timeout=10.0)
                local = locals_by_alias[alias]
                try:
                    barrier.wait(timeout=10.0)
                    for i in range(12):
                        row = probe_X[i % len(probe_X)]
                        got = client.predict(row, model=alias)
                        want = local[i % len(probe_X)]
                        if got[0] != want:
                            errors.append(
                                f"{alias}[{i}]: served {got[0]!r} != local {want!r}"
                            )
                            return
                finally:
                    client.close()

            threads = [
                threading.Thread(target=hammer, args=(alias,), daemon=True)
                for alias in aliases
                for _ in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert errors == []
            assert sorted(server.model_names()) == sorted(aliases)


class TestLRUEviction:
    def test_eviction_and_reload_keep_parity(
        self, registry, probe_X, locals_by_alias
    ):
        with ServeServer({}, registry=registry, max_models=2) as server:
            client = ServeClient(server.url, timeout=5.0)
            try:
                for alias in ("alpha", "beta"):
                    client.predict(probe_X, model=alias)
                assert server.stats()["routing"]["resident"] == ["alpha", "beta"]

                # A third alias evicts the least recently used (alpha).
                client.predict(probe_X, model="gamma")
                routing = server.stats()["routing"]
                assert routing["models_evicted"] == 1
                assert routing["resident"] == ["beta", "gamma"]

                # The evicted alias reloads transparently — the registry
                # re-verifies the artifact digest on load — and answers
                # byte-identically; now *beta* is the LRU entry.
                served = client.predict(probe_X, model="alpha")
                assert served.tobytes() == locals_by_alias["alpha"].tobytes()
                assert server.stats()["routing"]["resident"] == ["gamma", "alpha"]
                assert server.stats()["routing"]["models_loaded"] == 4
            finally:
                client.close()

    def test_use_refreshes_recency(self, registry, probe_X):
        with ServeServer({}, registry=registry, max_models=2) as server:
            client = ServeClient(server.url, timeout=5.0)
            try:
                client.predict(probe_X, model="alpha")
                client.predict(probe_X, model="beta")
                client.predict(probe_X, model="alpha")  # refresh alpha
                client.predict(probe_X, model="gamma")  # evicts beta, not alpha
                assert server.stats()["routing"]["resident"] == ["alpha", "gamma"]
            finally:
                client.close()

    def test_static_models_are_never_evicted(
        self, registry, tiny_advisor, probe_X
    ):
        with ServeServer(
            {"pinned": tiny_advisor}, registry=registry, max_models=1
        ) as server:
            client = ServeClient(server.url, timeout=5.0)
            try:
                client.predict(probe_X, model="beta")
                client.predict(probe_X, model="gamma")  # evicts beta
                stats = server.stats()
                assert stats["routing"]["static"] == ["pinned"]
                assert "pinned" in stats["models"]
                local = tiny_advisor.estimator.predict(probe_X)
                served = client.predict(probe_X, model="pinned")
                assert served.tobytes() == local.tobytes()
            finally:
                client.close()

    def test_eviction_is_digest_stable(self, registry, probe_X):
        digests = {
            alias: registry.resolve(alias) for alias in ("alpha", "beta")
        }
        with ServeServer({}, registry=registry, max_models=1) as server:
            client = ServeClient(server.url, timeout=5.0)
            try:
                client.predict(probe_X, model="alpha")
                first = server.stats()["models"]["alpha"]["digest"]
                client.predict(probe_X, model="beta")  # evicts alpha
                client.predict(probe_X, model="alpha")  # reloads alpha
                second = server.stats()["models"]["alpha"]["digest"]
                assert first == second == digests["alpha"]
            finally:
                client.close()
