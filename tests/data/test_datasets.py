"""Tests for the paper-shaped CCSD datasets."""

import numpy as np
import pytest

from repro.data.datasets import (
    FEATURE_COLUMNS,
    TARGET_COLUMN,
    build_dataset,
    load_or_build_dataset,
)
from repro.simulator.dataset_gen import PAPER_DATASET_SIZES


class TestSmallDataset:
    def test_split_is_partition(self, small_aurora_dataset):
        ds = small_aurora_dataset
        combined = np.sort(np.concatenate([ds.train_indices, ds.test_indices]))
        np.testing.assert_array_equal(combined, np.arange(ds.n_rows))

    def test_split_fraction_default(self, small_aurora_dataset):
        ds = small_aurora_dataset
        assert ds.n_test == pytest.approx(0.25 * ds.n_rows, abs=1)

    def test_feature_matrix_shape_and_columns(self, small_aurora_dataset):
        ds = small_aurora_dataset
        assert ds.X.shape == (ds.n_rows, len(FEATURE_COLUMNS))
        assert ds.y.shape == (ds.n_rows,)
        assert np.all(ds.y > 0)

    def test_train_test_views_consistent(self, small_aurora_dataset):
        ds = small_aurora_dataset
        np.testing.assert_array_equal(ds.X_train, ds.X[ds.train_indices])
        np.testing.assert_array_equal(ds.y_test, ds.y[ds.test_indices])
        assert ds.train_table.n_rows == ds.n_train

    def test_problem_sizes_listing(self, small_aurora_dataset):
        problems = small_aurora_dataset.problem_sizes()
        assert (44, 260) in problems and (99, 718) in problems

    def test_summary_keys(self, small_aurora_dataset):
        summary = small_aurora_dataset.summary()
        assert summary["machine"] == "aurora"
        assert summary["total"] == small_aurora_dataset.n_rows
        assert summary["runtime_min_s"] > 0

    def test_target_column_name(self, small_aurora_dataset):
        assert TARGET_COLUMN in small_aurora_dataset.table


class TestPaperSizedDataset:
    def test_frontier_paper_sizes(self):
        ds = build_dataset("frontier", seed=0)
        total, train, test = PAPER_DATASET_SIZES["frontier"]
        assert ds.n_rows == total and ds.n_train == train and ds.n_test == test

    def test_reproducible_given_seed(self, small_sweep_config):
        a = build_dataset("aurora", seed=7, config=small_sweep_config)
        b = build_dataset("aurora", seed=7, config=small_sweep_config)
        np.testing.assert_allclose(a.y, b.y)
        np.testing.assert_array_equal(a.train_indices, b.train_indices)


class TestCaching:
    def test_load_or_build_roundtrip(self, tmp_path):
        fresh = load_or_build_dataset("aurora", seed=1, cache_dir=tmp_path)
        cached = load_or_build_dataset("aurora", seed=1, cache_dir=tmp_path)
        assert (tmp_path / "ccsd_dataset_aurora_seed1.csv").exists()
        np.testing.assert_allclose(fresh.y, cached.y)
        np.testing.assert_array_equal(fresh.train_indices, cached.train_indices)
