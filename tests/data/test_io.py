"""Tests for CSV round-tripping."""

import numpy as np
import pytest

from repro.data.io import read_csv, write_csv
from repro.data.table import Table


class TestCSVRoundtrip:
    def test_roundtrip_preserves_values_and_dtypes(self, tmp_path):
        table = Table(
            {
                "ints": np.array([1, 2, 3]),
                "floats": np.array([1.5, 2.25, 1e-7]),
                "strings": np.array(["aurora", "frontier", "aurora"]),
            }
        )
        path = write_csv(table, tmp_path / "out.csv")
        loaded = read_csv(path)
        np.testing.assert_array_equal(loaded["ints"], table["ints"])
        assert loaded["ints"].dtype.kind == "i"
        np.testing.assert_allclose(loaded["floats"], table["floats"])
        assert list(loaded["strings"]) == ["aurora", "frontier", "aurora"]

    def test_float_precision_preserved_exactly(self, tmp_path):
        values = np.array([0.1, 1.0 / 3.0, 17.41])
        table = Table({"x": values})
        loaded = read_csv(write_csv(table, tmp_path / "precision.csv"))
        np.testing.assert_array_equal(loaded["x"], values)

    def test_creates_parent_directories(self, tmp_path):
        table = Table({"x": [1.0]})
        path = write_csv(table, tmp_path / "nested" / "dir" / "data.csv")
        assert path.exists()

    def test_read_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("only_header\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_column_order_preserved(self, tmp_path):
        table = Table({"z": [1], "a": [2], "m": [3]})
        loaded = read_csv(write_csv(table, tmp_path / "order.csv"))
        assert loaded.column_names == ["z", "a", "m"]
