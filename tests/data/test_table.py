"""Tests for the lightweight column-store table."""

import numpy as np
import pytest

from repro.data.table import Table


@pytest.fixture
def table() -> Table:
    return Table(
        {
            "a": np.array([3, 1, 2, 4]),
            "b": np.array([30.0, 10.0, 20.0, 40.0]),
            "name": np.array(["x", "y", "x", "z"]),
        }
    )


class TestConstruction:
    def test_shape_and_names(self, table):
        assert table.shape == (4, 3)
        assert table.column_names == ["a", "b", "name"]
        assert len(table) == 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Table({"a": [1, 2], "b": [1, 2, 3]})

    def test_2d_column_rejected(self):
        with pytest.raises(ValueError):
            Table({"a": np.ones((2, 2))})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Table({})

    def test_from_records_roundtrip(self):
        records = [{"a": 1, "b": 2.0}, {"a": 3, "b": 4.0}]
        table = Table.from_records(records)
        assert table.to_records() == records

    def test_from_records_requires_same_keys(self):
        with pytest.raises(ValueError):
            Table.from_records([{"a": 1}, {"b": 2}])


class TestAccess:
    def test_getitem(self, table):
        np.testing.assert_array_equal(table["a"], [3, 1, 2, 4])
        with pytest.raises(KeyError):
            table["missing"]

    def test_contains(self, table):
        assert "a" in table and "zzz" not in table

    def test_select_and_drop(self, table):
        assert table.select(["b", "a"]).column_names == ["b", "a"]
        assert table.drop(["name"]).column_names == ["a", "b"]

    def test_with_column_adds_and_replaces(self, table):
        t2 = table.with_column("c", np.arange(4))
        assert "c" in t2 and "c" not in table
        t3 = table.with_column("a", np.zeros(4))
        np.testing.assert_array_equal(t3["a"], 0)

    def test_with_column_length_check(self, table):
        with pytest.raises(ValueError):
            table.with_column("c", np.arange(3))


class TestTransforms:
    def test_filter_by_mask_and_indices(self, table):
        masked = table.filter(table["a"] > 2)
        assert masked.n_rows == 2
        indexed = table.filter(np.array([0, 3]))
        np.testing.assert_array_equal(indexed["a"], [3, 4])

    def test_filter_by_predicate(self, table):
        out = table.filter_by(lambda row: row["name"] == "x")
        assert out.n_rows == 2

    def test_sort_by(self, table):
        assert list(table.sort_by("a")["a"]) == [1, 2, 3, 4]
        assert list(table.sort_by("a", descending=True)["a"]) == [4, 3, 2, 1]

    def test_head(self, table):
        assert table.head(2).n_rows == 2
        assert table.head(100).n_rows == 4

    def test_unique(self, table):
        assert set(table.unique("name")) == {"x", "y", "z"}

    def test_groupby_agg(self, table):
        grouped = table.groupby_agg("name", "b", np.mean)
        records = {r["name"]: r["b"] for r in grouped.to_records()}
        assert records["x"] == pytest.approx(25.0)
        assert records["y"] == pytest.approx(10.0)

    def test_concat(self, table):
        doubled = table.concat(table)
        assert doubled.n_rows == 8
        with pytest.raises(ValueError):
            table.concat(table.drop(["name"]))


class TestNumerics:
    def test_to_numpy_selected_columns(self, table):
        arr = table.to_numpy(["a", "b"])
        assert arr.shape == (4, 2)
        assert arr.dtype == np.float64

    def test_describe_skips_non_numeric(self, table):
        stats = table.describe()
        assert "name" not in stats
        assert stats["a"]["min"] == 1 and stats["a"]["max"] == 4

    def test_equality(self, table):
        same = Table({name: table[name].copy() for name in table.column_names})
        assert table == same
        assert table != same.drop(["name"])
