"""Tests for the ResourceEstimator runtime model."""

import numpy as np
import pytest

from repro.core.estimator import FAST_GB_PARAMS, PAPER_GB_PARAMS, ResourceEstimator
from repro.ml.linear import PolynomialRegression


@pytest.fixture(scope="module")
def fitted_estimator(fast_estimator_aurora):
    # The shared session-scoped fit; these tests only read it.
    return fast_estimator_aurora


class TestFitting:
    def test_presets_define_paper_hyperparameters(self):
        assert PAPER_GB_PARAMS == {"n_estimators": 750, "max_depth": 10}
        assert FAST_GB_PARAMS["n_estimators"] < PAPER_GB_PARAMS["n_estimators"]

    def test_fit_from_dataset_object(self, small_aurora_dataset):
        est = ResourceEstimator(preset="fast").fit(small_aurora_dataset)
        report = est.evaluate_on(small_aurora_dataset)
        assert report["r2"] > 0.9

    def test_fit_quality_on_test_split(self, fitted_estimator, small_aurora_dataset):
        report = fitted_estimator.evaluate(
            small_aurora_dataset.X_test, small_aurora_dataset.y_test
        )
        assert report["r2"] > 0.9
        assert report["mape"] < 0.2

    def test_missing_target_rejected(self, small_aurora_dataset):
        with pytest.raises(ValueError):
            ResourceEstimator(preset="fast").fit(small_aurora_dataset.X_train)

    def test_unknown_preset_rejected(self, small_aurora_dataset):
        with pytest.raises(ValueError):
            ResourceEstimator(preset="huge").fit(
                small_aurora_dataset.X_train, small_aurora_dataset.y_train
            )

    def test_custom_model_is_cloned_and_used(self, small_aurora_dataset):
        base = PolynomialRegression(degree=3)
        est = ResourceEstimator(model=base).fit(
            small_aurora_dataset.X_train, small_aurora_dataset.y_train
        )
        assert isinstance(est.model_, PolynomialRegression)
        assert est.model_ is not base

    def test_log_target_roundtrip(self, small_aurora_dataset):
        est = ResourceEstimator(preset="fast", log_target=True).fit(
            small_aurora_dataset.X_train, small_aurora_dataset.y_train
        )
        preds = est.predict(small_aurora_dataset.X_test)
        assert np.all(preds > 0)
        assert est.evaluate(small_aurora_dataset.X_test, small_aurora_dataset.y_test)["r2"] > 0.85


class TestDerivedFeatures:
    def test_feature_names_extended(self):
        est = ResourceEstimator(derived_features=True)
        assert "o2v4_per_node" in est.feature_names_
        assert len(est.feature_names_) == 8

    def test_derived_features_still_fit(self, small_aurora_dataset):
        est = ResourceEstimator(preset="fast", derived_features=True).fit(
            small_aurora_dataset.X_train, small_aurora_dataset.y_train
        )
        assert est.evaluate_on(small_aurora_dataset)["r2"] > 0.85


class TestQueries:
    def test_predict_runtime_vectorised_over_configs(self, fitted_estimator):
        nodes = np.array([5, 20, 80])
        tiles = np.array([40, 80, 120])
        runtimes = fitted_estimator.predict_runtime(99, 718, nodes, tiles)
        assert runtimes.shape == (3,)
        assert np.all(runtimes > 0)

    def test_predict_runtime_broadcasts_scalar_tile(self, fitted_estimator):
        runtimes = fitted_estimator.predict_runtime(99, 718, np.array([5, 20, 80]), 80)
        assert runtimes.shape == (3,)

    def test_predict_node_hours_consistent(self, fitted_estimator):
        nodes = np.array([10, 40])
        runtimes = fitted_estimator.predict_runtime(99, 718, nodes, 80)
        node_hours = fitted_estimator.predict_node_hours(99, 718, nodes, 80)
        np.testing.assert_allclose(node_hours, runtimes * nodes / 3600.0)

    def test_predict_requires_fit(self):
        with pytest.raises(RuntimeError):
            ResourceEstimator().predict(np.ones((2, 4)))
