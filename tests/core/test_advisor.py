"""Tests for the user-facing resource advisor."""

import pytest

from repro.core.advisor import ResourceAdvisor
from repro.core.estimator import ResourceEstimator
from repro.core.questions import ConfigurationSpace


@pytest.fixture(scope="module")
def advisor(fast_advisor_aurora) -> ResourceAdvisor:
    # The shared session-scoped advisor; these tests only read it.
    return fast_advisor_aurora


class TestAdvisor:
    def test_from_dataset_trains_estimator(self, advisor):
        assert advisor.machine == "aurora"
        assert advisor.estimator._is_fitted()

    def test_shortest_time_answer_structure(self, advisor):
        answer = advisor.shortest_time(99, 718)
        assert answer.question == "shortest_time"
        assert answer.n_nodes > 0 and answer.tile_size > 0
        assert answer.predicted_runtime_s > 0

    def test_budget_recommends_fewer_nodes_than_stq(self, advisor):
        stq = advisor.shortest_time(99, 718)
        bq = advisor.budget(99, 718)
        assert bq.n_nodes <= stq.n_nodes
        assert bq.predicted_node_hours <= stq.predicted_node_hours + 1e-9

    def test_answer_dispatch_aliases(self, advisor):
        assert advisor.answer("stq", 99, 718).question == "shortest_time"
        assert advisor.answer("budget", 99, 718).question == "budget"
        with pytest.raises(ValueError):
            advisor.answer("fastest", 99, 718)

    def test_explicit_space_overrides_machine_space(self, advisor):
        space = ConfigurationSpace(node_grid=[10, 20], tile_grid=[80])
        answer = advisor.shortest_time(99, 718, space=space)
        assert answer.n_nodes in (10, 20)
        assert answer.tile_size == 80

    def test_ranked_configurations_sorted(self, advisor):
        table = advisor.ranked_configurations(99, 718, objective="runtime", top_k=8)
        runtimes = table["predicted_runtime_s"]
        assert table.n_rows == 8
        assert all(a <= b for a, b in zip(runtimes, runtimes[1:]))

    def test_ranked_configurations_budget_objective(self, advisor):
        table = advisor.ranked_configurations(99, 718, objective="node_hours", top_k=5)
        nh = table["predicted_node_hours"]
        assert all(a <= b for a, b in zip(nh, nh[1:]))

    def test_answers_for_problem_batch(self, advisor):
        answers = advisor.answers_for_problems([(44, 260), (99, 718)], question="stq")
        assert len(answers) == 2
        assert {a.n_occupied for a in answers} == {44, 99}

    def test_advisor_without_machine_uses_default_space(self, fast_estimator_aurora):
        space = ConfigurationSpace(node_grid=[5, 20], tile_grid=[40, 80])
        advisor = ResourceAdvisor(
            estimator=fast_estimator_aurora, machine=None, default_space=space
        )
        answer = advisor.shortest_time(99, 718)
        assert answer.n_nodes in (5, 20)

    def test_advisor_without_machine_or_space_raises(self, fast_estimator_aurora):
        advisor = ResourceAdvisor(
            estimator=fast_estimator_aurora, machine=None, default_space=None
        )
        with pytest.raises(ValueError):
            advisor.shortest_time(99, 718)
