"""Tests for the model-comparison (Figures 1-2) driver."""

import pytest

from repro.core.hyperopt import SEARCH_STRATEGIES, run_model_comparison


class TestModelComparison:
    @pytest.fixture(scope="class")
    def results(self, small_aurora_dataset):
        return run_model_comparison(
            small_aurora_dataset,
            models=["PR", "DT", "GB"],
            strategies=("GridSearchCV", "RandomizedSearchCV"),
            scale="fast",
            cv=3,
            seed=0,
            max_train_samples=80,
        )

    def test_one_result_per_model_and_strategy(self, results):
        assert len(results) == 3 * 2
        combos = {(r.model, r.search) for r in results}
        assert ("GB", "GridSearchCV") in combos

    def test_metrics_are_sensible(self, results):
        for r in results:
            assert r.r2 <= 1.0
            assert r.mae >= 0.0
            assert r.mape >= 0.0
            assert r.search_time_s > 0.0
            assert r.n_candidates >= 1

    def test_tree_ensembles_beat_plain_tree_or_match(self, results):
        best = {r.model: max(x.r2 for x in results if x.model == r.model) for r in results}
        assert best["GB"] >= best["DT"] - 0.05

    def test_result_as_dict_keys(self, results):
        d = results[0].as_dict()
        assert {"machine", "model", "search", "r2", "mae", "mape", "search_time_s"} <= set(d)

    def test_bayes_strategy_runs(self, small_aurora_dataset):
        results = run_model_comparison(
            small_aurora_dataset,
            models=["DT"],
            strategies=("BayesSearchCV",),
            scale="fast",
            cv=3,
            max_train_samples=80,
        )
        assert len(results) == 1
        assert results[0].search == "BayesSearchCV"

    def test_unknown_strategy_rejected(self, small_aurora_dataset):
        with pytest.raises(ValueError):
            run_model_comparison(
                small_aurora_dataset, models=["DT"], strategies=("HalvingSearch",), cv=3
            )

    def test_strategy_constants_match_paper(self):
        assert SEARCH_STRATEGIES == ("GridSearchCV", "RandomizedSearchCV", "BayesSearchCV")
