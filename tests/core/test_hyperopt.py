"""Tests for the model-comparison (Figures 1-2) driver."""

import pytest

from repro.core.hyperopt import SEARCH_STRATEGIES, run_model_comparison


class TestModelComparison:
    @pytest.fixture(scope="class")
    def results(self, small_aurora_dataset, session_memo_dir):
        # The ~9s of real searches ride the session memo store: a warm
        # rerun of the suite loads the stored (model, strategy) results
        # byte-for-byte instead of refitting.  The store is activated only
        # around this sweep so no other test inherits it by accident.
        from repro.parallel.store import active_memo_dir, configure_store

        previous = active_memo_dir()
        configure_store(session_memo_dir)
        try:
            return run_model_comparison(
                small_aurora_dataset,
                models=["PR", "DT", "GB"],
                strategies=("GridSearchCV", "RandomizedSearchCV"),
                scale="fast",
                cv=3,
                seed=0,
                max_train_samples=80,
            )
        finally:
            configure_store(previous)

    def test_one_result_per_model_and_strategy(self, results):
        assert len(results) == 3 * 2
        combos = {(r.model, r.search) for r in results}
        assert ("GB", "GridSearchCV") in combos

    def test_metrics_are_sensible(self, results):
        for r in results:
            assert r.r2 <= 1.0
            assert r.mae >= 0.0
            assert r.mape >= 0.0
            assert r.search_time_s > 0.0
            assert r.n_candidates >= 1

    def test_tree_ensembles_beat_plain_tree_or_match(self, results):
        best = {r.model: max(x.r2 for x in results if x.model == r.model) for r in results}
        assert best["GB"] >= best["DT"] - 0.05

    def test_result_as_dict_keys(self, results):
        d = results[0].as_dict()
        assert {"machine", "model", "search", "r2", "mae", "mape", "search_time_s"} <= set(d)

    def test_bayes_strategy_runs(self, small_aurora_dataset):
        results = run_model_comparison(
            small_aurora_dataset,
            models=["DT"],
            strategies=("BayesSearchCV",),
            scale="fast",
            cv=3,
            max_train_samples=80,
        )
        assert len(results) == 1
        assert results[0].search == "BayesSearchCV"

    def test_unknown_strategy_rejected(self, small_aurora_dataset):
        with pytest.raises(ValueError):
            run_model_comparison(
                small_aurora_dataset, models=["DT"], strategies=("HalvingSearch",), cv=3
            )

    def test_hist_tree_method_plumbs_through(self, small_aurora_dataset):
        """``tree_method="hist"`` reaches the tree models and skips the rest."""
        results = run_model_comparison(
            small_aurora_dataset,
            models=["DT", "BR"],
            strategies=("GridSearchCV",),
            scale="fast",
            cv=3,
            seed=0,
            max_train_samples=80,
            tree_method="hist",
        )
        assert {r.model for r in results} == {"DT", "BR"}
        for r in results:
            assert -1.0 <= r.r2 <= 1.0

    def test_unknown_tree_method_rejected(self, small_aurora_dataset):
        with pytest.raises(ValueError, match="tree_method"):
            run_model_comparison(
                small_aurora_dataset, models=["DT"], tree_method="approx"
            )

    def test_strategy_constants_match_paper(self):
        assert SEARCH_STRATEGIES == ("GridSearchCV", "RandomizedSearchCV", "BayesSearchCV")


class TestSweepParallelism:
    """The model x strategy sweep fans out over models with identical results."""

    def test_n_jobs_parity(self, small_aurora_dataset):
        from repro.parallel import clear_caches

        kwargs = dict(
            models=["PR", "DT"],
            strategies=("GridSearchCV", "RandomizedSearchCV"),
            scale="fast",
            cv=3,
            seed=0,
            max_train_samples=60,
        )
        serial = run_model_comparison(small_aurora_dataset, n_jobs=1, **kwargs)
        clear_caches()
        parallel = run_model_comparison(small_aurora_dataset, n_jobs=2, **kwargs)
        assert [(r.model, r.search) for r in serial] == [(r.model, r.search) for r in parallel]
        for a, b in zip(serial, parallel):
            assert a.best_params == b.best_params
            assert a.r2 == b.r2
            assert a.mae == b.mae
            assert a.mape == b.mape


class TestGradientBoostingRanking:
    """Regression pin for the Figure 1 seed failure: GB must not trail RF.

    With the widened GB grid (learning-rate x n_estimators x subsample), the
    best Gradient Boosting configuration stays within 0.05 R^2 of the best
    Random Forest on a small fixed dataset; without stochastic subsampling it
    trailed by ~0.10.
    """

    def test_gb_within_tolerance_of_rf(self, small_aurora_dataset):
        from repro.core.model_zoo import get_model_spec
        from repro.ml.metrics import r2_score

        ds = small_aurora_dataset
        # Best fast-grid configurations (the combination the searches converge
        # to); fitting them directly keeps this pin test fast and deterministic.
        gb_spec, rf_spec = get_model_spec("GB"), get_model_spec("RF")
        gb_params = dict(n_estimators=400, max_depth=4, learning_rate=0.05, subsample=0.6)
        rf_params = dict(n_estimators=60, max_depth=None, max_features=1.0)
        assert all(gb_params[k] in gb_spec.grid("fast")[k] for k in gb_params)
        assert all(rf_params[k] in rf_spec.grid("fast")[k] for k in rf_params)

        gb = gb_spec.build(**gb_params).fit(ds.X_train, ds.y_train)
        rf = rf_spec.build(**rf_params).fit(ds.X_train, ds.y_train)
        gb_r2 = r2_score(ds.y_test, gb.predict(ds.X_test))
        rf_r2 = r2_score(ds.y_test, rf.predict(ds.X_test))
        assert gb_r2 >= rf_r2 - 0.05
        assert gb_r2 > 0.8

    def test_gb_fast_grid_includes_subsample(self):
        from repro.core.model_zoo import get_model_spec

        for scale in ("fast", "paper"):
            grid = get_model_spec("GB").grid(scale)
            assert "subsample" in grid
            assert any(s < 1.0 for s in grid["subsample"])
            assert "learning_rate" in grid and "n_estimators" in grid
