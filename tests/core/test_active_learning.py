"""Tests for the active-learning campaigns (Algorithms 1-2, Figures 3-6)."""

import numpy as np
import pytest

from repro.core.active_learning import (
    ActiveLearningConfig,
    QueryByCommittee,
    RandomSampling,
    UncertaintySampling,
    run_active_learning,
)
from repro.ml.gradient_boosting import GradientBoostingRegressor


@pytest.fixture(scope="module")
def pool(small_aurora_dataset):
    ds = small_aurora_dataset
    return ds.X_train, ds.y_train, ds.X_test, ds.y_test


_FAST_CFG = dict(n_initial=30, query_size=30, n_queries=3, random_state=0)


def _fast_qc():
    return QueryByCommittee(
        n_committee=3,
        base_model=GradientBoostingRegressor(n_estimators=20, max_depth=4, subsample=0.8, random_state=0),
    )


def _fast_rs():
    return RandomSampling(model=GradientBoostingRegressor(n_estimators=20, max_depth=4, random_state=0))


class TestConfig:
    def test_defaults_follow_paper_algorithms(self):
        cfg = ActiveLearningConfig()
        assert cfg.n_initial == 50 and cfg.query_size == 50 and cfg.n_queries == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            ActiveLearningConfig(n_initial=0)
        with pytest.raises(ValueError):
            ActiveLearningConfig(query_size=0)
        with pytest.raises(ValueError):
            ActiveLearningConfig(n_queries=0)
        with pytest.raises(ValueError):
            ActiveLearningConfig(goal="speed")


class TestCampaigns:
    def test_random_sampling_curve_structure(self, pool):
        X, y, _, _ = pool
        result = run_active_learning(X, y, _fast_rs(), ActiveLearningConfig(**_FAST_CFG))
        assert result.strategy == "RS"
        assert result.known_sizes == [30, 60, 90]
        assert len(result.mape) == 3
        assert all(m >= 0 for m in result.mape)

    def test_known_size_grows_by_query_size(self, pool):
        X, y, _, _ = pool
        result = run_active_learning(X, y, _fast_qc(), ActiveLearningConfig(**_FAST_CFG))
        diffs = np.diff(result.known_sizes)
        assert np.all(diffs == 30)

    def test_uncertainty_sampling_improves_over_rounds(self, pool):
        X, y, _, _ = pool
        cfg = ActiveLearningConfig(n_initial=30, query_size=40, n_queries=4, random_state=1)
        result = run_active_learning(X, y, UncertaintySampling(reoptimize_every=10), cfg)
        assert result.strategy == "US"
        assert result.mape[-1] <= result.mape[0] * 1.5  # never catastrophically worse
        assert result.r2[-1] >= result.r2[0] - 0.05

    def test_committee_strategy_beats_or_matches_initial_model(self, pool):
        X, y, _, _ = pool
        result = run_active_learning(X, y, _fast_qc(), ActiveLearningConfig(**_FAST_CFG))
        assert result.mae[-1] <= result.mae[0]

    def test_goal_requires_test_pool(self, pool):
        X, y, _, _ = pool
        cfg = ActiveLearningConfig(goal="stq", **_FAST_CFG)
        with pytest.raises(ValueError):
            run_active_learning(X, y, _fast_rs(), cfg)

    def test_stq_goal_tracks_question_losses(self, pool):
        X, y, X_test, y_test = pool
        cfg = ActiveLearningConfig(goal="stq", **_FAST_CFG)
        result = run_active_learning(X, y, _fast_qc(), cfg, X_test=X_test, y_test=y_test)
        assert len(result.goal_mape) == len(result.known_sizes)
        assert all(m >= 0 for m in result.goal_mape)
        final = result.final_metrics()
        assert "goal_mape" in final

    def test_bq_goal_runs(self, pool):
        X, y, X_test, y_test = pool
        cfg = ActiveLearningConfig(goal="bq", **_FAST_CFG)
        result = run_active_learning(X, y, _fast_rs(), cfg, X_test=X_test, y_test=y_test)
        assert result.goal == "bq"
        assert len(result.goal_r2) == 3

    def test_strategy_resolution_by_name(self, pool):
        X, y, _, _ = pool
        result = run_active_learning(X, y, "rs", ActiveLearningConfig(**_FAST_CFG))
        assert result.strategy == "RS"
        with pytest.raises(ValueError):
            run_active_learning(X, y, "oracle", ActiveLearningConfig(**_FAST_CFG))
        with pytest.raises(TypeError):
            run_active_learning(X, y, 123, ActiveLearningConfig(**_FAST_CFG))

    def test_samples_to_reach_mape(self, pool):
        X, y, _, _ = pool
        result = run_active_learning(X, y, _fast_rs(), ActiveLearningConfig(**_FAST_CFG))
        reached = result.samples_to_reach_mape(1.0)  # trivially reachable threshold
        assert reached == result.known_sizes[0]
        assert result.samples_to_reach_mape(-1.0) is None

    def test_pool_exhaustion_stops_cleanly(self, pool):
        X, y, _, _ = pool
        tiny = ActiveLearningConfig(n_initial=40, query_size=50, n_queries=10, random_state=0)
        result = run_active_learning(X[:80], y[:80], _fast_rs(), tiny)
        assert result.known_sizes[-1] <= 80
        assert len(result.known_sizes) < 10

    def test_mismatched_pool_shapes_rejected(self, pool):
        X, y, _, _ = pool
        with pytest.raises(ValueError):
            run_active_learning(X, y[:-1], _fast_rs(), ActiveLearningConfig(**_FAST_CFG))

    def test_committee_needs_two_members(self):
        with pytest.raises(ValueError):
            QueryByCommittee(n_committee=1)
