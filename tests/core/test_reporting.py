"""Tests for plain-text table/figure rendering."""

import numpy as np
import pytest

from repro.core.active_learning import ActiveLearningResult
from repro.core.evaluation import OptimalConfigRecord
from repro.core.hyperopt import ModelComparisonResult
from repro.core.reporting import (
    format_active_learning_curves,
    format_metrics,
    format_model_comparison,
    format_question_table,
    format_table,
)


def _record(correct: bool) -> OptimalConfigRecord:
    return OptimalConfigRecord(
        n_occupied=99,
        n_virtual=718,
        true_nodes=260,
        true_tile=60,
        true_runtime_s=53.83,
        true_node_hours=3.89,
        predicted_nodes=260 if correct else 220,
        predicted_tile=60,
        predicted_config_runtime_s=53.83 if correct else 55.1,
        predicted_config_node_hours=3.89 if correct else 3.37,
        model_predicted_objective=50.0,
    )


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_metrics_line(self):
        line = format_metrics({"r2": 0.999, "mape": 0.023}, title="Aurora")
        assert line.startswith("Aurora:")
        assert "r2=" in line and "mape=" in line


class TestQuestionTable:
    def test_correct_prediction_has_no_parentheses(self):
        text = format_question_table([_record(True)], objective="runtime")
        data_rows = text.splitlines()[2:]
        assert all("(" not in row for row in data_rows)

    def test_incorrect_prediction_shows_parentheses(self):
        text = format_question_table([_record(False)], objective="runtime")
        assert "260(220)" in text
        assert "53.83(55.10)" in text

    def test_budget_table_includes_node_hours_column(self):
        text = format_question_table([_record(True)], objective="node_hours")
        assert "Node hours" in text


class TestModelComparisonTable:
    def test_contains_all_rows(self):
        results = [
            ModelComparisonResult("aurora", "GB", "GridSearchCV", {}, 0.99, 2.0, 0.02, 10.0, 6),
            ModelComparisonResult("aurora", "PR", "BayesSearchCV", {}, 0.95, 5.0, 0.08, 3.0, 8),
        ]
        text = format_model_comparison(results)
        assert "GB" in text and "PR" in text and "BayesSearchCV" in text


class TestActiveLearningCurves:
    def _result(self, name: str) -> ActiveLearningResult:
        return ActiveLearningResult(
            strategy=name,
            goal="stq",
            known_sizes=[50, 100],
            r2=[0.5, 0.8],
            mae=[10.0, 5.0],
            mape=[0.4, 0.2],
            goal_r2=[0.4, 0.7],
            goal_mae=[12.0, 6.0],
            goal_mape=[0.5, 0.25],
        )

    def test_curves_table_lists_all_strategies(self):
        text = format_active_learning_curves([self._result("RS"), self._result("US")], metric="mape")
        assert "RS" in text and "US" in text
        assert "50" in text and "100" in text

    def test_goal_curves_use_goal_metric(self):
        text = format_active_learning_curves([self._result("QC")], metric="mape", use_goal=True)
        assert "QC-STQ" in text
        assert "0.2500" in text

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            format_active_learning_curves([])
