"""Tests for configuration spaces and STQ/BQ question answering."""

import numpy as np
import pytest

from repro.core.questions import (
    ConfigurationSpace,
    answer_budget_question,
    answer_shortest_time_question,
    sweep_predictions,
)


class _AnalyticModel:
    """Stand-in runtime model with a known optimum: t = work/nodes + 0.2*nodes + (tile-80)^2/50."""

    def predict(self, X):
        X = np.asarray(X, dtype=float)
        work = X[:, 0] * X[:, 1] / 50.0
        return work / X[:, 2] + 0.2 * X[:, 2] + (X[:, 3] - 80.0) ** 2 / 50.0


class TestConfigurationSpace:
    def test_grid_enumeration(self):
        space = ConfigurationSpace(node_grid=[5, 10], tile_grid=[40, 80, 120])
        grid = space.grid()
        assert grid.shape == (6, 2)
        assert space.n_configurations == 6
        assert {tuple(row) for row in grid} == {
            (5, 40), (5, 80), (5, 120), (10, 40), (10, 80), (10, 120),
        }

    def test_empty_grids_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationSpace(node_grid=[], tile_grid=[40])
        with pytest.raises(ValueError):
            ConfigurationSpace(node_grid=[5], tile_grid=[])

    def test_from_observations_dedupes_and_sorts(self):
        space = ConfigurationSpace.from_observations([20, 5, 20, 10], [80, 40, 80])
        assert space.node_grid == [5, 10, 20]
        assert space.tile_grid == [40, 80]

    def test_for_machine_respects_memory_feasibility(self):
        space = ConfigurationSpace.for_machine("aurora", 146, 1568)
        from repro.machines import AURORA
        from repro.tamm.runtime import TammRuntimeSimulator
        from repro.chem.orbitals import ProblemSize

        min_nodes = TammRuntimeSimulator(AURORA).min_nodes(ProblemSize(146, 1568))
        assert min(space.node_grid) >= min_nodes
        assert space.machine == "aurora"


class TestQuestionAnswers:
    def _space(self):
        return ConfigurationSpace(node_grid=[5, 10, 20, 40, 80, 160], tile_grid=[40, 60, 80, 100, 120])

    def test_sweep_predictions_shapes(self):
        sweep = sweep_predictions(_AnalyticModel(), 100, 800, self._space())
        n = self._space().n_configurations
        assert all(len(sweep[k]) == n for k in ("nodes", "tiles", "runtime_s", "node_hours"))
        np.testing.assert_allclose(
            sweep["node_hours"], sweep["runtime_s"] * sweep["nodes"] / 3600.0
        )

    def test_stq_finds_analytic_optimum(self):
        # work = 100*800/50 = 1600; t = 1600/n + 0.2n + ... minimised near n=sqrt(1600/0.2)≈89
        answer = answer_shortest_time_question(_AnalyticModel(), 100, 800, self._space())
        assert answer.n_nodes == 80
        assert answer.tile_size == 80
        assert answer.question == "shortest_time"

    def test_bq_picks_fewest_nodes(self):
        answer = answer_budget_question(_AnalyticModel(), 100, 800, self._space())
        assert answer.n_nodes == 5
        assert answer.tile_size == 80
        assert answer.question == "budget"

    def test_bq_uses_fewer_nodes_than_stq(self):
        space = self._space()
        stq = answer_shortest_time_question(_AnalyticModel(), 150, 900, space)
        bq = answer_budget_question(_AnalyticModel(), 150, 900, space)
        assert bq.n_nodes <= stq.n_nodes
        assert bq.predicted_node_hours <= stq.predicted_node_hours + 1e-9
        assert stq.predicted_runtime_s <= bq.predicted_runtime_s + 1e-9

    def test_answer_values_consistent(self):
        answer = answer_shortest_time_question(_AnalyticModel(), 100, 800, self._space())
        assert answer.predicted_node_hours == pytest.approx(
            answer.predicted_runtime_s * answer.n_nodes / 3600.0
        )
        assert answer.objective_value == pytest.approx(answer.predicted_runtime_s)
        assert set(answer.as_dict()) >= {"question", "n_nodes", "tile_size"}
