"""Tests for the model registry."""

import pytest

from repro.core.model_zoo import MODEL_ZOO, build_model, get_model_spec, model_names
from repro.ml.gradient_boosting import GradientBoostingRegressor
from repro.ml.search import ParameterGrid


class TestModelZoo:
    def test_contains_the_nine_paper_models(self):
        assert set(model_names()) == {"PR", "KR", "DT", "RF", "GB", "AB", "GP", "BR", "SVR"}

    def test_build_model_types(self):
        gb = build_model("GB")
        assert isinstance(gb, GradientBoostingRegressor)

    def test_build_model_with_overrides(self):
        gb = build_model("gb", n_estimators=5, max_depth=2)
        assert gb.n_estimators == 5 and gb.max_depth == 2

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_model_spec("XGB")

    def test_grids_are_valid_parameter_grids(self):
        for spec in MODEL_ZOO.values():
            for scale in ("fast", "paper"):
                grid = spec.grid(scale)
                assert len(ParameterGrid(grid)) >= 1
                # Every grid key must be a real hyper-parameter of the model.
                model = spec.factory()
                valid = set(model.get_params(deep=False))
                assert set(grid) <= valid, (spec.key, scale)

    def test_fast_grids_not_larger_than_paper_grids(self):
        for spec in MODEL_ZOO.values():
            assert len(ParameterGrid(spec.grid("fast"))) <= len(ParameterGrid(spec.grid("paper")))

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            MODEL_ZOO["GB"].grid("huge")

    def test_every_model_fits_small_data(self, small_aurora_dataset):
        ds = small_aurora_dataset
        X, y = ds.X_train[:60], ds.y_train[:60]
        for key in model_names():
            model = build_model(key)
            # Shrink the expensive ensembles for this smoke check.
            params = model.get_params(deep=False)
            if "n_estimators" in params:
                model.set_params(n_estimators=10)
            model.fit(X, y)
            assert model.predict(X[:5]).shape == (5,)
