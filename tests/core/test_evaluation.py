"""Tests for the paper's STQ/BQ evaluation protocol."""

import numpy as np
import pytest

from repro.core.evaluation import (
    evaluate_question_predictions,
    optimal_configurations,
    question_loss_report,
)


def _toy_pool():
    """Two problem sizes x three configs with known optima."""
    X = np.array(
        [
            # O, V, nodes, tile
            [10, 100, 5, 40],
            [10, 100, 20, 40],
            [10, 100, 80, 40],
            [20, 200, 5, 80],
            [20, 200, 20, 80],
            [20, 200, 80, 80],
        ],
        dtype=float,
    )
    y_true = np.array([100.0, 40.0, 30.0, 400.0, 150.0, 100.0])
    return X, y_true


class TestOptimalConfigurations:
    def test_true_optima_without_predictions(self):
        X, y = _toy_pool()
        records = optimal_configurations(X, y, objective="runtime")
        assert len(records) == 2
        by_problem = {(r.n_occupied, r.n_virtual): r for r in records}
        assert by_problem[(10, 100)].true_nodes == 80
        assert by_problem[(10, 100)].true_runtime_s == 30.0
        assert all(r.configuration_correct for r in records)

    def test_node_hours_objective_prefers_small_allocations(self):
        X, y = _toy_pool()
        records = optimal_configurations(X, y, objective="node_hours")
        by_problem = {(r.n_occupied, r.n_virtual): r for r in records}
        # node-seconds: 500, 800, 2400 -> 5 nodes wins.
        assert by_problem[(10, 100)].true_nodes == 5

    def test_wrong_prediction_scored_with_true_runtime(self):
        X, y = _toy_pool()
        # Model thinks the 20-node config is fastest for problem (10, 100).
        y_pred = y.copy()
        y_pred[1] = 5.0
        records = optimal_configurations(X, y, y_pred, objective="runtime")
        rec = {(r.n_occupied, r.n_virtual): r for r in records}[(10, 100)]
        assert not rec.configuration_correct
        assert rec.predicted_nodes == 20
        # Crucially the achieved value is the TRUE runtime of the predicted
        # config (40 s), not the model's optimistic 5 s.
        assert rec.achieved_objective("runtime") == 40.0

    def test_mismatched_shapes_rejected(self):
        X, y = _toy_pool()
        with pytest.raises(ValueError):
            optimal_configurations(X, y[:-1])

    def test_unknown_objective_rejected(self):
        X, y = _toy_pool()
        with pytest.raises(ValueError):
            optimal_configurations(X, y, objective="energy")


class TestAggregation:
    def test_perfect_predictions_give_perfect_scores(self):
        X, y = _toy_pool()
        report = question_loss_report(X, y, y, objective="runtime")
        assert report["r2"] == pytest.approx(1.0)
        assert report["mae"] == 0.0
        assert report["mape"] == 0.0
        assert report["n_incorrect_configs"] == 0.0
        assert report["n_problems"] == 2.0

    def test_suboptimal_recommendation_penalised(self):
        X, y = _toy_pool()
        y_pred = y.copy()
        y_pred[1] = 5.0  # lure the model to a config 10 s worse than optimal
        report = question_loss_report(X, y, y_pred, objective="runtime")
        assert report["n_incorrect_configs"] == 1.0
        assert report["mae"] == pytest.approx(5.0)  # (40-30)/2 problems
        assert report["mape"] > 0

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            evaluate_question_predictions([])

    def test_real_model_on_small_dataset(self, fast_estimator_aurora, small_aurora_dataset):
        ds = small_aurora_dataset
        preds = fast_estimator_aurora.predict(ds.X_test)
        report = question_loss_report(ds.X_test, ds.y_test, preds, "runtime")
        assert report["r2"] > 0.8
        assert report["mape"] < 0.3
