"""Tests for gradient boosted trees (the paper's best-performing model)."""

import numpy as np
import pytest

from repro.ml.gradient_boosting import GradientBoostingRegressor
from repro.ml.metrics import r2_score


class TestGradientBoosting:
    def test_fit_quality_nonlinear(self, nonlinear_data):
        X, y = nonlinear_data
        gb = GradientBoostingRegressor(n_estimators=150, max_depth=3, random_state=0).fit(X, y)
        assert gb.score(X, y) > 0.97

    def test_training_loss_monotonically_decreases(self, nonlinear_data):
        X, y = nonlinear_data
        gb = GradientBoostingRegressor(n_estimators=50, max_depth=3, random_state=0).fit(X, y)
        losses = np.asarray(gb.train_score_)
        assert np.all(np.diff(losses) <= 1e-9)

    def test_more_estimators_fit_training_data_better(self, nonlinear_data):
        X, y = nonlinear_data
        few = GradientBoostingRegressor(n_estimators=10, random_state=0).fit(X, y)
        many = GradientBoostingRegressor(n_estimators=100, random_state=0).fit(X, y)
        assert many.score(X, y) > few.score(X, y)

    def test_staged_predict_final_stage_matches_predict(self, nonlinear_data):
        X, y = nonlinear_data
        gb = GradientBoostingRegressor(n_estimators=20, random_state=0).fit(X, y)
        stages = list(gb.staged_predict(X[:30]))
        assert len(stages) == 20
        np.testing.assert_allclose(stages[-1], gb.predict(X[:30]))

    def test_learning_rate_zero_estimators_rejected(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0).fit(np.ones((4, 1)), np.ones(4))
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0).fit(np.ones((4, 1)), np.arange(4.0))
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0).fit(np.ones((4, 1)), np.arange(4.0))

    def test_subsample_still_fits(self, nonlinear_data):
        X, y = nonlinear_data
        gb = GradientBoostingRegressor(
            n_estimators=80, subsample=0.6, max_depth=3, random_state=0
        ).fit(X, y)
        assert gb.score(X, y) > 0.9

    def test_absolute_error_loss(self, rng):
        X = rng.uniform(-2, 2, size=(200, 2))
        y = X[:, 0] - 2.0 * X[:, 1]
        # Add a few gross outliers; MAE loss should stay robust.
        y_noisy = y.copy()
        y_noisy[:5] += 100.0
        gb = GradientBoostingRegressor(
            n_estimators=100, loss="absolute_error", max_depth=3, random_state=0
        ).fit(X, y_noisy)
        assert r2_score(y[5:], gb.predict(X[5:])) > 0.8

    def test_unknown_loss(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(loss="huber").fit(np.ones((4, 1)), np.arange(4.0))

    def test_early_stopping_reduces_estimator_count(self, rng):
        X = rng.uniform(-1, 1, size=(300, 2))
        y = X[:, 0] + rng.normal(0, 0.5, 300)
        gb = GradientBoostingRegressor(
            n_estimators=300,
            n_iter_no_change=5,
            validation_fraction=0.2,
            max_depth=2,
            random_state=0,
        ).fit(X, y)
        assert gb.n_estimators_ < 300
        assert len(gb.validation_score_) == gb.n_estimators_

    def test_init_is_mean_for_squared_error(self, nonlinear_data):
        X, y = nonlinear_data
        gb = GradientBoostingRegressor(n_estimators=1, learning_rate=0.0001, random_state=0).fit(X, y)
        assert gb.init_ == pytest.approx(float(np.mean(y)))

    def test_reproducibility(self, nonlinear_data):
        X, y = nonlinear_data
        a = GradientBoostingRegressor(n_estimators=30, subsample=0.7, random_state=3).fit(X, y)
        b = GradientBoostingRegressor(n_estimators=30, subsample=0.7, random_state=3).fit(X, y)
        np.testing.assert_allclose(a.predict(X[:20]), b.predict(X[:20]))

    def test_feature_importances(self, rng):
        X = rng.normal(size=(250, 3))
        y = 5.0 * X[:, 2] + 0.01 * rng.normal(size=250)
        gb = GradientBoostingRegressor(n_estimators=30, max_depth=3, random_state=0).fit(X, y)
        assert np.argmax(gb.feature_importances_) == 2
