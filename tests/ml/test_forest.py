"""Tests for the random forest regressor."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor


class TestRandomForest:
    def test_fit_quality(self, nonlinear_data):
        X, y = nonlinear_data
        rf = RandomForestRegressor(n_estimators=25, random_state=0).fit(X, y)
        assert rf.score(X, y) > 0.9

    def test_prediction_is_mean_of_trees(self, nonlinear_data):
        X, y = nonlinear_data
        rf = RandomForestRegressor(n_estimators=10, random_state=0).fit(X, y)
        manual = np.mean([t.predict(X[:20]) for t in rf.estimators_], axis=0)
        np.testing.assert_allclose(rf.predict(X[:20]), manual)

    def test_reproducible_with_seed(self, nonlinear_data):
        X, y = nonlinear_data
        p1 = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y).predict(X[:10])
        p2 = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y).predict(X[:10])
        np.testing.assert_allclose(p1, p2)

    def test_different_seeds_differ(self, nonlinear_data):
        X, y = nonlinear_data
        p1 = RandomForestRegressor(n_estimators=5, random_state=1).fit(X, y).predict(X[:10])
        p2 = RandomForestRegressor(n_estimators=5, random_state=2).fit(X, y).predict(X[:10])
        assert not np.allclose(p1, p2)

    def test_no_bootstrap_with_all_features_reduces_variance_to_tree(self, nonlinear_data):
        X, y = nonlinear_data
        rf = RandomForestRegressor(
            n_estimators=3, bootstrap=False, max_features=1.0, random_state=0
        ).fit(X, y)
        tree = DecisionTreeRegressor(random_state=0).fit(X, y)
        np.testing.assert_allclose(rf.predict(X[:30]), tree.predict(X[:30]), rtol=1e-6)

    def test_oob_score_reasonable(self, nonlinear_data):
        X, y = nonlinear_data
        rf = RandomForestRegressor(n_estimators=40, oob_score=True, random_state=0).fit(X, y)
        assert 0.5 < rf.oob_score_ <= 1.0

    def test_predict_std_nonnegative_and_shaped(self, nonlinear_data):
        X, y = nonlinear_data
        rf = RandomForestRegressor(n_estimators=10, random_state=0).fit(X, y)
        std = rf.predict_std(X[:15])
        assert std.shape == (15,)
        assert np.all(std >= 0)

    def test_predict_all_shape(self, nonlinear_data):
        X, y = nonlinear_data
        rf = RandomForestRegressor(n_estimators=7, random_state=0).fit(X, y)
        assert rf.predict_all(X[:9]).shape == (9, 7)

    def test_feature_importances_sum_to_one(self, nonlinear_data):
        X, y = nonlinear_data
        rf = RandomForestRegressor(n_estimators=10, random_state=0).fit(X, y)
        assert rf.feature_importances_.sum() == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0).fit(np.ones((4, 1)), np.ones(4))
        with pytest.raises(ValueError):
            RandomForestRegressor(max_samples=1.5).fit(np.ones((4, 1)), np.arange(4.0))

    def test_max_samples_fraction(self, nonlinear_data):
        X, y = nonlinear_data
        rf = RandomForestRegressor(n_estimators=5, max_samples=0.3, random_state=0).fit(X, y)
        assert r2_score(y, rf.predict(X)) > 0.5
