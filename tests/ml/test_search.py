"""Tests for parameter grids and grid/randomized search."""

import numpy as np
import pytest

from repro.ml.linear import Ridge
from repro.ml.search import GridSearchCV, ParameterGrid, ParameterSampler, RandomizedSearchCV
from repro.ml.tree import DecisionTreeRegressor


class TestParameterGrid:
    def test_length_and_contents(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        combos = list(grid)
        assert len(grid) == 6 and len(combos) == 6
        assert {"a": 1, "b": "x"} in combos

    def test_multiple_grids(self):
        grid = ParameterGrid([{"a": [1]}, {"b": [2, 3]}])
        assert len(grid) == 3

    def test_scalar_values_promoted_to_lists(self):
        grid = ParameterGrid({"a": [1, 2], "b": "const"})
        assert all(c["b"] == "const" for c in grid)

    def test_empty_value_list_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": []})


class TestParameterSampler:
    def test_samples_without_replacement_from_grid(self):
        sampler = ParameterSampler({"a": [1, 2, 3], "b": [10, 20]}, n_iter=4, random_state=0)
        samples = list(sampler)
        assert len(samples) == 4
        assert len({tuple(sorted(s.items())) for s in samples}) == 4

    def test_n_iter_capped_by_grid_size(self):
        sampler = ParameterSampler({"a": [1, 2]}, n_iter=10, random_state=0)
        assert len(list(sampler)) == 2

    def test_rvs_distributions_supported(self):
        import scipy.stats as st

        sampler = ParameterSampler({"alpha": st.uniform(0, 1)}, n_iter=5, random_state=0)
        samples = list(sampler)
        assert len(samples) == 5
        assert all(0 <= s["alpha"] <= 1 for s in samples)


class TestGridSearchCV:
    def test_finds_best_alpha(self, nonlinear_data):
        X, y = nonlinear_data
        search = GridSearchCV(
            DecisionTreeRegressor(random_state=0),
            {"max_depth": [1, 6]},
            cv=3,
        ).fit(X, y)
        assert search.best_params_["max_depth"] == 6

    def test_cv_results_structure(self, linear_data):
        X, y, _ = linear_data
        search = GridSearchCV(Ridge(), {"alpha": [0.1, 1.0, 10.0]}, cv=3).fit(X, y)
        assert len(search.cv_results_["params"]) == 3
        assert search.cv_results_["mean_test_score"].shape == (3,)
        assert search.best_index_ == int(np.argmax(search.cv_results_["mean_test_score"]))

    def test_refit_allows_predict(self, linear_data):
        X, y, _ = linear_data
        search = GridSearchCV(Ridge(), {"alpha": [0.1, 1.0]}, cv=3).fit(X, y)
        assert search.predict(X[:5]).shape == (5,)
        assert search.score(X, y) > 0.9

    def test_no_refit_blocks_predict(self, linear_data):
        X, y, _ = linear_data
        search = GridSearchCV(Ridge(), {"alpha": [0.1]}, cv=3, refit=False).fit(X, y)
        with pytest.raises(RuntimeError):
            search.predict(X[:5])

    def test_search_time_recorded(self, linear_data):
        X, y, _ = linear_data
        search = GridSearchCV(Ridge(), {"alpha": [0.1, 1.0]}, cv=3).fit(X, y)
        assert search.search_time_ > 0

    def test_empty_grid_rejected(self, linear_data):
        X, y, _ = linear_data
        with pytest.raises(ValueError):
            GridSearchCV(Ridge(), [{}][:0], cv=3).fit(X, y)


class TestRandomizedSearchCV:
    def test_respects_n_iter(self, linear_data):
        X, y, _ = linear_data
        search = RandomizedSearchCV(
            Ridge(), {"alpha": [0.01, 0.1, 1.0, 10.0, 100.0]}, n_iter=3, cv=3, random_state=0
        ).fit(X, y)
        assert len(search.cv_results_["params"]) == 3

    def test_best_score_close_to_grid_search(self, nonlinear_data):
        X, y = nonlinear_data
        grid = {"max_depth": [2, 4, 6, 8], "min_samples_leaf": [1, 5]}
        gs = GridSearchCV(DecisionTreeRegressor(random_state=0), grid, cv=3).fit(X, y)
        rs = RandomizedSearchCV(
            DecisionTreeRegressor(random_state=0), grid, n_iter=8, cv=3, random_state=0
        ).fit(X, y)
        assert rs.best_score_ == pytest.approx(gs.best_score_, abs=0.05)
