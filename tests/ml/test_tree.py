"""Tests for the CART regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor


class TestBasicFitting:
    def test_fits_piecewise_constant_exactly(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.where(X.ravel() < 10, 1.0, 5.0)
        tree = DecisionTreeRegressor().fit(X, y)
        np.testing.assert_allclose(tree.predict(X), y)
        assert tree.get_n_leaves() == 2

    def test_single_split_threshold_location(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        internal = tree.feature_ != -2
        assert internal.sum() == 1
        threshold = tree.threshold_[internal][0]
        assert 1.0 < threshold < 2.0

    def test_constant_target_gives_single_leaf(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        tree = DecisionTreeRegressor().fit(X, np.full(10, 3.0))
        assert tree.n_nodes_ == 1
        np.testing.assert_allclose(tree.predict(X), 3.0)

    def test_deep_tree_overfits_training_data(self, nonlinear_data):
        X, y = nonlinear_data
        tree = DecisionTreeRegressor(max_depth=None).fit(X, y)
        assert r2_score(y, tree.predict(X)) > 0.99


class TestHyperparameters:
    def test_max_depth_respected(self, nonlinear_data):
        X, y = nonlinear_data
        for depth in (1, 2, 4):
            tree = DecisionTreeRegressor(max_depth=depth).fit(X, y)
            assert tree.get_depth() <= depth

    def test_min_samples_leaf_respected(self, nonlinear_data):
        X, y = nonlinear_data
        tree = DecisionTreeRegressor(min_samples_leaf=20).fit(X, y)
        leaves = tree.apply(X)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 20

    def test_min_samples_split_limits_growth(self, nonlinear_data):
        X, y = nonlinear_data
        small = DecisionTreeRegressor(min_samples_split=2).fit(X, y)
        large = DecisionTreeRegressor(min_samples_split=100).fit(X, y)
        assert large.get_n_leaves() < small.get_n_leaves()

    def test_deeper_tree_fits_no_worse(self, nonlinear_data):
        X, y = nonlinear_data
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(X, y)
        assert deep.score(X, y) >= shallow.score(X, y) - 1e-12

    def test_invalid_params(self):
        X, y = np.ones((4, 1)), np.ones(4)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0).fit(X, y)

    def test_max_features_string_options(self, nonlinear_data):
        X, y = nonlinear_data
        for mf in ("sqrt", "log2", 0.5, 2):
            tree = DecisionTreeRegressor(max_features=mf, random_state=0).fit(X, y)
            assert tree.score(X, y) > 0.3


class TestSampleWeights:
    def test_weights_shift_leaf_values(self):
        X = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([0.0, 10.0, 0.0, 10.0])
        w = np.array([1.0, 9.0, 9.0, 1.0])
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y, sample_weight=w)
        preds = tree.predict(np.array([[0.0], [1.0]]))
        assert preds[0] == pytest.approx(9.0)
        assert preds[1] == pytest.approx(1.0)

    def test_zero_weight_samples_ignored_in_values(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([1.0, 1.0, 5.0, 100.0])
        w = np.array([1.0, 1.0, 1.0, 0.0])
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y, sample_weight=w)
        assert tree.predict(np.array([[3.0]]))[0] <= 5.0 + 1e-9

    def test_invalid_weights(self):
        X, y = np.ones((3, 1)), np.ones(3)
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(X, y, sample_weight=np.array([1.0, -1.0, 1.0]))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(X, y, sample_weight=np.ones(2))

    @pytest.mark.parametrize("method", ["exact", "hist"])
    def test_zero_weight_run_does_not_mask_real_split(self, method):
        """Regression: a leading zero-weight run made the left partition's
        weight zero, the gain NaN, and NaN won ``argmax`` — silently
        discarding the feature's real best split and leaving the node a leaf.
        """
        X = np.array([[0.0], [1.0], [2.0], [3.0], [4.0], [5.0]])
        y = np.array([0.0, 0.0, 0.0, 10.0, 10.0, 10.0])
        w = np.array([0.0, 0.0, 1.0, 1.0, 1.0, 1.0])
        tree = DecisionTreeRegressor(max_depth=1, tree_method=method).fit(
            X, y, sample_weight=w
        )
        assert tree.n_nodes_ == 3
        assert tree.threshold_[0] == 2.5
        np.testing.assert_allclose(tree.predict(X), np.where(X.ravel() <= 2.5, 0.0, 10.0))

    @pytest.mark.parametrize("method", ["exact", "hist"])
    def test_interior_zero_weight_runs_still_split(self, method):
        """Zero-weight runs in the middle of a feature's sort order must not
        block splitting either side of them."""
        X = np.arange(8, dtype=float).reshape(-1, 1)
        y = np.array([0.0, 0.0, 3.0, 7.0, 0.0, 10.0, 10.0, 10.0])
        w = np.array([1.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0])
        tree = DecisionTreeRegressor(max_depth=1, tree_method=method).fit(
            X, y, sample_weight=w
        )
        assert tree.n_nodes_ == 3
        assert tree.predict(np.array([[0.0]]))[0] == pytest.approx(0.0)
        assert tree.predict(np.array([[7.0]]))[0] == pytest.approx(10.0)


class TestMinImpurityDecrease:
    @pytest.mark.parametrize("method", ["exact", "hist"])
    def test_threshold_gates_every_split(self, method):
        """``min_impurity_decrease`` is consulted on every accepted split —
        the historical ``node_sse <= 0`` escape hatch accepted positive-gain
        splits without checking it."""
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        # Weighted SSE gain of the perfect split is 100 on these targets.
        splits = DecisionTreeRegressor(
            max_depth=1, min_impurity_decrease=99.0, tree_method=method
        ).fit(X, y)
        blocked = DecisionTreeRegressor(
            max_depth=1, min_impurity_decrease=101.0, tree_method=method
        ).fit(X, y)
        assert splits.n_nodes_ == 3
        assert blocked.n_nodes_ == 1

    @pytest.mark.parametrize("method", ["exact", "hist"])
    def test_zero_gain_split_rejected_even_without_threshold(self, method):
        """A split must strictly reduce the SSE regardless of the setting."""
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.full(4, 2.0)
        y[0] = 2.0  # constant target: every candidate split has zero gain
        tree = DecisionTreeRegressor(max_depth=3, tree_method=method).fit(X, y)
        assert tree.n_nodes_ == 1


class TestIntrospection:
    def test_apply_returns_leaves(self, nonlinear_data):
        X, y = nonlinear_data
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        leaves = tree.apply(X)
        assert np.all(tree.feature_[leaves] == -2)

    def test_feature_importances_sum_to_one(self, nonlinear_data):
        X, y = nonlinear_data
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_important_feature_detected(self, rng):
        X = rng.normal(size=(300, 3))
        y = 10.0 * X[:, 1] + 0.01 * rng.normal(size=300)
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 1

    def test_feature_count_mismatch_on_predict(self, nonlinear_data):
        X, y = nonlinear_data
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(X[:, :2])


class TestProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(5, 40), st.integers(1, 3)),
            elements=st.floats(-50, 50, allow_nan=False),
        ),
        st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_predictions_within_target_range(self, X, depth):
        rng = np.random.default_rng(0)
        y = rng.uniform(-10.0, 10.0, size=X.shape[0])
        tree = DecisionTreeRegressor(max_depth=depth).fit(X, y)
        preds = tree.predict(X)
        assert preds.min() >= y.min() - 1e-9
        assert preds.max() <= y.max() + 1e-9

    @given(st.integers(2, 30))
    @settings(max_examples=20, deadline=None)
    def test_training_mse_no_worse_than_constant_model(self, n):
        rng = np.random.default_rng(n)
        X = rng.normal(size=(n, 2))
        y = rng.normal(size=n)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        mse_tree = np.mean((y - tree.predict(X)) ** 2)
        mse_const = np.mean((y - y.mean()) ** 2)
        assert mse_tree <= mse_const + 1e-9
