"""Tests for linear, ridge, Bayesian ridge and polynomial regression."""

import numpy as np
import pytest

from repro.ml.linear import BayesianRidge, LinearRegression, PolynomialRegression, Ridge
from repro.ml.metrics import r2_score


class TestLinearRegression:
    def test_recovers_true_coefficients(self, linear_data):
        X, y, coef = linear_data
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=0.05)
        assert model.intercept_ == pytest.approx(3.0, abs=0.05)

    def test_exact_fit_noise_free(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = 2.0 * X.ravel() + 1.0
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-10)

    def test_no_intercept(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = 4.0 * X.ravel()
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(4.0)

    def test_score_is_r2(self, linear_data):
        X, y, _ = linear_data
        model = LinearRegression().fit(X, y)
        assert model.score(X, y) == pytest.approx(r2_score(y, model.predict(X)))


class TestRidge:
    def test_matches_ols_with_zero_alpha(self, linear_data):
        X, y, _ = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = Ridge(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_shrinkage_increases_with_alpha(self, linear_data):
        X, y, _ = linear_data
        small = Ridge(alpha=0.01).fit(X, y)
        large = Ridge(alpha=1e4).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            Ridge(alpha=-1.0).fit(np.ones((3, 1)), np.ones(3))

    def test_handles_collinear_features(self, rng):
        x = rng.normal(size=50)
        X = np.column_stack([x, x])  # perfectly collinear
        y = 3.0 * x
        model = Ridge(alpha=1.0).fit(X, y)
        assert np.all(np.isfinite(model.coef_))
        assert r2_score(y, model.predict(X)) > 0.95


class TestBayesianRidge:
    def test_fit_quality_on_linear_data(self, linear_data):
        X, y, coef = linear_data
        model = BayesianRidge().fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=0.1)
        assert model.alpha_ > 0 and model.lambda_ > 0

    def test_noise_precision_tracks_noise_level(self, rng):
        X = rng.normal(size=(300, 2))
        y_clean = X @ np.array([1.0, -1.0])
        low_noise = BayesianRidge().fit(X, y_clean + rng.normal(0, 0.01, 300))
        high_noise = BayesianRidge().fit(X, y_clean + rng.normal(0, 1.0, 300))
        # alpha_ is the estimated noise *precision*: higher for cleaner data.
        assert low_noise.alpha_ > high_noise.alpha_

    def test_predict_with_std(self, linear_data):
        X, y, _ = linear_data
        model = BayesianRidge().fit(X, y)
        mean, std = model.predict(X[:10], return_std=True)
        assert mean.shape == (10,) and std.shape == (10,)
        assert np.all(std > 0)


class TestPolynomialRegression:
    def test_fits_quadratic_exactly(self, rng):
        X = rng.uniform(-2, 2, size=(100, 1))
        y = 3.0 * X.ravel() ** 2 - X.ravel() + 0.5
        model = PolynomialRegression(degree=2, alpha=1e-10).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9999

    def test_beats_linear_on_nonlinear_data(self, nonlinear_data):
        X, y = nonlinear_data
        lin = LinearRegression().fit(X, y)
        poly = PolynomialRegression(degree=3).fit(X, y)
        assert poly.score(X, y) > lin.score(X, y)

    def test_get_set_params_roundtrip(self):
        model = PolynomialRegression(degree=4, alpha=0.1)
        params = model.get_params()
        assert params["degree"] == 4
        model.set_params(degree=2)
        assert model.degree == 2
