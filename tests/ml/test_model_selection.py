"""Tests for train/test splitting and cross validation."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression, Ridge
from repro.ml.model_selection import (
    KFold,
    cross_val_predict,
    cross_val_score,
    cross_validate,
    get_scorer,
    train_test_split,
)


class TestTrainTestSplit:
    def test_sizes_with_fraction(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.arange(100)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25, random_state=0)
        assert len(X_te) == 25 and len(X_tr) == 75
        assert len(y_te) == 25 and len(y_tr) == 75

    def test_sizes_with_int(self):
        X = np.arange(10).reshape(-1, 1)
        X_tr, X_te = train_test_split(X, test_size=3, random_state=0)
        assert len(X_te) == 3 and len(X_tr) == 7

    def test_partition_is_disjoint_and_complete(self):
        X = np.arange(50).reshape(-1, 1)
        X_tr, X_te = train_test_split(X, test_size=0.3, random_state=1)
        combined = np.sort(np.concatenate([X_tr, X_te]).ravel())
        np.testing.assert_array_equal(combined, np.arange(50))

    def test_reproducible_with_seed(self):
        X = np.arange(30).reshape(-1, 1)
        a = train_test_split(X, test_size=0.5, random_state=42)
        b = train_test_split(X, test_size=0.5, random_state=42)
        np.testing.assert_array_equal(a[0], b[0])

    def test_rows_stay_aligned_across_arrays(self):
        X = np.arange(20).reshape(-1, 1)
        y = np.arange(20) * 10
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25, random_state=3)
        np.testing.assert_array_equal(X_tr.ravel() * 10, y_tr)

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(10).reshape(-1, 1), test_size=1.5)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((5, 1)), np.ones(4))


class TestKFold:
    def test_every_sample_tested_exactly_once(self):
        kf = KFold(n_splits=4)
        X = np.arange(22)
        seen = np.concatenate([test for _, test in kf.split(X)])
        np.testing.assert_array_equal(np.sort(seen), np.arange(22))

    def test_train_test_disjoint(self):
        for train, test in KFold(n_splits=3).split(np.arange(10)):
            assert len(np.intersect1d(train, test)) == 0

    def test_shuffle_changes_order_but_not_coverage(self):
        kf = KFold(n_splits=5, shuffle=True, random_state=0)
        seen = np.concatenate([test for _, test in kf.split(np.arange(23))])
        np.testing.assert_array_equal(np.sort(seen), np.arange(23))

    def test_too_many_splits_raises(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.arange(3)))

    def test_min_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestCrossValidation:
    def test_cross_val_score_high_for_linear_model(self, linear_data):
        X, y, _ = linear_data
        scores = cross_val_score(LinearRegression(), X, y, cv=4)
        assert scores.shape == (4,)
        assert np.all(scores > 0.95)

    def test_cross_validate_returns_times(self, linear_data):
        X, y, _ = linear_data
        out = cross_validate(Ridge(0.1), X, y, cv=3, return_train_score=True)
        assert set(out) == {"test_score", "fit_time", "score_time", "train_score"}
        assert np.all(out["fit_time"] >= 0)

    def test_cross_val_predict_covers_all_samples(self, linear_data):
        X, y, _ = linear_data
        preds = cross_val_predict(LinearRegression(), X, y, cv=5)
        assert preds.shape == y.shape
        assert np.corrcoef(preds, y)[0, 1] > 0.95

    def test_error_scorer_is_negated(self, linear_data):
        X, y, _ = linear_data
        scores = cross_val_score(LinearRegression(), X, y, cv=3, scoring="neg_mean_absolute_error")
        assert np.all(scores <= 0)

    def test_get_scorer_unknown_name(self):
        with pytest.raises(ValueError):
            get_scorer("not-a-metric")

    def test_get_scorer_accepts_callable(self):
        f = lambda yt, yp: 1.0
        assert get_scorer(f) is f
