"""Bit-parity and pickle-form tests for the packed ensemble engine.

The contract under test (see ROADMAP "packed prediction contract"): packed
predictions are **byte-identical** to the historical per-tree object path for
every ensemble and seed, and the packed arena is the pickle form of fitted
ensembles.  Reference implementations in this module deliberately spell out
the pre-packed code paths (per-tree ``predict`` loops, per-leaf masked
medians, per-node depth walks) so a regression in either side breaks parity.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.ml.adaboost import AdaBoostRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.gradient_boosting import GradientBoostingRegressor
from repro.ml.linear import LinearRegression
from repro.ml.packed import (
    PACKED_STATE_VERSION,
    PackedEnsemble,
    committee_predictions,
    pack_trees_state,
    unpack_trees_state,
)
from repro.ml.tree import _TREE_LEAF, _TREE_UNDEFINED, DecisionTreeRegressor


def _make_data(seed: int, n: int = 120, n_features: int = 4):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, n_features))
    y = X[:, 0] ** 2 + np.sin(3.0 * X[:, 1]) - X[:, 2] * X[:, 3] + 0.1 * rng.normal(size=n)
    X_new = rng.normal(size=(n // 2, n_features))
    return X, y, X_new


def _fit_random_trees(seed: int, n_trees: int = 5) -> tuple[list, np.ndarray, np.ndarray]:
    """Trees with assorted shapes (depths, leaf sizes, feature subsampling)."""
    rng = np.random.default_rng(seed)
    X, y, X_new = _make_data(seed)
    trees = []
    for i in range(n_trees):
        tree = DecisionTreeRegressor(
            max_depth=int(rng.integers(1, 7)),
            min_samples_leaf=int(rng.integers(1, 5)),
            max_features=["sqrt", None, 2][i % 3],
            random_state=int(rng.integers(0, 2**31 - 1)),
        )
        trees.append(tree.fit(X, y))
    return trees, X, X_new


class TestPackedArena:
    def test_arena_layout_and_dtypes(self):
        trees, _, _ = _fit_random_trees(seed=0)
        packed = PackedEnsemble.from_trees(trees)
        assert packed.feature.dtype == np.int32
        assert packed.children_left.dtype == np.int32
        assert packed.children_right.dtype == np.int32
        assert packed.threshold.dtype == np.float64
        assert packed.value.dtype == np.float64
        for arr in (packed.feature, packed.threshold, packed.children_left,
                    packed.children_right, packed.value):
            assert arr.flags["C_CONTIGUOUS"]
        assert packed.n_trees == len(trees)
        assert packed.n_nodes == sum(t.n_nodes_ for t in trees)
        # Per-tree slices reproduce each member's node arrays.
        for i, tree in enumerate(trees):
            lo, hi = packed.tree_slice(i)
            assert hi - lo == tree.n_nodes_
            assert np.array_equal(packed.feature[lo:hi], tree.feature_)
            assert np.array_equal(packed.value[lo:hi], tree.value_)
            # Child pointers are rebased to global arena indices.
            cl = packed.children_left[lo:hi].astype(np.int64)
            expect = np.where(tree.children_left_ == _TREE_LEAF, _TREE_LEAF,
                              tree.children_left_ + lo)
            assert np.array_equal(cl, expect)

    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_apply_and_leaf_values_match_per_tree_path(self, seed):
        trees, X, X_new = _fit_random_trees(seed=seed)
        packed = PackedEnsemble.from_trees(trees)
        for X_eval in (X, X_new):
            nodes = packed.apply(X_eval)
            leaves = packed.leaf_values(X_eval)
            leaves_tm = packed.leaf_values(X_eval, tree_major=True)
            assert nodes.shape == (X_eval.shape[0], len(trees))
            for i, tree in enumerate(trees):
                lo, _ = packed.tree_slice(i)
                assert np.array_equal(nodes[:, i], tree.apply(X_eval) + lo)
                assert np.array_equal(leaves[:, i], tree.predict(X_eval))
                assert np.array_equal(leaves_tm[i], tree.predict(X_eval))

    def test_tree_prefix_selects_first_members(self):
        trees, _, X_new = _fit_random_trees(seed=3)
        packed = PackedEnsemble.from_trees(trees)
        prefix = packed.leaf_values(X_new, n_trees=2)
        assert np.array_equal(prefix, packed.leaf_values(X_new)[:, :2])

    def test_accumulate_matches_sequential_loop(self):
        trees, _, X_new = _fit_random_trees(seed=9)
        packed = PackedEnsemble.from_trees(trees)
        preds = np.full(X_new.shape[0], 0.25)
        for tree in trees:
            preds += 0.1 * tree.predict(X_new)
        assert np.array_equal(packed.accumulate(X_new, init=0.25, scale=0.1), preds)

    def test_concat_stacks_arenas(self):
        trees_a, _, X_new = _fit_random_trees(seed=5, n_trees=3)
        trees_b, _, _ = _fit_random_trees(seed=6, n_trees=2)
        combined = PackedEnsemble.concat(
            [PackedEnsemble.from_trees(trees_a), PackedEnsemble.from_trees(trees_b)]
        )
        direct = PackedEnsemble.from_trees(trees_a + trees_b)
        assert np.array_equal(combined.offsets, direct.offsets)
        assert np.array_equal(combined.leaf_values(X_new), direct.leaf_values(X_new))

    def test_input_validation(self):
        trees, _, _ = _fit_random_trees(seed=1)
        packed = PackedEnsemble.from_trees(trees)
        with pytest.raises(ValueError, match="features"):
            packed.apply(np.zeros((3, 7)))
        with pytest.raises(ValueError, match="n_trees"):
            packed.leaf_values(np.zeros((3, 4)), n_trees=0)
        with pytest.raises(ValueError, match="empty"):
            PackedEnsemble.from_trees([])
        with pytest.raises(ValueError, match="fitted"):
            PackedEnsemble.from_trees([DecisionTreeRegressor()])

    def test_non_finite_inputs_fail_loudly(self):
        # The per-tree path rejected NaN/inf via check_array; the packed
        # engine must keep that loud failure (a NaN would otherwise route
        # through the inverted comparison and silently differ).
        trees, X, X_new = _fit_random_trees(seed=2)
        packed = PackedEnsemble.from_trees(trees)
        bad = X_new.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            packed.leaf_values(bad)
        y = X[:, 0]
        member = GradientBoostingRegressor(
            n_estimators=4, max_depth=2, random_state=0
        ).fit(X, y)
        with pytest.raises(ValueError, match="NaN"):
            committee_predictions([member], bad)


class TestEnsembleParity:
    """Every ensemble's packed predictions replay the per-tree object path."""

    def test_gradient_boosting_predict_and_staged(self):
        X, y, X_new = _make_data(seed=11)
        gb = GradientBoostingRegressor(
            n_estimators=25, max_depth=4, subsample=0.8, random_state=2
        ).fit(X, y)
        ref = np.full(X_new.shape[0], gb.init_)
        staged_ref = []
        for tree in gb.estimators_:
            ref += gb.learning_rate * tree.predict(X_new)
            staged_ref.append(ref.copy())
        assert np.array_equal(gb.predict(X_new), ref)
        for got, want in zip(gb.staged_predict(X_new), staged_ref):
            assert np.array_equal(got, want)
        # Stage-prefix predictions (learning curves) use the arena prefix.
        prefix_ref = np.full(X_new.shape[0], gb.init_)
        for tree in gb.estimators_[:7]:
            prefix_ref += gb.learning_rate * tree.predict(X_new)
        assert np.array_equal(gb._raw_predict(X_new, n_estimators=7), prefix_ref)

    def test_gradient_boosting_absolute_loss_leaf_medians(self):
        X, y, X_new = _make_data(seed=13)
        gb = GradientBoostingRegressor(
            n_estimators=8, max_depth=3, loss="absolute_error", random_state=5
        ).fit(X, y)
        # The vectorised argsort-and-segment pass must equal the historical
        # per-leaf masked np.median loop on a fresh tree.
        tree = DecisionTreeRegressor(max_depth=3, random_state=0).fit(X, y)
        reference = tree.value_.copy()
        rng = np.random.default_rng(17)
        residual = rng.normal(size=len(y))
        leaves = tree.apply(X)
        for leaf in np.unique(leaves):
            reference[leaf] = float(np.median(residual[leaves == leaf]))
        gb._update_leaves_absolute(tree, X, residual)
        assert np.array_equal(tree.value_, reference)
        assert np.isfinite(gb.predict(X_new)).all()

    def test_random_forest_predict_all_std_and_oob(self):
        X, y, X_new = _make_data(seed=21)
        rf = RandomForestRegressor(
            n_estimators=20, max_depth=5, max_features="sqrt",
            oob_score=True, random_state=3
        ).fit(X, y)
        per_tree = np.column_stack([t.predict(X_new) for t in rf.estimators_])
        ref = np.zeros(X_new.shape[0])
        for tree in rf.estimators_:
            ref += tree.predict(X_new)
        assert np.array_equal(rf.predict(X_new), ref / len(rf.estimators_))
        assert np.array_equal(rf.predict_all(X_new), per_tree)
        assert np.array_equal(rf.predict_std(X_new), per_tree.std(axis=1))

        # OOB parity: replay the forest RNG to recover each member's
        # bootstrap rows, then run the historical per-tree masked loop.
        rng = np.random.default_rng(3)
        n = X.shape[0]
        oob_sum = np.zeros(n)
        oob_count = np.zeros(n)
        for tree in rf.estimators_:
            rng.integers(0, 2**31 - 1)  # the tree's seed draw
            idx = rng.integers(0, n, size=n)
            mask = np.ones(n, dtype=bool)
            mask[np.unique(idx)] = False
            if np.any(mask):
                oob_sum[mask] += tree.predict(X[mask])
                oob_count[mask] += 1
        covered = oob_count > 0
        expected = np.where(covered, oob_sum / np.maximum(oob_count, 1), np.nan)
        assert np.array_equal(rf.oob_prediction_[covered], expected[covered])

    def test_adaboost_weighted_median(self):
        X, y, X_new = _make_data(seed=31)
        ab = AdaBoostRegressor(n_estimators=15, random_state=4).fit(X, y)
        preds = np.column_stack([m.predict(X_new) for m in ab.estimators_])
        weights = np.asarray(ab.estimator_weights_)
        order = np.argsort(preds, axis=1)
        sorted_preds = np.take_along_axis(preds, order, axis=1)
        cum = np.cumsum(weights[order], axis=1)
        median_idx = np.argmax(cum >= 0.5 * cum[:, -1][:, None], axis=1)
        ref = sorted_preds[np.arange(X_new.shape[0]), median_idx]
        assert np.array_equal(ab.predict(X_new), ref)

    def test_adaboost_non_tree_base_falls_back(self):
        X, y, X_new = _make_data(seed=33)
        ab = AdaBoostRegressor(
            estimator=LinearRegression(), n_estimators=5, random_state=1
        ).fit(X, y)
        assert ab._packed_ensemble() is None
        ref = np.column_stack([m.predict(X_new) for m in ab.estimators_])
        weights = np.asarray(ab.estimator_weights_)
        order = np.argsort(ref, axis=1)
        sorted_preds = np.take_along_axis(ref, order, axis=1)
        cum = np.cumsum(weights[order], axis=1)
        median_idx = np.argmax(cum >= 0.5 * cum[:, -1][:, None], axis=1)
        assert np.array_equal(
            ab.predict(X_new), sorted_preds[np.arange(X_new.shape[0]), median_idx]
        )

    def test_committee_predictions_match_member_loop(self):
        X, y, X_new = _make_data(seed=41)
        members = [
            GradientBoostingRegressor(
                n_estimators=10 + 2 * s, max_depth=3, subsample=0.8, random_state=s
            ).fit(X, y)
            for s in range(3)
        ]
        stacked = committee_predictions(members, X_new)
        assert np.array_equal(
            stacked, np.column_stack([m.predict(X_new) for m in members])
        )
        # Mixed committees (no packed surface) fall back transparently.
        mixed = members[:1] + [LinearRegression().fit(X, y)]
        assert np.array_equal(
            committee_predictions(mixed, X_new),
            np.column_stack([m.predict(X_new) for m in mixed]),
        )

    def test_refit_rebuilds_arena(self):
        X, y, X_new = _make_data(seed=43)
        gb = GradientBoostingRegressor(n_estimators=5, max_depth=2, random_state=0)
        gb.fit(X, y)
        first = gb.predict(X_new)
        gb.fit(X, -y)
        ref = np.full(X_new.shape[0], gb.init_)
        for tree in gb.estimators_:
            ref += gb.learning_rate * tree.predict(X_new)
        assert np.array_equal(gb.predict(X_new), ref)
        assert not np.array_equal(gb.predict(X_new), first)


class TestTreeSatellites:
    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_get_depth_matches_per_node_walk(self, seed):
        trees, _, _ = _fit_random_trees(seed=seed, n_trees=4)
        for tree in trees:
            depth = np.zeros(tree.n_nodes_, dtype=np.int64)
            max_depth = 0
            for node in range(tree.n_nodes_):
                left, right = tree.children_left_[node], tree.children_right_[node]
                if left != _TREE_LEAF:
                    depth[left] = depth[node] + 1
                    depth[right] = depth[node] + 1
                    max_depth = max(max_depth, int(depth[node]) + 1)
            assert tree.get_depth() == max_depth

    def test_get_depth_root_only_tree(self):
        tree = DecisionTreeRegressor(max_depth=1, min_samples_split=100).fit(
            np.arange(10.0).reshape(-1, 1), np.zeros(10)
        )
        assert tree.get_depth() == 0


class TestPackedPickleForm:
    def test_state_form_is_packed(self):
        X, y, _ = _make_data(seed=51)
        gb = GradientBoostingRegressor(n_estimators=12, max_depth=3, random_state=0).fit(X, y)
        state = gb.__getstate__()
        assert "estimators_" not in state
        packed_state = state["_packed_trees_state"]
        assert packed_state["version"] == PACKED_STATE_VERSION
        assert isinstance(packed_state["packed"], PackedEnsemble)
        assert len(packed_state["tree_params"]) == len(gb.estimators_)
        # Hyper-parameters (init_, learning_rate, scores, ...) still pickle.
        assert state["init_"] == gb.init_

    @pytest.mark.parametrize("factory", [
        lambda: GradientBoostingRegressor(n_estimators=12, max_depth=3,
                                          subsample=0.9, random_state=6),
        lambda: RandomForestRegressor(n_estimators=10, max_depth=4, random_state=6),
        lambda: AdaBoostRegressor(n_estimators=8, random_state=6),
    ])
    def test_round_trip_is_bit_identical(self, factory):
        X, y, X_new = _make_data(seed=53)
        model = factory().fit(X, y)
        clone = pickle.loads(pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL))
        assert np.array_equal(clone.predict(X_new), model.predict(X_new))
        for ours, theirs in zip(model.estimators_, clone.estimators_):
            assert np.array_equal(ours.feature_, theirs.feature_)
            assert np.array_equal(ours.threshold_, theirs.threshold_, equal_nan=True)
            assert np.array_equal(ours.children_left_, theirs.children_left_)
            assert np.array_equal(ours.children_right_, theirs.children_right_)
            assert np.array_equal(ours.value_, theirs.value_)
            assert ours.feature_.dtype == theirs.feature_.dtype
            assert ours.get_params() == theirs.get_params()
        # Reconstructed members keep working as standalone estimators.
        member = clone.estimators_[0]
        assert np.array_equal(member.predict(X_new),
                              model.estimators_[0].predict(X_new))
        assert member.get_depth() == model.estimators_[0].get_depth()

    def test_packed_payload_is_smaller_than_object_graph(self):
        X, y, _ = _make_data(seed=55)
        gb = GradientBoostingRegressor(n_estimators=30, max_depth=5, random_state=0).fit(X, y)
        packed_blob = pickle.dumps(gb, protocol=pickle.HIGHEST_PROTOCOL)
        object_state = dict(gb.__dict__)
        object_state.pop("_packed", None)
        object_blob = pickle.dumps(object_state, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(packed_blob) < 0.75 * len(object_blob)

    def test_legacy_object_graph_state_still_loads(self):
        X, y, X_new = _make_data(seed=57)
        gb = GradientBoostingRegressor(n_estimators=6, max_depth=3, random_state=0).fit(X, y)
        legacy_state = dict(gb.__dict__)
        legacy_state.pop("_packed", None)
        revived = GradientBoostingRegressor.__new__(GradientBoostingRegressor)
        revived.__setstate__(legacy_state)
        assert np.array_equal(revived.predict(X_new), gb.predict(X_new))

    def test_pack_unpack_helpers_round_trip(self):
        trees, _, X_new = _fit_random_trees(seed=59)
        state = pickle.loads(pickle.dumps(pack_trees_state(trees)))
        packed, rebuilt = unpack_trees_state(state)
        assert np.array_equal(packed.leaf_values(X_new),
                              np.column_stack([t.predict(X_new) for t in trees]))
        for ours, theirs in zip(trees, rebuilt):
            assert np.array_equal(ours.predict(X_new), theirs.predict(X_new))
        with pytest.raises(ValueError, match="version"):
            unpack_trees_state({"version": 999, "packed": packed, "tree_params": []})


class TestServingEdgeCases:
    """Edge cases the online serving path (PR 5) hits: 0-row inputs,
    single-sample batches, and leaf-only (depth-0) trees — all pinned
    bit-identical to the per-tree object path."""

    def test_zero_row_X_through_the_engine(self):
        trees, _, _ = _fit_random_trees(seed=71)
        packed = PackedEnsemble.from_trees(trees)
        X0 = np.empty((0, trees[0].n_features_in_))
        assert packed.apply(X0).shape == (0, len(trees))
        assert packed.leaf_values(X0).shape == (0, len(trees))
        assert packed.leaf_values(X0, tree_major=True).shape == (len(trees), 0)
        assert packed.accumulate(X0, init=1.5, scale=0.1).shape == (0,)

    def test_zero_row_X_rejected_identically_at_the_estimator(self):
        X, y, _ = _make_data(seed=72)
        gb = GradientBoostingRegressor(n_estimators=4, max_depth=3, random_state=0).fit(X, y)
        X0 = np.empty((0, X.shape[1]))
        # The packed-backed predict and the historical per-tree object path
        # share check_array's gate: both refuse an empty matrix, loudly.
        with pytest.raises(ValueError, match="Empty input"):
            gb.predict(X0)
        with pytest.raises(ValueError, match="Empty input"):
            gb.estimators_[0].predict(X0)

    @pytest.mark.parametrize("seed", [73, 74])
    def test_single_sample_batches_match_full_matrix(self, seed):
        """The micro-batching decomposition property at the engine level:
        predicting row i alone is byte-identical to row i of any batch."""
        trees, _, X_new = _fit_random_trees(seed=seed)
        packed = PackedEnsemble.from_trees(trees)
        full_leaves = packed.leaf_values(X_new)
        full_acc = packed.accumulate(X_new, init=2.0, scale=0.05)
        for i in range(len(X_new)):
            row = X_new[i:i + 1]
            assert np.array_equal(packed.leaf_values(row)[0], full_leaves[i])
            assert packed.accumulate(row, init=2.0, scale=0.05)[0] == full_acc[i]

    def test_single_sample_gb_predict_matches_object_path(self):
        X, y, X_new = _make_data(seed=75)
        gb = GradientBoostingRegressor(n_estimators=8, max_depth=3, random_state=0).fit(X, y)
        batch = gb.predict(X_new)
        for i in range(0, len(X_new), 7):
            row = X_new[i:i + 1]
            reference = np.full(1, gb.init_)
            for tree in gb.estimators_:
                reference += gb.learning_rate * tree.predict(row)
            assert gb.predict(row)[0] == reference[0]
            assert gb.predict(row)[0] == batch[i]

    def test_leaf_only_trees_traverse_and_aggregate(self):
        X, y, X_new = _make_data(seed=76)
        # min_samples_split beyond n forbids any split: every member is a
        # single root leaf, the depth-0 extreme of the traversal.
        trees = [
            DecisionTreeRegressor(min_samples_split=10**9, random_state=i).fit(X, y + i)
            for i in range(3)
        ]
        assert all(t.n_nodes_ == 1 for t in trees)
        packed = PackedEnsemble.from_trees(trees)
        assert packed._traversal().max_depth == 0
        assert np.array_equal(
            packed.apply(X_new),
            np.tile(packed.offsets[:-1], (len(X_new), 1)),
        )
        assert np.array_equal(
            packed.leaf_values(X_new),
            np.column_stack([t.predict(X_new) for t in trees]),
        )
        reference = np.full(len(X_new), 0.5)
        for tree in trees:
            reference += 0.1 * tree.predict(X_new)
        assert np.array_equal(packed.accumulate(X_new, init=0.5, scale=0.1), reference)

    def test_mixed_depths_share_one_arena(self):
        """Root-only members riding alongside deep members: the self-looping
        leaves must park finished pairs while deep trees keep routing."""
        deep_trees, X, X_new = _fit_random_trees(seed=77)
        stumps = [DecisionTreeRegressor(min_samples_split=10**9).fit(X, X[:, 0])]
        trees = [deep_trees[0], stumps[0], deep_trees[1]]
        packed = PackedEnsemble.from_trees(trees)
        assert np.array_equal(
            packed.leaf_values(X_new),
            np.column_stack([t.predict(X_new) for t in trees]),
        )

    def test_leaf_only_gb_ensemble_matches_object_path(self):
        X, y, X_new = _make_data(seed=78)
        gb = GradientBoostingRegressor(
            n_estimators=5, min_samples_split=10**9, random_state=0
        ).fit(X, y)
        assert all(t.n_nodes_ == 1 for t in gb.estimators_)
        reference = np.full(len(X_new), gb.init_)
        for tree in gb.estimators_:
            reference += gb.learning_rate * tree.predict(X_new)
        assert np.array_equal(gb.predict(X_new), reference)
