"""Tests for kernel functions and their algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.kernels import (
    RBF,
    ConstantKernel,
    LinearKernel,
    PolynomialKernel,
    RationalQuadratic,
    Sum,
    Product,
    WhiteKernel,
    pairwise_kernel,
)

points = st.tuples(
    st.integers(min_value=2, max_value=12), st.integers(min_value=1, max_value=4)
).flatmap(
    lambda shape: arrays(
        np.float64,
        shape,
        elements=st.floats(min_value=-5, max_value=5, allow_nan=False, allow_infinity=False),
    )
)


class TestRBF:
    def test_diagonal_is_one(self, rng):
        X = rng.normal(size=(10, 3))
        K = RBF(1.0)(X)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_symmetry(self, rng):
        X = rng.normal(size=(8, 2))
        K = RBF(0.7)(X)
        np.testing.assert_allclose(K, K.T)

    def test_decays_with_distance(self):
        X = np.array([[0.0], [1.0], [5.0]])
        K = RBF(1.0)(X)
        assert K[0, 1] > K[0, 2]

    def test_anisotropic_length_scale(self):
        X = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        K = RBF(np.array([0.1, 10.0]))(X)
        # Distance along the short-length-scale axis decays much faster.
        assert K[0, 1] < K[0, 2]

    def test_theta_roundtrip(self):
        k = RBF(np.array([2.0, 3.0]))
        theta = k.theta
        k2 = k.clone_with_theta(theta)
        np.testing.assert_allclose(k2.length_scale, [2.0, 3.0])

    def test_invalid_length_scale(self):
        with pytest.raises(ValueError):
            RBF(0.0)

    @given(points)
    @settings(max_examples=30, deadline=None)
    def test_psd_property(self, X):
        K = RBF(1.0)(X) + 1e-8 * np.eye(X.shape[0])
        eigvals = np.linalg.eigvalsh(K)
        assert np.all(eigvals > -1e-6)


class TestOtherKernels:
    def test_white_kernel_only_diagonal(self, rng):
        X = rng.normal(size=(6, 2))
        K = WhiteKernel(0.5)(X)
        np.testing.assert_allclose(K, 0.5 * np.eye(6))
        K_cross = WhiteKernel(0.5)(X, rng.normal(size=(4, 2)))
        np.testing.assert_allclose(K_cross, 0.0)

    def test_constant_kernel(self, rng):
        X = rng.normal(size=(3, 2))
        np.testing.assert_allclose(ConstantKernel(2.5)(X), 2.5)

    def test_linear_kernel_matches_dot(self, rng):
        X = rng.normal(size=(5, 3))
        np.testing.assert_allclose(LinearKernel()(X), X @ X.T)

    def test_polynomial_kernel_degree_one_is_affine_dot(self, rng):
        X = rng.normal(size=(4, 2))
        K = PolynomialKernel(degree=1, gamma=1.0, coef0=0.0)(X)
        np.testing.assert_allclose(K, X @ X.T)

    def test_rational_quadratic_bounded_by_one(self, rng):
        X = rng.normal(size=(6, 2))
        K = RationalQuadratic(1.0, 1.0)(X)
        assert np.all(K <= 1.0 + 1e-12)
        np.testing.assert_allclose(np.diag(K), 1.0)


class TestKernelAlgebra:
    def test_sum_and_product(self, rng):
        X = rng.normal(size=(5, 2))
        k1, k2 = RBF(1.0), ConstantKernel(2.0)
        np.testing.assert_allclose((k1 + k2)(X), k1(X) + k2(X))
        np.testing.assert_allclose((k1 * k2)(X), k1(X) * k2(X))

    def test_scalar_promotes_to_constant(self, rng):
        X = rng.normal(size=(4, 2))
        k = 2.0 * RBF(1.0)
        assert isinstance(k, Product)
        np.testing.assert_allclose(k(X), 2.0 * RBF(1.0)(X))

    def test_composite_theta_concatenates(self):
        k = ConstantKernel(1.0) * RBF(np.ones(3)) + WhiteKernel(0.1)
        assert len(k.theta) == 1 + 3 + 1
        new_theta = k.theta + 0.5
        k.theta = new_theta
        np.testing.assert_allclose(k.theta, new_theta)

    def test_composite_bounds_shape(self):
        k = ConstantKernel(1.0) * RBF(np.ones(2)) + WhiteKernel(0.1)
        assert k.bounds.shape == (4, 2)

    def test_sum_diag(self, rng):
        X = rng.normal(size=(5, 2))
        k = Sum(RBF(1.0), WhiteKernel(0.3))
        np.testing.assert_allclose(k.diag(X), np.diag(k(X)))


class TestPairwiseKernel:
    def test_rbf_matches_class(self, rng):
        X = rng.normal(size=(6, 2))
        K1 = pairwise_kernel(X, None, "rbf", gamma=0.5)
        K2 = np.exp(-0.5 * np.sum((X[:, None] - X[None]) ** 2, axis=-1))
        np.testing.assert_allclose(K1, K2)

    def test_linear(self, rng):
        X = rng.normal(size=(4, 3))
        np.testing.assert_allclose(pairwise_kernel(X, None, "linear"), X @ X.T)

    def test_unknown_kernel(self, rng):
        with pytest.raises(ValueError):
            pairwise_kernel(rng.normal(size=(3, 2)), None, "bogus")
