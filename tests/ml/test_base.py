"""Tests for the estimator protocol (params, clone, validation helpers)."""

import numpy as np
import pytest

from repro.ml.base import (
    BaseEstimator,
    check_array,
    check_random_state,
    check_X_y,
    clone,
)
from repro.ml.linear import Ridge
from repro.ml.adaboost import AdaBoostRegressor
from repro.ml.tree import DecisionTreeRegressor


class _Toy(BaseEstimator):
    def __init__(self, alpha=1.0, beta="x"):
        self.alpha = alpha
        self.beta = beta


class TestParams:
    def test_get_params_returns_constructor_args(self):
        assert _Toy(alpha=2.0, beta="y").get_params() == {"alpha": 2.0, "beta": "y"}

    def test_set_params_updates_attributes(self):
        toy = _Toy()
        toy.set_params(alpha=5.0)
        assert toy.alpha == 5.0

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="Invalid parameter"):
            _Toy().set_params(gamma=1.0)

    def test_nested_params_roundtrip(self):
        ab = AdaBoostRegressor(estimator=DecisionTreeRegressor(max_depth=2))
        params = ab.get_params(deep=True)
        assert params["estimator__max_depth"] == 2
        ab.set_params(estimator__max_depth=5)
        assert ab.estimator.max_depth == 5

    def test_set_params_returns_self(self):
        toy = _Toy()
        assert toy.set_params(alpha=3.0) is toy


class TestClone:
    def test_clone_copies_params_not_fit_state(self):
        model = Ridge(alpha=0.5)
        model.fit(np.array([[0.0], [1.0], [2.0]]), np.array([0.0, 1.0, 2.0]))
        copy = clone(model)
        assert copy.alpha == 0.5
        assert not hasattr(copy, "coef_")

    def test_clone_nested_estimator(self):
        ab = AdaBoostRegressor(estimator=DecisionTreeRegressor(max_depth=3), n_estimators=7)
        copy = clone(ab)
        assert copy.n_estimators == 7
        assert copy.estimator is not ab.estimator
        assert copy.estimator.max_depth == 3

    def test_clone_rejects_non_estimator(self):
        with pytest.raises(TypeError):
            clone(object())


class TestValidation:
    def test_check_array_rejects_1d(self):
        with pytest.raises(ValueError, match="2D"):
            check_array(np.arange(5.0))

    def test_check_array_rejects_nan(self):
        X = np.ones((3, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            check_array(X)

    def test_check_array_rejects_empty(self):
        with pytest.raises(ValueError):
            check_array(np.empty((0, 3)))

    def test_check_X_y_length_mismatch(self):
        with pytest.raises(ValueError, match="inconsistent"):
            check_X_y(np.ones((4, 2)), np.ones(3))

    def test_check_X_y_flattens_column_target(self):
        X, y = check_X_y(np.ones((3, 2)), np.ones((3, 1)))
        assert y.shape == (3,)

    def test_check_random_state_accepts_int_none_generator(self):
        g1 = check_random_state(3)
        g2 = check_random_state(None)
        g3 = check_random_state(g1)
        assert isinstance(g1, np.random.Generator)
        assert isinstance(g2, np.random.Generator)
        assert g3 is g1

    def test_check_random_state_rejects_garbage(self):
        with pytest.raises(ValueError):
            check_random_state("seed")

    def test_check_is_fitted(self):
        model = Ridge()
        with pytest.raises(RuntimeError, match="not fitted"):
            model.predict(np.ones((2, 2)))
