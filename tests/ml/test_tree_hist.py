"""Contract tests for the histogram-binned split search (``tree_method="hist"``).

The contract (see :mod:`repro.ml.tree`): on matrices whose features each take
at most ``max_bins`` distinct values, every bin boundary is a real value gap,
so the hist builder explores the exact builder's full candidate set and grows
a **bit-identical** tree — same features, thresholds, node numbering, values.
On genuinely continuous features the candidate set is coarser and the two
trees may differ; there the contract is a bounded generalisation-quality gap,
pinned here as an R² tolerance.

One documented carve-out: when two different splits of a node have *exactly*
equal weighted-SSE gains (identical induced partitions), float summation-order
noise may break the tie differently in the two builders — both trees are
equally optimal.  The fixtures below avoid manufactured exact ties, as any
real dataset does with probability one.
"""

import pickle

import numpy as np
import pytest

from repro.ml.gradient_boosting import GradientBoostingRegressor
from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor
from repro.parallel.cache import (
    cache_stats,
    clear_caches,
    compute_feature_bins,
    feature_bins,
)


def assert_trees_identical(a: DecisionTreeRegressor, b: DecisionTreeRegressor) -> None:
    """Node-for-node structural equality (leaf thresholds are NaN == NaN)."""
    assert np.array_equal(a.feature_, b.feature_)
    assert np.array_equal(a.threshold_, b.threshold_, equal_nan=True)
    assert np.array_equal(a.children_left_, b.children_left_)
    assert np.array_equal(a.children_right_, b.children_right_)
    assert np.array_equal(a.value_, b.value_)
    assert np.array_equal(a.n_node_samples_, b.n_node_samples_)


@pytest.fixture(scope="module")
def discretised_data():
    """Features with ~40 distinct values each: the bit-parity regime."""
    rng = np.random.default_rng(42)
    X = rng.integers(0, 40, size=(600, 5)).astype(float)
    y = rng.normal(size=600) + 0.5 * X[:, 0] - 0.2 * X[:, 2]
    w = rng.uniform(0.5, 2.0, size=600)
    return X, y, w


class TestBitParity:
    @pytest.mark.parametrize("depth", [1, 2, 5, None])
    def test_unweighted_tree_bit_identical(self, discretised_data, depth):
        X, y, _ = discretised_data
        exact = DecisionTreeRegressor(max_depth=depth).fit(X, y)
        hist = DecisionTreeRegressor(max_depth=depth, tree_method="hist").fit(X, y)
        assert_trees_identical(exact, hist)

    @pytest.mark.parametrize("depth", [1, 3, 6])
    def test_weighted_tree_bit_identical(self, discretised_data, depth):
        X, y, w = discretised_data
        exact = DecisionTreeRegressor(max_depth=depth).fit(X, y, sample_weight=w)
        hist = DecisionTreeRegressor(max_depth=depth, tree_method="hist").fit(
            X, y, sample_weight=w
        )
        assert_trees_identical(exact, hist)

    def test_min_samples_constraints_bit_identical(self, discretised_data):
        X, y, _ = discretised_data
        kwargs = dict(max_depth=None, min_samples_leaf=7, min_samples_split=20)
        exact = DecisionTreeRegressor(**kwargs).fit(X, y)
        hist = DecisionTreeRegressor(tree_method="hist", **kwargs).fit(X, y)
        assert_trees_identical(exact, hist)

    def test_predictions_bit_identical_off_training_grid(self, discretised_data):
        X, y, _ = discretised_data
        rng = np.random.default_rng(7)
        X_new = rng.uniform(-1.0, 41.0, size=(300, 5))
        exact = DecisionTreeRegressor(max_depth=6).fit(X, y)
        hist = DecisionTreeRegressor(max_depth=6, tree_method="hist").fit(X, y)
        assert np.array_equal(exact.predict(X_new), hist.predict(X_new))


class TestContinuousTolerance:
    def test_r2_gap_bounded_on_continuous_features(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(1500, 4))
        f = lambda M: M[:, 0] ** 2 + np.sin(3.0 * M[:, 1]) + M[:, 2] * M[:, 3]
        y = f(X) + 0.3 * rng.normal(size=len(X))
        X_test = rng.normal(size=(500, 4))
        y_test = f(X_test) + 0.3 * rng.normal(size=len(X_test))

        exact = GradientBoostingRegressor(n_estimators=80, max_depth=6, random_state=0)
        hist = GradientBoostingRegressor(
            n_estimators=80, max_depth=6, random_state=0, tree_method="hist"
        )
        r2_exact = r2_score(y_test, exact.fit(X, y).predict(X_test))
        r2_hist = r2_score(y_test, hist.fit(X, y).predict(X_test))
        assert r2_hist > 0.75
        # The documented tolerance: binning costs at most a few points of R²
        # (it can also *gain* — coarser candidates act as a regulariser).
        assert r2_hist > r2_exact - 0.05

    def test_fewer_bins_degrade_gracefully(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(800, 3))
        y = X[:, 0] + 0.5 * X[:, 1] ** 2 + 0.1 * rng.normal(size=len(X))
        coarse = DecisionTreeRegressor(max_depth=6, tree_method="hist", max_bins=16)
        r2 = r2_score(y, coarse.fit(X, y).predict(X))
        assert r2 > 0.8


class TestGradientBoostingParity:
    def test_gb_bit_identical_on_discretised_data(self, discretised_data):
        X, y, _ = discretised_data
        exact = GradientBoostingRegressor(n_estimators=25, max_depth=4, random_state=0)
        hist = GradientBoostingRegressor(
            n_estimators=25, max_depth=4, random_state=0, tree_method="hist"
        )
        exact.fit(X, y)
        hist.fit(X, y)
        for te, th in zip(exact.estimators_, hist.estimators_):
            assert_trees_identical(te, th)
        assert np.array_equal(exact.predict(X), hist.predict(X))
        assert exact.train_score_ == hist.train_score_

    def test_gb_subsample_bit_identical(self, discretised_data):
        """Subsampled stages run on row subsets of the once-computed codes."""
        X, y, _ = discretised_data
        exact = GradientBoostingRegressor(
            n_estimators=20, max_depth=4, subsample=0.7, random_state=5
        )
        hist = GradientBoostingRegressor(
            n_estimators=20, max_depth=4, subsample=0.7, random_state=5, tree_method="hist"
        )
        exact.fit(X, y)
        hist.fit(X, y)
        for te, th in zip(exact.estimators_, hist.estimators_):
            assert_trees_identical(te, th)
        assert np.array_equal(exact.predict(X), hist.predict(X))

    def test_gb_absolute_loss_bit_identical(self, discretised_data):
        """Leaf re-valuation happens after the build in both engines."""
        X, y, _ = discretised_data
        exact = GradientBoostingRegressor(
            n_estimators=10, max_depth=3, loss="absolute_error", random_state=0
        )
        hist = GradientBoostingRegressor(
            n_estimators=10,
            max_depth=3,
            loss="absolute_error",
            random_state=0,
            tree_method="hist",
        )
        exact.fit(X, y)
        hist.fit(X, y)
        for te, th in zip(exact.estimators_, hist.estimators_):
            assert_trees_identical(te, th)

    def test_captured_train_prediction_matches_predict(self, discretised_data):
        """The build-time leaf capture is ``predict`` on the training matrix."""
        X, y, _ = discretised_data
        tree = DecisionTreeRegressor(max_depth=5, tree_method="hist").fit(
            X, y, capture_train_prediction=True
        )
        assert np.array_equal(tree.train_prediction_, tree.predict(X))

    def test_train_prediction_not_retained_on_fitted_ensemble(self, discretised_data):
        X, y, _ = discretised_data
        hist = GradientBoostingRegressor(
            n_estimators=5, max_depth=3, random_state=0, tree_method="hist"
        ).fit(X, y)
        assert not any(hasattr(t, "train_prediction_") for t in hist.estimators_)

    def test_hist_gb_pickle_round_trip(self, discretised_data):
        """A hist-fitted ensemble survives the packed-arena pickle path."""
        X, y, _ = discretised_data
        model = GradientBoostingRegressor(
            n_estimators=8, max_depth=4, random_state=0, tree_method="hist"
        ).fit(X, y)
        expected = model.predict(X)
        clone = pickle.loads(pickle.dumps(model))
        assert np.array_equal(clone.predict(X), expected)
        assert clone.get_params()["tree_method"] == "hist"


class TestValidation:
    def test_unknown_tree_method_rejected(self, discretised_data):
        X, y, _ = discretised_data
        with pytest.raises(ValueError, match="tree_method"):
            DecisionTreeRegressor(tree_method="approx").fit(X, y)
        with pytest.raises(ValueError, match="tree_method"):
            GradientBoostingRegressor(tree_method="approx").fit(X, y)

    def test_mismatched_bins_shape_rejected(self, discretised_data):
        X, y, _ = discretised_data
        bins = compute_feature_bins(X[:100], 255)
        with pytest.raises(ValueError, match="shape"):
            DecisionTreeRegressor(tree_method="hist").fit(X, y, bins=bins)


class TestFeatureBins:
    def test_codes_cover_every_distinct_value(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 30, size=(200, 3)).astype(float)
        bins = compute_feature_bins(X, 255)
        for f in range(3):
            n_distinct = len(np.unique(X[:, f]))
            assert bins.n_bins[f] == n_distinct
            # Code order must follow value order.
            order = np.argsort(X[:, f], kind="stable")
            assert np.all(np.diff(bins.codes[order, f].astype(int)) >= 0)

    def test_take_subsets_rows(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 2))
        bins = compute_feature_bins(X, 255)
        rows = np.array([4, 9, 30])
        sub = bins.take(rows)
        assert np.array_equal(sub.codes, bins.codes[rows])
        assert np.array_equal(sub.lower, bins.lower)
        assert sub.n_bins is bins.n_bins

    def test_feature_bins_cache_hits_on_same_matrix(self):
        clear_caches()
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 3))
        first = feature_bins(X, 255)
        second = feature_bins(X, 255)
        assert second is first
        stats = cache_stats(include_store=False)["feature_bins"]
        assert stats["hits"] >= 1

    def test_max_bins_respected_on_continuous_data(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(4000, 2))
        bins = compute_feature_bins(X, 64)
        assert bins.codes.max() < 64
        assert bins.n_bins.max() <= 64
