"""Tests for AdaBoost.R2."""

import numpy as np
import pytest

from repro.ml.adaboost import AdaBoostRegressor
from repro.ml.linear import LinearRegression
from repro.ml.tree import DecisionTreeRegressor


class TestAdaBoost:
    def test_fit_quality(self, nonlinear_data):
        X, y = nonlinear_data
        ab = AdaBoostRegressor(n_estimators=40, random_state=0).fit(X, y)
        assert ab.score(X, y) > 0.85

    def test_boosting_beats_single_stump(self, nonlinear_data):
        X, y = nonlinear_data
        stump = DecisionTreeRegressor(max_depth=3).fit(X, y)
        ab = AdaBoostRegressor(
            estimator=DecisionTreeRegressor(max_depth=3), n_estimators=40, random_state=0
        ).fit(X, y)
        assert ab.score(X, y) > stump.score(X, y)

    def test_estimator_weights_positive(self, nonlinear_data):
        X, y = nonlinear_data
        ab = AdaBoostRegressor(n_estimators=20, random_state=0).fit(X, y)
        assert len(ab.estimator_weights_) == len(ab.estimators_)
        assert all(w > 0 for w in ab.estimator_weights_)

    def test_errors_below_half(self, nonlinear_data):
        X, y = nonlinear_data
        ab = AdaBoostRegressor(n_estimators=20, random_state=0).fit(X, y)
        assert all(e < 0.5 for e in ab.estimator_errors_[:-1])

    def test_custom_base_estimator(self, linear_data):
        X, y, _ = linear_data
        ab = AdaBoostRegressor(estimator=LinearRegression(), n_estimators=5, random_state=0).fit(X, y)
        assert ab.score(X, y) > 0.95

    def test_loss_variants(self, nonlinear_data):
        X, y = nonlinear_data
        for loss in ("linear", "square", "exponential"):
            ab = AdaBoostRegressor(n_estimators=10, loss=loss, random_state=0).fit(X, y)
            assert ab.score(X, y) > 0.6

    def test_unknown_loss(self, nonlinear_data):
        X, y = nonlinear_data
        with pytest.raises(ValueError):
            AdaBoostRegressor(n_estimators=2, loss="cubic", random_state=0).fit(X, y)

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            AdaBoostRegressor(n_estimators=0).fit(np.ones((3, 1)), np.ones(3))

    def test_prediction_within_range_of_base_predictions(self, nonlinear_data):
        X, y = nonlinear_data
        ab = AdaBoostRegressor(n_estimators=15, random_state=0).fit(X, y)
        all_preds = np.column_stack([m.predict(X[:40]) for m in ab.estimators_])
        final = ab.predict(X[:40])
        assert np.all(final >= all_preds.min(axis=1) - 1e-9)
        assert np.all(final <= all_preds.max(axis=1) + 1e-9)

    def test_reproducible(self, nonlinear_data):
        X, y = nonlinear_data
        p1 = AdaBoostRegressor(n_estimators=10, random_state=7).fit(X, y).predict(X[:10])
        p2 = AdaBoostRegressor(n_estimators=10, random_state=7).fit(X, y).predict(X[:10])
        np.testing.assert_allclose(p1, p2)
