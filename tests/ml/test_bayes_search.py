"""Tests for Bayesian hyper-parameter search."""

import numpy as np
import pytest

from repro.ml.bayes_search import BayesSearchCV, _SpaceEncoder
from repro.ml.linear import Ridge
from repro.ml.search import GridSearchCV
from repro.ml.tree import DecisionTreeRegressor


class TestSpaceEncoder:
    def test_numeric_encoding_in_unit_interval(self):
        enc = _SpaceEncoder({"depth": [1, 5, 10]})
        X = enc.encode([{"depth": 1}, {"depth": 10}, {"depth": 5}])
        assert X.shape == (3, 1)
        assert X[0, 0] == 0.0 and X[1, 0] == 1.0 and 0.0 < X[2, 0] < 1.0

    def test_log_scaling_for_wide_ranges(self):
        enc = _SpaceEncoder({"alpha": [1e-6, 1e-3, 1.0]})
        X = enc.encode([{"alpha": 1e-6}, {"alpha": 1e-3}, {"alpha": 1.0}])
        # Log scale: the middle point should land near the middle.
        assert X[1, 0] == pytest.approx(0.5, abs=0.01)

    def test_categorical_one_hot(self):
        enc = _SpaceEncoder({"kernel": ["rbf", "poly"]})
        X = enc.encode([{"kernel": "rbf"}, {"kernel": "poly"}])
        assert X.shape == (2, 2)
        np.testing.assert_allclose(X.sum(axis=1), 1.0)


class TestBayesSearchCV:
    def test_respects_n_iter_budget(self, nonlinear_data):
        X, y = nonlinear_data
        search = BayesSearchCV(
            DecisionTreeRegressor(random_state=0),
            {"max_depth": [1, 2, 4, 6, 8, 10], "min_samples_leaf": [1, 2, 4]},
            n_iter=6,
            n_initial_points=3,
            cv=3,
            random_state=0,
        ).fit(X, y)
        assert len(search.cv_results_["params"]) == 6

    def test_finds_configuration_close_to_grid_optimum(self, nonlinear_data):
        X, y = nonlinear_data
        grid = {"max_depth": [1, 2, 4, 6, 8], "min_samples_leaf": [1, 4]}
        gs = GridSearchCV(DecisionTreeRegressor(random_state=0), grid, cv=3).fit(X, y)
        bs = BayesSearchCV(
            DecisionTreeRegressor(random_state=0), grid, n_iter=7, cv=3, random_state=0
        ).fit(X, y)
        assert bs.best_score_ >= gs.best_score_ - 0.05

    def test_small_space_fully_enumerated(self, linear_data):
        X, y, _ = linear_data
        search = BayesSearchCV(Ridge(), {"alpha": [0.1, 1.0]}, n_iter=10, cv=3, random_state=0).fit(X, y)
        assert len(search.cv_results_["params"]) == 2

    def test_refit_and_predict(self, linear_data):
        X, y, _ = linear_data
        search = BayesSearchCV(
            Ridge(), {"alpha": [0.01, 0.1, 1.0, 10.0]}, n_iter=4, cv=3, random_state=0
        ).fit(X, y)
        assert search.predict(X[:7]).shape == (7,)
        assert search.best_score_ > 0.9

    def test_empty_space_rejected(self, linear_data):
        X, y, _ = linear_data
        with pytest.raises(ValueError):
            BayesSearchCV(Ridge(), {"alpha": []}, n_iter=3).fit(X, y)
