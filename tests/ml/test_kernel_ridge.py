"""Tests for kernel ridge regression."""

import numpy as np
import pytest

from repro.ml.kernel_ridge import KernelRidge
from repro.ml.linear import LinearRegression


class TestKernelRidge:
    def test_rbf_fits_nonlinear_function(self, nonlinear_data):
        X, y = nonlinear_data
        kr = KernelRidge(alpha=1e-3, kernel="rbf", gamma=0.5).fit(X, y)
        assert kr.score(X, y) > 0.97

    def test_beats_linear_model_on_nonlinear_data(self, nonlinear_data):
        X, y = nonlinear_data
        lin = LinearRegression().fit(X, y)
        kr = KernelRidge(alpha=1e-2, gamma=0.5).fit(X, y)
        assert kr.score(X, y) > lin.score(X, y)

    def test_large_alpha_shrinks_towards_constant(self, nonlinear_data):
        X, y = nonlinear_data
        kr = KernelRidge(alpha=1e7).fit(X, y)
        preds = kr.predict(X)
        assert np.std(preds) < 0.1 * np.std(y)

    def test_interpolates_with_tiny_alpha(self, rng):
        X = rng.uniform(-1, 1, size=(40, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1]
        kr = KernelRidge(alpha=1e-10, gamma=2.0).fit(X, y)
        np.testing.assert_allclose(kr.predict(X), y, atol=1e-3)

    def test_linear_kernel_close_to_linear_regression(self, linear_data):
        # A linear kernel has no bias term, so compare on centred targets.
        X, y, _ = linear_data
        y_centred = y - y.mean()
        kr = KernelRidge(alpha=1e-6, kernel="linear", standardize=False).fit(X, y_centred)
        lin = LinearRegression(fit_intercept=False).fit(X, y_centred)
        np.testing.assert_allclose(kr.predict(X[:20]), lin.predict(X[:20]), atol=0.05)

    def test_poly_and_laplacian_kernels_run(self, nonlinear_data):
        X, y = nonlinear_data
        for kernel in ("poly", "laplacian"):
            kr = KernelRidge(alpha=1e-2, kernel=kernel).fit(X, y)
            assert kr.score(X, y) > 0.7

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            KernelRidge(alpha=-0.1).fit(np.ones((4, 2)), np.arange(4.0))

    def test_unknown_kernel_rejected(self, nonlinear_data):
        X, y = nonlinear_data
        with pytest.raises(ValueError):
            KernelRidge(kernel="bogus").fit(X, y)

    def test_predict_requires_fit(self):
        with pytest.raises(RuntimeError):
            KernelRidge().predict(np.ones((2, 2)))
