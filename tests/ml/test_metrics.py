"""Tests for regression metrics, including property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.metrics import (
    explained_variance_score,
    max_error,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    median_absolute_error,
    r2_score,
    regression_report,
    root_mean_squared_error,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def paired_arrays(min_size=2, max_size=50):
    return st.integers(min_value=min_size, max_value=max_size).flatmap(
        lambda n: st.tuples(
            arrays(np.float64, n, elements=finite_floats),
            arrays(np.float64, n, elements=finite_floats),
        )
    )


class TestKnownValues:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)
        assert mean_absolute_error(y, y) == 0.0
        assert mean_absolute_percentage_error(y, y) == 0.0
        assert max_error(y, y) == 0.0

    def test_mae_hand_computed(self):
        assert mean_absolute_error([1.0, 2.0, 3.0], [2.0, 2.0, 5.0]) == pytest.approx(1.0)

    def test_mape_hand_computed(self):
        # errors: 0.5/1, 1/4 -> mean = 0.375
        assert mean_absolute_percentage_error([1.0, 4.0], [1.5, 3.0]) == pytest.approx(0.375)

    def test_mse_rmse_consistency(self):
        y_true = [0.0, 0.0, 0.0]
        y_pred = [1.0, 2.0, 2.0]
        assert root_mean_squared_error(y_true, y_pred) == pytest.approx(
            np.sqrt(mean_squared_error(y_true, y_pred))
        )

    def test_r2_of_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert r2_score(y, np.full_like(y, y.mean())) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_median_absolute_error_robust(self):
        y_true = np.zeros(5)
        y_pred = np.array([0.1, 0.1, 0.1, 0.1, 100.0])
        assert median_absolute_error(y_true, y_pred) == pytest.approx(0.1)

    def test_explained_variance_ignores_constant_offset(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert explained_variance_score(y, y + 10.0) == pytest.approx(1.0)
        assert r2_score(y, y + 10.0) < 1.0

    def test_regression_report_keys(self):
        report = regression_report([1.0, 2.0], [1.1, 2.2])
        assert set(report) == {"r2", "mae", "mape", "rmse", "max_error"}


class TestValidation:
    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1.0, 2.0], [1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            r2_score([], [])


class TestProperties:
    @given(paired_arrays())
    @settings(max_examples=50, deadline=None)
    def test_mae_nonnegative_and_bounded_by_max_error(self, pair):
        y_true, y_pred = pair
        mae = mean_absolute_error(y_true, y_pred)
        assert mae >= 0.0
        assert mae <= max_error(y_true, y_pred) + 1e-9

    @given(paired_arrays())
    @settings(max_examples=50, deadline=None)
    def test_rmse_at_least_mae(self, pair):
        y_true, y_pred = pair
        assert root_mean_squared_error(y_true, y_pred) >= mean_absolute_error(y_true, y_pred) - 1e-9

    @given(paired_arrays())
    @settings(max_examples=50, deadline=None)
    def test_r2_never_exceeds_one(self, pair):
        y_true, y_pred = pair
        assert r2_score(y_true, y_pred) <= 1.0 + 1e-12

    @given(paired_arrays(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_mae_scales_linearly(self, pair, scale):
        y_true, y_pred = pair
        base = mean_absolute_error(y_true, y_pred)
        scaled = mean_absolute_error(scale * y_true, scale * y_pred)
        assert scaled == pytest.approx(scale * base, rel=1e-9, abs=1e-9)

    @given(paired_arrays())
    @settings(max_examples=50, deadline=None)
    def test_mape_scale_invariant(self, pair):
        y_true, y_pred = pair
        base = mean_absolute_percentage_error(y_true, y_pred)
        scaled = mean_absolute_percentage_error(3.0 * y_true, 3.0 * y_pred)
        # Scale invariance holds whenever no |y_true| value sits below the eps clamp.
        if np.all(np.abs(y_true) > 1e-6):
            assert scaled == pytest.approx(base, rel=1e-6)
