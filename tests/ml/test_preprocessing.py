"""Tests for scalers and polynomial features."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.preprocessing import MinMaxScaler, PolynomialFeatures, StandardScaler

matrix_strategy = st.tuples(
    st.integers(min_value=3, max_value=30), st.integers(min_value=1, max_value=5)
).flatmap(
    lambda shape: arrays(
        np.float64,
        shape,
        elements=st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
    )
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(5.0, 3.0, size=(100, 4))
        Xt = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Xt.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Xt.std(axis=0), 1.0, atol=1e-10)

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.uniform(-10, 10, size=(50, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-10)

    def test_constant_column_does_not_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Xt = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Xt))
        np.testing.assert_allclose(Xt[:, 0], 0.0)

    def test_feature_count_mismatch(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError, match="features"):
            scaler.transform(rng.normal(size=(10, 2)))

    @given(matrix_strategy)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, X):
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-6)


class TestMinMaxScaler:
    def test_output_in_range(self, rng):
        X = rng.uniform(-5, 17, size=(60, 3))
        Xt = MinMaxScaler().fit_transform(X)
        assert Xt.min() >= -1e-12 and Xt.max() <= 1.0 + 1e-12

    def test_custom_range(self, rng):
        X = rng.uniform(0, 1, size=(40, 2))
        Xt = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(X)
        assert Xt.min() >= -1.0 - 1e-12 and Xt.max() <= 1.0 + 1e-12

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0)).fit(np.ones((3, 1)))

    def test_inverse_roundtrip(self, rng):
        X = rng.normal(size=(30, 4))
        scaler = MinMaxScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-10)


class TestPolynomialFeatures:
    def test_degree_two_columns(self):
        X = np.array([[2.0, 3.0]])
        poly = PolynomialFeatures(degree=2, include_bias=True)
        Xt = poly.fit_transform(X)
        # 1, x0, x1, x0^2, x0*x1, x1^2
        np.testing.assert_allclose(Xt, [[1.0, 2.0, 3.0, 4.0, 6.0, 9.0]])

    def test_no_bias(self):
        Xt = PolynomialFeatures(degree=1, include_bias=False).fit_transform(np.array([[5.0]]))
        np.testing.assert_allclose(Xt, [[5.0]])

    def test_interaction_only_excludes_powers(self):
        X = np.array([[2.0, 3.0]])
        poly = PolynomialFeatures(degree=2, include_bias=False, interaction_only=True)
        Xt = poly.fit_transform(X)
        np.testing.assert_allclose(Xt, [[2.0, 3.0, 6.0]])

    def test_output_feature_count_formula(self):
        from math import comb

        n_features, degree = 4, 3
        poly = PolynomialFeatures(degree=degree, include_bias=True).fit(np.ones((2, n_features)))
        expected = sum(comb(n_features + d - 1, d) for d in range(degree + 1))
        assert poly.n_output_features_ == expected

    def test_feature_names(self):
        poly = PolynomialFeatures(degree=2).fit(np.ones((2, 2)))
        names = poly.get_feature_names_out(["a", "b"])
        assert names == ["1", "a", "b", "a^2", "a b", "b^2"]

    def test_negative_degree_raises(self):
        with pytest.raises(ValueError):
            PolynomialFeatures(degree=-1).fit(np.ones((2, 2)))

    def test_feature_count_mismatch_on_transform(self):
        poly = PolynomialFeatures(degree=2).fit(np.ones((2, 3)))
        with pytest.raises(ValueError):
            poly.transform(np.ones((2, 2)))
