"""Tests for Gaussian process regression."""

import numpy as np
import pytest

from repro.ml.gaussian_process import GaussianProcessRegressor
from repro.ml.kernels import RBF, ConstantKernel, WhiteKernel


class TestGaussianProcess:
    def test_interpolates_noise_free_data(self, rng):
        X = np.linspace(0, 5, 25).reshape(-1, 1)
        y = np.sin(X).ravel()
        gp = GaussianProcessRegressor(
            kernel=ConstantKernel(1.0) * RBF(1.0), alpha=1e-10, optimizer=None
        ).fit(X, y)
        np.testing.assert_allclose(gp.predict(X), y, atol=1e-4)

    def test_predictive_std_small_at_training_points(self, rng):
        X = rng.uniform(0, 5, size=(30, 1))
        y = np.cos(X).ravel()
        gp = GaussianProcessRegressor(alpha=1e-8, random_state=0).fit(X, y)
        _, std_train = gp.predict(X, return_std=True)
        _, std_far = gp.predict(np.array([[25.0]]), return_std=True)
        assert std_train.mean() < std_far[0]

    def test_std_nonnegative(self, nonlinear_data):
        X, y = nonlinear_data
        gp = GaussianProcessRegressor(random_state=0, n_restarts_optimizer=0).fit(X[:120], y[:120])
        _, std = gp.predict(X[120:180], return_std=True)
        assert np.all(std >= 0)

    def test_fit_quality_on_smooth_function(self, nonlinear_data):
        X, y = nonlinear_data
        gp = GaussianProcessRegressor(random_state=0, n_restarts_optimizer=1).fit(X[:200], y[:200])
        assert gp.score(X[200:], y[200:]) > 0.9

    def test_hyperparameter_optimization_improves_lml(self, rng):
        X = rng.uniform(0, 5, size=(40, 1))
        y = np.sin(2 * X).ravel() + rng.normal(0, 0.05, 40)
        kernel = ConstantKernel(1.0) * RBF(5.0) + WhiteKernel(1.0)
        fixed = GaussianProcessRegressor(kernel=kernel, optimizer=None, random_state=0).fit(X, y)
        tuned = GaussianProcessRegressor(kernel=kernel, n_restarts_optimizer=1, random_state=0).fit(X, y)
        assert tuned.log_marginal_likelihood_ >= fixed.log_marginal_likelihood_ - 1e-6

    def test_normalize_y_handles_large_offsets(self, rng):
        X = rng.uniform(0, 1, size=(30, 2))
        y = 1e4 + X[:, 0]
        gp = GaussianProcessRegressor(random_state=0, n_restarts_optimizer=0).fit(X, y)
        preds = gp.predict(X)
        assert abs(preds.mean() - y.mean()) < 1.0

    def test_sample_y_shape_and_spread(self, rng):
        X = rng.uniform(0, 5, size=(15, 1))
        y = np.sin(X).ravel()
        gp = GaussianProcessRegressor(random_state=0, n_restarts_optimizer=0).fit(X, y)
        samples = gp.sample_y(np.array([[1.0], [9.0]]), n_samples=50, random_state=1)
        assert samples.shape == (2, 50)
        # Far from the data the posterior is wider.
        assert samples[1].std() > samples[0].std()

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(alpha=-1.0).fit(np.ones((3, 1)), np.ones(3))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.ones((2, 2)))

    def test_duplicate_points_do_not_crash(self):
        X = np.array([[1.0], [1.0], [2.0], [2.0]])
        y = np.array([1.0, 1.1, 2.0, 2.1])
        gp = GaussianProcessRegressor(alpha=1e-6, random_state=0, n_restarts_optimizer=0).fit(X, y)
        assert np.all(np.isfinite(gp.predict(X)))
