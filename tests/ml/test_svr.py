"""Tests for support vector regression."""

import numpy as np
import pytest

from repro.ml.metrics import mean_absolute_error
from repro.ml.svr import SVR


class TestSVR:
    def test_rbf_fit_quality(self, nonlinear_data):
        X, y = nonlinear_data
        svr = SVR(C=100.0, epsilon=0.05, gamma=0.5).fit(X, y)
        assert svr.score(X, y) > 0.9

    def test_linear_kernel_on_linear_data(self, linear_data):
        X, y, _ = linear_data
        svr = SVR(kernel="linear", C=100.0, epsilon=0.01).fit(X, y)
        assert svr.score(X, y) > 0.98

    def test_poly_kernel_runs(self, nonlinear_data):
        X, y = nonlinear_data
        svr = SVR(kernel="poly", C=10.0, degree=2).fit(X, y)
        assert svr.score(X, y) > 0.6

    def test_large_epsilon_flattens_fit(self, linear_data):
        X, y, _ = linear_data
        tight = SVR(C=10.0, epsilon=0.01).fit(X, y)
        loose = SVR(C=10.0, epsilon=100.0).fit(X, y)
        err_tight = mean_absolute_error(y, tight.predict(X))
        err_loose = mean_absolute_error(y, loose.predict(X))
        assert err_loose > err_tight

    def test_small_C_regularizes(self, nonlinear_data):
        X, y = nonlinear_data
        weak = SVR(C=1e-4, gamma=0.5).fit(X, y)
        strong = SVR(C=100.0, gamma=0.5).fit(X, y)
        assert strong.score(X, y) > weak.score(X, y)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SVR(C=0.0).fit(np.ones((3, 1)), np.ones(3))
        with pytest.raises(ValueError):
            SVR(epsilon=-1.0).fit(np.ones((3, 1)), np.arange(3.0))

    def test_n_support_reported(self, nonlinear_data):
        X, y = nonlinear_data
        svr = SVR(C=10.0, epsilon=0.1).fit(X[:100], y[:100])
        assert 0 < svr.n_support_ <= 100

    def test_predict_requires_fit(self):
        with pytest.raises(RuntimeError):
            SVR().predict(np.ones((2, 2)))

    def test_target_normalization_handles_large_scale(self, rng):
        X = rng.uniform(0, 1, size=(150, 2))
        y = 5000.0 + 1000.0 * X[:, 0]
        svr = SVR(C=100.0, epsilon=0.01, gamma=1.0).fit(X, y)
        assert svr.score(X, y) > 0.9
