"""Shared fixtures: small synthetic regression problems and reduced-size
CCSD datasets so the whole suite runs in a couple of minutes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import CCSDDataset, build_dataset
from repro.simulator.dataset_gen import SweepConfig


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def session_memo_dir(request):
    """A memo-store directory that outlives the pytest session.

    Lives in pytest's own cache (``.pytest_cache``), so warm reruns of
    expensive content-keyed work — the real hyper-parameter searches behind
    ``tests/core/test_hyperopt.py`` — skip straight to the stored results.
    Memo keys embed the full experimental content (grids, cv, seed, data
    bytes), so config edits invalidate naturally; ``pytest --cache-clear``
    forces a cold run, and CI keys its cache of this directory on the
    source tree so code changes never serve stale fits.
    """
    return request.config.cache.mkdir("repro-memo-store")


@pytest.fixture(scope="session")
def linear_data():
    """Linear data with mild noise: easy for every model."""
    rng = np.random.default_rng(0)
    X = rng.uniform(-2.0, 2.0, size=(200, 3))
    coef = np.array([1.5, -2.0, 0.5])
    y = X @ coef + 3.0 + rng.normal(0.0, 0.05, size=200)
    return X, y, coef


@pytest.fixture(scope="session")
def nonlinear_data():
    """Smooth non-linear data used to compare model families."""
    rng = np.random.default_rng(1)
    X = rng.uniform(0.0, 3.0, size=(300, 4))
    y = (
        2.0 * X[:, 0] ** 2
        + np.sin(2.0 * X[:, 1])
        + X[:, 2] * X[:, 3]
        + rng.normal(0.0, 0.1, size=300)
    )
    return X, y


@pytest.fixture(scope="session")
def small_sweep_config() -> SweepConfig:
    """A tiny sweep (3 problem sizes, coarse grids) for fast dataset tests."""
    return SweepConfig(
        machine="aurora",
        problems=[(44, 260), (99, 718), (134, 951)],
        tile_grid=[40, 50, 60, 80, 100, 120, 140],
        node_grid=[5, 10, 20, 30, 40, 60, 80, 120, 160, 240, 320],
        seed=7,
    )


@pytest.fixture(scope="session")
def small_aurora_dataset(small_sweep_config) -> CCSDDataset:
    """A reduced Aurora-like dataset (~100 rows) for model/advisor tests."""
    return build_dataset("aurora", seed=7, config=small_sweep_config)


@pytest.fixture(scope="session")
def fast_estimator_aurora(small_aurora_dataset):
    """One fast-preset GB fit on the small Aurora train split.

    Shared (read-only) by every test that just needs *a* fitted estimator:
    ``ResourceEstimator(preset="fast").fit(X_train, y_train)`` is a pure
    function of the dataset, so refitting it per test file only burns time.
    Tests that exercise the fitting path itself still fit their own.
    """
    from repro.core.estimator import ResourceEstimator

    return ResourceEstimator(preset="fast").fit(
        small_aurora_dataset.X_train, small_aurora_dataset.y_train
    )


@pytest.fixture(scope="session")
def fast_advisor_aurora(small_aurora_dataset):
    """One fast-preset advisor over the small Aurora dataset (read-only)."""
    from repro.core.advisor import ResourceAdvisor

    return ResourceAdvisor.from_dataset(small_aurora_dataset, preset="fast")


@pytest.fixture(scope="session")
def small_frontier_dataset() -> CCSDDataset:
    config = SweepConfig(
        machine="frontier",
        problems=[(49, 663), (116, 840), (134, 1200)],
        tile_grid=[40, 50, 60, 80, 100, 120, 140],
        node_grid=[10, 20, 30, 40, 60, 80, 120, 160, 240, 320],
        seed=11,
    )
    return build_dataset("frontier", seed=11, config=config)
