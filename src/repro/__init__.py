"""repro — ML-guided estimation of computational resources for massively
parallel chemistry (CCSD) computations.

Reproduction of "Guiding Application Users via Estimation of Computational
Resources for Massively Parallel Chemistry Computations" (SC 2025).

Sub-packages
------------
``repro.ml``
    From-scratch NumPy ML stack (the nine regressors, metrics, CV, searches).
``repro.chem``
    CCSD cost model and the paper's problem-size catalogue.
``repro.machines``
    Aurora and Frontier node/system models.
``repro.tamm``
    TAMM-like distributed tensor runtime simulator.
``repro.simulator``
    CCSD-experiment simulation and dataset sweeps (the stand-in for the
    paper's measured Aurora/Frontier runs).
``repro.data``
    Lightweight tabular layer and paper-sized datasets.
``repro.core``
    The paper's framework: runtime estimator, STQ/BQ advisor, evaluation
    protocol, model comparison and active learning.
"""

from repro._version import __version__
from repro.chem import ProblemSize
from repro.core import (
    ActiveLearningConfig,
    ResourceAdvisor,
    ResourceEstimator,
    run_active_learning,
    run_model_comparison,
)
from repro.data import CCSDDataset, build_dataset
from repro.machines import AURORA, FRONTIER, get_machine
from repro.simulator import run_ccsd_iteration
from repro.tamm import TammRuntimeSimulator

__all__ = [
    "__version__",
    "ProblemSize",
    "ResourceEstimator",
    "ResourceAdvisor",
    "ActiveLearningConfig",
    "run_active_learning",
    "run_model_comparison",
    "CCSDDataset",
    "build_dataset",
    "AURORA",
    "FRONTIER",
    "get_machine",
    "run_ccsd_iteration",
    "TammRuntimeSimulator",
]
