"""Registry of the nine regression models the paper evaluates.

Each entry bundles a factory for the estimator with the hyper-parameter grid
used by the three search strategies of Figures 1–2.  Two grid scales are
provided: ``"paper"`` (larger grids, paper-sized ensembles) and ``"fast"``
(reduced grids so the full nine-model × three-search comparison finishes in
minutes on a laptop while preserving the ordering of the results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.ml.adaboost import AdaBoostRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.gaussian_process import GaussianProcessRegressor
from repro.ml.gradient_boosting import GradientBoostingRegressor
from repro.ml.kernel_ridge import KernelRidge
from repro.ml.linear import BayesianRidge, PolynomialRegression
from repro.ml.svr import SVR
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["ModelSpec", "MODEL_ZOO", "model_names", "build_model", "get_model_spec"]


@dataclass(frozen=True)
class ModelSpec:
    """A model family: abbreviation, display name, factory and search grids."""

    key: str
    display_name: str
    factory: Callable[[], Any]
    paper_grid: dict[str, list] = field(default_factory=dict)
    fast_grid: dict[str, list] = field(default_factory=dict)

    def grid(self, scale: str = "fast") -> dict[str, list]:
        if scale == "paper":
            return dict(self.paper_grid)
        if scale == "fast":
            return dict(self.fast_grid)
        raise ValueError(f"Unknown scale {scale!r}; expected 'paper' or 'fast'.")

    def build(self, **params: Any) -> Any:
        model = self.factory()
        if params:
            model.set_params(**params)
        return model


#: The paper's model abbreviations: PR, KR, DT, RF, GB, AB, GP, BR, SVR.
MODEL_ZOO: dict[str, ModelSpec] = {
    "PR": ModelSpec(
        key="PR",
        display_name="Polynomial Regression",
        factory=lambda: PolynomialRegression(),
        paper_grid={"degree": [2, 3, 4, 5], "alpha": [1e-8, 1e-6, 1e-4, 1e-2, 1.0]},
        fast_grid={"degree": [2, 3, 4], "alpha": [1e-6, 1e-2]},
    ),
    "KR": ModelSpec(
        key="KR",
        display_name="Kernel Ridge",
        factory=lambda: KernelRidge(),
        paper_grid={
            "alpha": [1e-4, 1e-3, 1e-2, 1e-1, 1.0],
            "gamma": [0.01, 0.05, 0.1, 0.5, 1.0],
            "kernel": ["rbf", "laplacian"],
        },
        fast_grid={"alpha": [1e-3, 1e-1], "gamma": [0.1, 0.5], "kernel": ["rbf"]},
    ),
    "DT": ModelSpec(
        key="DT",
        display_name="Decision Tree",
        factory=lambda: DecisionTreeRegressor(random_state=0),
        paper_grid={
            "max_depth": [6, 8, 10, 12, 16, None],
            "min_samples_leaf": [1, 2, 4, 8],
        },
        fast_grid={"max_depth": [8, 12, None], "min_samples_leaf": [1, 4]},
    ),
    "RF": ModelSpec(
        key="RF",
        display_name="Random Forest",
        factory=lambda: RandomForestRegressor(random_state=0),
        paper_grid={
            "n_estimators": [100, 250, 500],
            "max_depth": [10, 16, None],
            "max_features": [0.5, 0.75, 1.0],
        },
        fast_grid={"n_estimators": [30, 60], "max_depth": [12, None], "max_features": [1.0]},
    ),
    "GB": ModelSpec(
        key="GB",
        display_name="Gradient Boosting",
        factory=lambda: GradientBoostingRegressor(random_state=0),
        # Stochastic subsampling is essential for GB to reach the paper's
        # top-tier ranking on these datasets: without it, deep boosts overfit
        # the training pool (R^2 ~0.80 vs ~0.91 with subsample=0.7).
        paper_grid={
            "n_estimators": [250, 500, 750],
            "max_depth": [6, 8, 10],
            "learning_rate": [0.05, 0.1, 0.2],
            "subsample": [0.7, 1.0],
        },
        # Bench-scale grid (learning-rate x n_estimators x subsample at a
        # fixed shallow depth): the CV winner (lr=0.05, 400 trees, ss=0.6)
        # reaches R^2 ~0.92 on Aurora / ~0.86 on Frontier, putting GB at the
        # top of both figures as in the paper.
        fast_grid={
            "n_estimators": [200, 400],
            "max_depth": [4],
            "learning_rate": [0.05, 0.1],
            "subsample": [0.6, 1.0],
        },
    ),
    "AB": ModelSpec(
        key="AB",
        display_name="AdaBoost",
        factory=lambda: AdaBoostRegressor(random_state=0),
        paper_grid={
            "n_estimators": [50, 100, 200],
            "learning_rate": [0.5, 1.0],
            "loss": ["linear", "square"],
        },
        fast_grid={"n_estimators": [30, 60], "learning_rate": [1.0], "loss": ["linear"]},
    ),
    "GP": ModelSpec(
        key="GP",
        display_name="Gaussian Process",
        factory=lambda: GaussianProcessRegressor(random_state=0, n_restarts_optimizer=1),
        paper_grid={"alpha": [1e-8, 1e-6, 1e-4, 1e-2], "n_restarts_optimizer": [1, 2]},
        fast_grid={"alpha": [1e-6, 1e-2], "n_restarts_optimizer": [0]},
    ),
    "BR": ModelSpec(
        key="BR",
        display_name="Bayesian Ridge",
        factory=lambda: BayesianRidge(),
        paper_grid={"max_iter": [300], "tol": [1e-3, 1e-4, 1e-6]},
        fast_grid={"max_iter": [300], "tol": [1e-4]},
    ),
    "SVR": ModelSpec(
        key="SVR",
        display_name="Support Vector Regression",
        factory=lambda: SVR(),
        paper_grid={
            "C": [1.0, 10.0, 100.0, 1000.0],
            "epsilon": [0.01, 0.1, 1.0],
            "gamma": [0.05, 0.1, 0.5],
        },
        fast_grid={"C": [10.0, 100.0], "epsilon": [0.1], "gamma": [0.1, 0.5]},
    ),
}


def model_names() -> list[str]:
    """Keys of the nine evaluated models, in the paper's order."""
    return list(MODEL_ZOO)


def get_model_spec(key: str) -> ModelSpec:
    k = key.upper()
    if k not in MODEL_ZOO:
        raise KeyError(f"Unknown model {key!r}. Available: {model_names()}")
    return MODEL_ZOO[k]


def build_model(key: str, **params: Any) -> Any:
    """Instantiate a model from the zoo with optional hyper-parameter overrides."""
    return get_model_spec(key).build(**params)
