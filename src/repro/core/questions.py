"""The two user questions of the paper: Shortest-Time and Budget.

Both are answered the same way (Section 3.3): for a fixed problem size
⟨O, V⟩ the trained runtime model is queried over a sweep of candidate
⟨NumNodes, TileSize⟩ pairs, and the configuration minimising the objective is
returned — wall time for the Shortest-Time Question (STQ), node-hours for the
Budget Question (BQ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro.chem.orbitals import ProblemSize
from repro.machines import get_machine
from repro.simulator.dataset_gen import DEFAULT_TILE_GRID
from repro.tamm.runtime import TammRuntimeSimulator

__all__ = [
    "ConfigurationSpace",
    "QuestionAnswer",
    "answer_shortest_time_question",
    "answer_budget_question",
    "sweep_predictions",
]


@dataclass
class ConfigurationSpace:
    """Candidate ⟨NumNodes, TileSize⟩ pairs swept when answering a question.

    A space can be built directly from explicit grids, or from a machine
    model (:meth:`for_machine`) which restricts node counts to the
    memory-feasible, sensibly-sized allocations for each problem — the same
    "range of typical interest" the paper sweeps.
    """

    node_grid: Sequence[int]
    tile_grid: Sequence[int] = field(default_factory=lambda: list(DEFAULT_TILE_GRID))
    machine: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.node_grid) == 0:
            raise ValueError("node_grid must not be empty.")
        if len(self.tile_grid) == 0:
            raise ValueError("tile_grid must not be empty.")

    @classmethod
    def for_machine(
        cls,
        machine: str,
        n_occupied: int,
        n_virtual: int,
        *,
        tile_grid: Iterable[int] = DEFAULT_TILE_GRID,
        node_grid: Optional[Iterable[int]] = None,
    ) -> "ConfigurationSpace":
        """Build the feasible configuration space of a problem on a machine."""
        spec = get_machine(machine)
        simulator = TammRuntimeSimulator(spec)
        problem = ProblemSize(n_occupied, n_virtual)
        nodes = simulator.node_range(problem, candidate_nodes=node_grid)
        tiles = [t for t in tile_grid if simulator.is_feasible(problem, nodes[0], int(t))]
        if not tiles:
            tiles = [min(tile_grid)]
        return cls(node_grid=nodes, tile_grid=list(tiles), machine=spec.name)

    @classmethod
    def from_observations(
        cls, nodes: Iterable[int], tiles: Iterable[int], machine: Optional[str] = None
    ) -> "ConfigurationSpace":
        """Build a space from node/tile values observed in a dataset."""
        return cls(
            node_grid=sorted({int(n) for n in nodes}),
            tile_grid=sorted({int(t) for t in tiles}),
            machine=machine,
        )

    def grid(self) -> np.ndarray:
        """All (nodes, tile) combinations, shape ``(n_configs, 2)``."""
        nodes, tiles = np.meshgrid(
            np.asarray(self.node_grid, dtype=np.int64),
            np.asarray(self.tile_grid, dtype=np.int64),
            indexing="ij",
        )
        return np.column_stack([nodes.ravel(), tiles.ravel()])

    @property
    def n_configurations(self) -> int:
        return len(self.node_grid) * len(self.tile_grid)


@dataclass(frozen=True)
class QuestionAnswer:
    """Recommended configuration for a user question."""

    question: str
    n_occupied: int
    n_virtual: int
    n_nodes: int
    tile_size: int
    predicted_runtime_s: float
    predicted_node_hours: float
    objective_value: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "question": self.question,
            "n_occupied": self.n_occupied,
            "n_virtual": self.n_virtual,
            "n_nodes": self.n_nodes,
            "tile_size": self.tile_size,
            "predicted_runtime_s": self.predicted_runtime_s,
            "predicted_node_hours": self.predicted_node_hours,
            "objective_value": self.objective_value,
        }


def sweep_predictions(
    estimator: Any,
    n_occupied: int,
    n_virtual: int,
    space: ConfigurationSpace,
) -> dict[str, np.ndarray]:
    """Query the runtime model over every configuration in ``space``.

    Returns arrays ``nodes``, ``tiles``, ``runtime_s`` and ``node_hours`` of
    length ``space.n_configurations``.
    """
    grid = space.grid()
    X = np.column_stack(
        [
            np.full(grid.shape[0], float(n_occupied)),
            np.full(grid.shape[0], float(n_virtual)),
            grid[:, 0].astype(np.float64),
            grid[:, 1].astype(np.float64),
        ]
    )
    runtimes = np.asarray(estimator.predict(X), dtype=np.float64)
    node_hours = runtimes * grid[:, 0] / 3600.0
    return {
        "nodes": grid[:, 0],
        "tiles": grid[:, 1],
        "runtime_s": runtimes,
        "node_hours": node_hours,
    }


def _answer(
    estimator: Any,
    n_occupied: int,
    n_virtual: int,
    space: ConfigurationSpace,
    objective: str,
) -> QuestionAnswer:
    sweep = sweep_predictions(estimator, n_occupied, n_virtual, space)
    if objective == "runtime":
        values = sweep["runtime_s"]
        question = "shortest_time"
    elif objective == "node_hours":
        values = sweep["node_hours"]
        question = "budget"
    else:  # pragma: no cover - guarded by public wrappers
        raise ValueError(f"Unknown objective {objective!r}.")
    best = int(np.argmin(values))
    return QuestionAnswer(
        question=question,
        n_occupied=int(n_occupied),
        n_virtual=int(n_virtual),
        n_nodes=int(sweep["nodes"][best]),
        tile_size=int(sweep["tiles"][best]),
        predicted_runtime_s=float(sweep["runtime_s"][best]),
        predicted_node_hours=float(sweep["node_hours"][best]),
        objective_value=float(values[best]),
    )


def answer_shortest_time_question(
    estimator: Any, n_occupied: int, n_virtual: int, space: ConfigurationSpace
) -> QuestionAnswer:
    """STQ: which ⟨nodes, tile⟩ minimises predicted wall time for ⟨O, V⟩?"""
    return _answer(estimator, n_occupied, n_virtual, space, "runtime")


def answer_budget_question(
    estimator: Any, n_occupied: int, n_virtual: int, space: ConfigurationSpace
) -> QuestionAnswer:
    """BQ: which ⟨nodes, tile⟩ minimises predicted node-hours for ⟨O, V⟩?"""
    return _answer(estimator, n_occupied, n_virtual, space, "node_hours")
