"""User-facing advisor combining the runtime model with the question solvers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

import numpy as np

from repro.core.estimator import ResourceEstimator
from repro.core.questions import (
    ConfigurationSpace,
    QuestionAnswer,
    answer_budget_question,
    answer_shortest_time_question,
    sweep_predictions,
)
from repro.data.datasets import CCSDDataset
from repro.data.table import Table

__all__ = ["ResourceAdvisor"]


@dataclass
class ResourceAdvisor:
    """Answer user resource questions for a target machine.

    Typical usage::

        dataset = build_dataset("aurora")
        advisor = ResourceAdvisor.from_dataset(dataset)
        answer = advisor.shortest_time(99, 718)
        print(answer.n_nodes, answer.tile_size, answer.predicted_runtime_s)

    The advisor keeps the trained :class:`ResourceEstimator` and the machine
    name so configuration spaces can be derived per problem size.
    """

    estimator: ResourceEstimator
    machine: Optional[str] = None
    default_space: Optional[ConfigurationSpace] = None

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_dataset(
        cls,
        dataset: CCSDDataset,
        *,
        estimator: Optional[ResourceEstimator] = None,
        preset: str = "fast",
    ) -> "ResourceAdvisor":
        """Train an advisor on a dataset's training split."""
        est = estimator if estimator is not None else ResourceEstimator(preset=preset)
        est.fit(dataset.X_train, dataset.y_train)
        space = ConfigurationSpace.from_observations(
            dataset.table["n_nodes"], dataset.table["tile_size"], machine=dataset.machine
        )
        return cls(estimator=est, machine=dataset.machine, default_space=space)

    # ------------------------------------------------------------------ spaces
    def space_for(self, n_occupied: int, n_virtual: int) -> ConfigurationSpace:
        """Configuration space used for a problem size.

        When a machine is known the space is restricted to feasible,
        typically-sized allocations for that problem; otherwise the advisor
        falls back to the node/tile values observed in its training data.
        """
        if self.machine is not None:
            return ConfigurationSpace.for_machine(self.machine, n_occupied, n_virtual)
        if self.default_space is not None:
            return self.default_space
        raise ValueError("Advisor has neither a machine nor a default configuration space.")

    # ------------------------------------------------------------------ questions
    def shortest_time(
        self, n_occupied: int, n_virtual: int, space: Optional[ConfigurationSpace] = None
    ) -> QuestionAnswer:
        """Answer the Shortest-Time Question for a problem size."""
        space = space if space is not None else self.space_for(n_occupied, n_virtual)
        return answer_shortest_time_question(self.estimator, n_occupied, n_virtual, space)

    def budget(
        self, n_occupied: int, n_virtual: int, space: Optional[ConfigurationSpace] = None
    ) -> QuestionAnswer:
        """Answer the Budget Question for a problem size."""
        space = space if space is not None else self.space_for(n_occupied, n_virtual)
        return answer_budget_question(self.estimator, n_occupied, n_virtual, space)

    def answer(self, question: str, n_occupied: int, n_virtual: int, **kwargs: Any) -> QuestionAnswer:
        """Dispatch on a question name: ``"stq"``/``"shortest_time"`` or ``"bq"``/``"budget"``."""
        key = question.lower()
        if key in ("stq", "shortest_time", "shortest-time"):
            return self.shortest_time(n_occupied, n_virtual, **kwargs)
        if key in ("bq", "budget", "cheapest", "cheapest-run"):
            return self.budget(n_occupied, n_virtual, **kwargs)
        raise ValueError(f"Unknown question {question!r}; expected 'stq' or 'bq'.")

    # ------------------------------------------------------------------ rankings
    def ranked_configurations(
        self,
        n_occupied: int,
        n_virtual: int,
        *,
        objective: str = "runtime",
        top_k: Optional[int] = 10,
        space: Optional[ConfigurationSpace] = None,
    ) -> Table:
        """Full sweep as a table sorted by the chosen objective (best first)."""
        space = space if space is not None else self.space_for(n_occupied, n_virtual)
        sweep = sweep_predictions(self.estimator, n_occupied, n_virtual, space)
        objective_values = sweep["runtime_s"] if objective == "runtime" else sweep["node_hours"]
        order = np.argsort(objective_values, kind="stable")
        if top_k is not None:
            order = order[:top_k]
        return Table(
            {
                "n_nodes": sweep["nodes"][order],
                "tile_size": sweep["tiles"][order],
                "predicted_runtime_s": sweep["runtime_s"][order],
                "predicted_node_hours": sweep["node_hours"][order],
            }
        )

    def answers_for_problems(
        self, problems: Iterable[tuple[int, int]], question: str = "stq"
    ) -> list[QuestionAnswer]:
        """Answer the same question for a batch of problem sizes (Tables 3–6)."""
        return [self.answer(question, int(o), int(v)) for o, v in problems]
