"""The paper's evaluation protocol for STQ/BQ predictions (Tables 3–6).

Section 3.4 stresses a subtle point: when evaluating a model's answer to the
Shortest-Time or Budget question, the loss must be computed from the *true*
runtime (or node-hours) of the configuration the model recommended, not from
the model's own predicted value for it — the model could otherwise grade its
own homework.  The helpers here implement exactly that protocol:

1. group the test set by problem size ⟨O, V⟩;
2. for every problem size, find the configuration with the best *true*
   objective (the per-problem optimum the user would have found by exhaustive
   experimentation) and the configuration with the best *predicted* objective
   (the model's recommendation);
3. score the recommendation with the *true* objective value of the
   recommended configuration;
4. aggregate R²/MAE/MAPE over problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.ml.metrics import (
    mean_absolute_error,
    mean_absolute_percentage_error,
    r2_score,
)

__all__ = [
    "OptimalConfigRecord",
    "optimal_configurations",
    "evaluate_question_predictions",
    "question_loss_report",
]


@dataclass(frozen=True)
class OptimalConfigRecord:
    """Per-problem-size optimum: true best vs model recommendation."""

    n_occupied: int
    n_virtual: int
    true_nodes: int
    true_tile: int
    true_runtime_s: float
    true_node_hours: float
    predicted_nodes: int
    predicted_tile: int
    predicted_config_runtime_s: float
    predicted_config_node_hours: float
    model_predicted_objective: float

    @property
    def configuration_correct(self) -> bool:
        """Did the model recommend exactly the true optimal configuration?"""
        return self.true_nodes == self.predicted_nodes and self.true_tile == self.predicted_tile

    def true_objective(self, objective: str) -> float:
        return self.true_runtime_s if objective == "runtime" else self.true_node_hours

    def achieved_objective(self, objective: str) -> float:
        """True objective value of the configuration the model recommended."""
        return (
            self.predicted_config_runtime_s
            if objective == "runtime"
            else self.predicted_config_node_hours
        )


def _objective_values(runtimes: np.ndarray, nodes: np.ndarray, objective: str) -> np.ndarray:
    if objective == "runtime":
        return runtimes
    if objective == "node_hours":
        return runtimes * nodes / 3600.0
    raise ValueError(f"Unknown objective {objective!r}; expected 'runtime' or 'node_hours'.")


def optimal_configurations(
    X: np.ndarray,
    y_true: np.ndarray,
    y_pred: Optional[np.ndarray] = None,
    objective: str = "runtime",
) -> list[OptimalConfigRecord]:
    """Per-(O, V) true optima and (optionally) model-recommended configurations.

    Parameters
    ----------
    X:
        Feature matrix with columns ⟨O, V, nodes, tile⟩ (the evaluation pool,
        typically the test split).
    y_true:
        True runtimes of every row.
    y_pred:
        Model-predicted runtimes of every row; when omitted the "recommended"
        configuration is simply the true optimum (useful for building the
        ground-truth side of Tables 3–6).
    objective:
        ``"runtime"`` (STQ) or ``"node_hours"`` (BQ).
    """
    X = np.asarray(X, dtype=np.float64)
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    if y_pred is None:
        y_pred = y_true
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if X.shape[0] != y_true.shape[0] or X.shape[0] != y_pred.shape[0]:
        raise ValueError("X, y_true and y_pred must have the same number of rows.")

    nodes = X[:, 2]
    true_obj = _objective_values(y_true, nodes, objective)
    pred_obj = _objective_values(y_pred, nodes, objective)

    records: list[OptimalConfigRecord] = []
    problems = np.unique(X[:, :2], axis=0)
    for o, v in problems:
        mask = (X[:, 0] == o) & (X[:, 1] == v)
        idx = np.flatnonzero(mask)
        best_true = idx[int(np.argmin(true_obj[idx]))]
        best_pred = idx[int(np.argmin(pred_obj[idx]))]
        records.append(
            OptimalConfigRecord(
                n_occupied=int(o),
                n_virtual=int(v),
                true_nodes=int(X[best_true, 2]),
                true_tile=int(X[best_true, 3]),
                true_runtime_s=float(y_true[best_true]),
                true_node_hours=float(y_true[best_true] * X[best_true, 2] / 3600.0),
                predicted_nodes=int(X[best_pred, 2]),
                predicted_tile=int(X[best_pred, 3]),
                predicted_config_runtime_s=float(y_true[best_pred]),
                predicted_config_node_hours=float(y_true[best_pred] * X[best_pred, 2] / 3600.0),
                model_predicted_objective=float(pred_obj[best_pred]),
            )
        )
    return records


def evaluate_question_predictions(
    records: list[OptimalConfigRecord], objective: str = "runtime"
) -> dict[str, float]:
    """Aggregate the paper's metrics over per-problem optimum records.

    The "prediction" scored here is the true objective value achieved by the
    recommended configuration, compared against the true per-problem optimum.
    """
    if not records:
        raise ValueError("No records to evaluate.")
    y_true = np.asarray([r.true_objective(objective) for r in records])
    y_achieved = np.asarray([r.achieved_objective(objective) for r in records])
    n_wrong = sum(0 if r.configuration_correct else 1 for r in records)
    return {
        "r2": r2_score(y_true, y_achieved),
        "mae": mean_absolute_error(y_true, y_achieved),
        "mape": mean_absolute_percentage_error(y_true, y_achieved),
        "n_problems": float(len(records)),
        "n_incorrect_configs": float(n_wrong),
    }


def question_loss_report(
    X: np.ndarray,
    y_true: np.ndarray,
    y_pred: np.ndarray,
    objective: str = "runtime",
) -> dict[str, float]:
    """One-call version: records + aggregation for a question objective."""
    records = optimal_configurations(X, y_true, y_pred, objective=objective)
    return evaluate_question_predictions(records, objective=objective)
