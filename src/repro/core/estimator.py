"""Runtime-prediction model for CCSD iterations.

The estimator maps the paper's feature vector ⟨O, V, NumNodes, TileSize⟩ to
the wall time of one CCSD iteration.  By default it wraps the Gradient
Boosting configuration the paper deploys (750 tree estimators, maximum depth
10); a ``preset="fast"`` configuration is provided for tests and reduced-scale
benchmarks.  Optional physics-informed derived features (the ``O^2 V^4``
work estimate per node, total orbitals, ...) can be appended, which is the
feature-set ablation discussed in DESIGN.md.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.data.datasets import CCSDDataset, FEATURE_COLUMNS
from repro.ml.base import BaseEstimator, RegressorMixin, check_array, clone
from repro.ml.gradient_boosting import GradientBoostingRegressor
from repro.ml.metrics import regression_report

__all__ = ["ResourceEstimator", "PAPER_GB_PARAMS", "FAST_GB_PARAMS"]

#: Hyper-parameters the paper settles on after optimisation (Section 4.2).
PAPER_GB_PARAMS: dict[str, Any] = {"n_estimators": 750, "max_depth": 10}
#: Reduced configuration for quick tests and laptop-scale benchmarks.
FAST_GB_PARAMS: dict[str, Any] = {"n_estimators": 150, "max_depth": 8}

_DERIVED_FEATURE_NAMES: tuple[str, ...] = (
    "o2v4_per_node",
    "total_orbitals",
    "tiles_per_dimension",
    "work_per_worker",
)


class ResourceEstimator(BaseEstimator, RegressorMixin):
    """Predict CCSD iteration wall time from runtime parameters.

    Parameters
    ----------
    model:
        Any regressor following the :mod:`repro.ml` protocol; defaults to the
        paper's Gradient Boosting configuration (or the fast preset).
    preset:
        ``"paper"`` or ``"fast"`` — selects the default GB hyper-parameters
        when ``model`` is not given.
    derived_features:
        Append physics-informed features (O²V⁴/nodes, N, V/tile, ...) to the
        raw ⟨O, V, nodes, tile⟩ vector before fitting.
    log_target:
        Fit the model on ``log(runtime)``; useful because runtimes span two
        orders of magnitude.
    """

    def __init__(
        self,
        model: Any = None,
        preset: str = "paper",
        derived_features: bool = False,
        log_target: bool = False,
        random_state: Any = 0,
    ) -> None:
        self.model = model
        self.preset = preset
        self.derived_features = derived_features
        self.log_target = log_target
        self.random_state = random_state

    # ------------------------------------------------------------------ features
    def _build_model(self) -> Any:
        if self.model is not None:
            return clone(self.model)
        if self.preset == "paper":
            params = PAPER_GB_PARAMS
        elif self.preset == "fast":
            params = FAST_GB_PARAMS
        else:
            raise ValueError(f"Unknown preset {self.preset!r}; expected 'paper' or 'fast'.")
        return GradientBoostingRegressor(random_state=self.random_state, **params)

    def _augment(self, X: np.ndarray) -> np.ndarray:
        if not self.derived_features:
            return X
        O, V, nodes, tile = X[:, 0], X[:, 1], X[:, 2], X[:, 3]
        o2v4_per_node = (O**2) * (V**4) / np.maximum(nodes, 1.0)
        total_orbitals = O + V
        tiles_per_dimension = np.maximum(V, 1.0) / np.maximum(tile, 1.0)
        work_per_worker = o2v4_per_node / np.maximum(tile, 1.0) ** 2
        return np.column_stack(
            [X, o2v4_per_node, total_orbitals, tiles_per_dimension, work_per_worker]
        )

    @property
    def feature_names_(self) -> list[str]:
        names = list(FEATURE_COLUMNS)
        if self.derived_features:
            names.extend(_DERIVED_FEATURE_NAMES)
        return names

    # ------------------------------------------------------------------ fitting
    def fit(self, X: Any, y: Any = None) -> "ResourceEstimator":
        """Fit from a feature matrix + target, or directly from a dataset.

        ``fit(dataset)`` uses the dataset's training split.
        """
        if isinstance(X, CCSDDataset):
            dataset = X
            X, y = dataset.X_train, dataset.y_train
        if y is None:
            raise ValueError("y is required unless fitting from a CCSDDataset.")
        X = check_array(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if np.any(y <= 0) and self.log_target:
            raise ValueError("log_target requires strictly positive runtimes.")
        target = np.log(y) if self.log_target else y
        self.model_ = self._build_model()
        self.model_.fit(self._augment(X), target)
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X: Any) -> np.ndarray:
        """Predict wall times (seconds) for rows of ⟨O, V, nodes, tile⟩."""
        self._check_is_fitted()
        X = check_array(np.asarray(X, dtype=np.float64))
        pred = self.model_.predict(self._augment(X))
        return np.exp(pred) if self.log_target else pred

    # ------------------------------------------------------------------ helpers
    def predict_runtime(
        self,
        n_occupied: int,
        n_virtual: int,
        n_nodes: int | Sequence[int] | np.ndarray,
        tile_size: int | Sequence[int] | np.ndarray,
    ) -> np.ndarray:
        """Predict runtimes for one problem size over (vectors of) configs."""
        nodes = np.atleast_1d(np.asarray(n_nodes, dtype=np.float64))
        tiles = np.atleast_1d(np.asarray(tile_size, dtype=np.float64))
        if nodes.shape != tiles.shape:
            nodes, tiles = np.broadcast_arrays(nodes, tiles)
        X = np.column_stack(
            [
                np.full(nodes.size, float(n_occupied)),
                np.full(nodes.size, float(n_virtual)),
                nodes.ravel(),
                tiles.ravel(),
            ]
        )
        return self.predict(X)

    def predict_node_hours(
        self,
        n_occupied: int,
        n_virtual: int,
        n_nodes: int | Sequence[int] | np.ndarray,
        tile_size: int | Sequence[int] | np.ndarray,
    ) -> np.ndarray:
        """Predicted node-hours (the budget-question objective)."""
        nodes = np.atleast_1d(np.asarray(n_nodes, dtype=np.float64))
        runtimes = self.predict_runtime(n_occupied, n_virtual, n_nodes, tile_size)
        nodes_b = np.broadcast_to(nodes, runtimes.shape) if nodes.size != runtimes.size else nodes
        return runtimes * nodes_b / 3600.0

    def evaluate(self, X: Any, y: Any) -> dict[str, float]:
        """R²/MAE/MAPE/RMSE report on held-out data."""
        return regression_report(np.asarray(y, dtype=float).ravel(), self.predict(X))

    def evaluate_on(self, dataset: CCSDDataset) -> dict[str, float]:
        """Evaluate on a dataset's test split."""
        return self.evaluate(dataset.X_test, dataset.y_test)
