"""Active learning for the data-scarce scenario (Algorithms 1 and 2).

When a user targets a new machine (or application) with little historical
data, running experiments just to train a predictor is expensive.  The paper
evaluates three query strategies that decide which configurations to run
next:

* **Random sampling (RS)** — the baseline: label a random batch each round.
* **Uncertainty sampling (US, Algorithm 1)** — fit a Gaussian Process on the
  labelled set and label the configurations with the largest predictive
  standard deviation.
* **Query by committee (QC, Algorithm 2)** — fit a committee of Gradient
  Boosting models and label the configurations where the committee's
  predictions disagree the most.

Each round the paper records R²/MAPE/MAE of the current model over the full
training pool and — when the goal is STQ or BQ — the question-level losses
computed with the paper's true-runtime-of-predicted-configuration protocol
(:mod:`repro.core.evaluation`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.evaluation import question_loss_report
from repro.ml.base import check_random_state, clone
from repro.ml.gaussian_process import GaussianProcessRegressor
from repro.ml.gradient_boosting import GradientBoostingRegressor
from repro.ml.packed import committee_predictions
from repro.parallel.backend import parallel_map
from repro.ml.metrics import (
    mean_absolute_error,
    mean_absolute_percentage_error,
    r2_score,
)

__all__ = [
    "ActiveLearningConfig",
    "ActiveLearningResult",
    "QueryStrategy",
    "RandomSampling",
    "UncertaintySampling",
    "QueryByCommittee",
    "run_active_learning",
]


# --------------------------------------------------------------------------- config
@dataclass
class ActiveLearningConfig:
    """Campaign parameters (defaults follow Algorithms 1 and 2)."""

    n_initial: int = 50
    query_size: int = 50
    n_queries: int = 20
    random_state: Any = 0
    #: Goal of the campaign: ``None`` (plain runtime regression), ``"stq"``
    #: or ``"bq"`` — the latter two additionally track question-level losses.
    goal: Optional[str] = None
    #: Worker processes for strategies with parallelisable fits (the
    #: query-by-committee member fits); results are seed-identical to serial.
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.n_initial < 1:
            raise ValueError("n_initial must be at least 1.")
        if self.query_size < 1:
            raise ValueError("query_size must be at least 1.")
        if self.n_queries < 1:
            raise ValueError("n_queries must be at least 1.")
        if self.goal is not None and self.goal not in ("stq", "bq"):
            raise ValueError("goal must be None, 'stq' or 'bq'.")


@dataclass
class ActiveLearningResult:
    """Learning curves of one campaign."""

    strategy: str
    goal: Optional[str]
    known_sizes: list[int] = field(default_factory=list)
    r2: list[float] = field(default_factory=list)
    mae: list[float] = field(default_factory=list)
    mape: list[float] = field(default_factory=list)
    goal_r2: list[float] = field(default_factory=list)
    goal_mae: list[float] = field(default_factory=list)
    goal_mape: list[float] = field(default_factory=list)

    def final_metrics(self) -> dict[str, float]:
        out = {
            "known_size": float(self.known_sizes[-1]),
            "r2": self.r2[-1],
            "mae": self.mae[-1],
            "mape": self.mape[-1],
        }
        if self.goal is not None and self.goal_r2:
            out.update(
                {
                    "goal_r2": self.goal_r2[-1],
                    "goal_mae": self.goal_mae[-1],
                    "goal_mape": self.goal_mape[-1],
                }
            )
        return out

    def samples_to_reach_mape(self, threshold: float, use_goal: bool = False) -> Optional[int]:
        """Smallest known-data size at which MAPE drops below ``threshold``.

        This is how the paper states its key active-learning observations
        ("a MAPE of about 0.2 is achievable with around 450 experiments").
        Returns ``None`` if the threshold is never reached.
        """
        curve = self.goal_mape if use_goal else self.mape
        for size, value in zip(self.known_sizes, curve):
            if value <= threshold:
                return int(size)
        return None


# --------------------------------------------------------------------------- strategies
def _fit_committee_member(task: tuple) -> Any:
    """Fit one (pre-seeded) committee member; module-level so it pickles."""
    member, X_labeled, y_labeled = task
    return member.fit(X_labeled, y_labeled)


class QueryStrategy:
    """Interface: pick which unlabelled configurations to run next."""

    name = "base"

    def fit_model(self, X_labeled: np.ndarray, y_labeled: np.ndarray, rng: np.random.Generator) -> Any:
        """Fit and return the model used for evaluation this round."""
        raise NotImplementedError

    def select(
        self,
        model: Any,
        X_labeled: np.ndarray,
        y_labeled: np.ndarray,
        X_unlabeled: np.ndarray,
        query_size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return indices (into ``X_unlabeled``) of the next batch to label."""
        raise NotImplementedError


class RandomSampling(QueryStrategy):
    """Baseline: label a uniformly random batch each round.

    Evaluated with the same Gradient Boosting configuration as a
    query-by-committee member so the comparison isolates the *query strategy*
    rather than the model capacity.
    """

    name = "RS"

    def __init__(self, model: Any = None) -> None:
        self.model = model if model is not None else GradientBoostingRegressor(
            n_estimators=80, max_depth=6, subsample=0.8, random_state=0
        )

    def fit_model(self, X_labeled: np.ndarray, y_labeled: np.ndarray, rng: np.random.Generator) -> Any:
        model = clone(self.model)
        if hasattr(model, "random_state"):
            model.set_params(random_state=int(rng.integers(0, 2**31 - 1)))
        return model.fit(X_labeled, y_labeled)

    def select(self, model, X_labeled, y_labeled, X_unlabeled, query_size, rng) -> np.ndarray:
        n = X_unlabeled.shape[0]
        return rng.choice(n, size=min(query_size, n), replace=False)


class UncertaintySampling(QueryStrategy):
    """Algorithm 1: Gaussian-Process uncertainty sampling.

    The GP's kernel hyper-parameters are re-optimised every
    ``reoptimize_every`` rounds and reused in between, which keeps the
    campaign tractable without changing which points get selected in any
    meaningful way.
    """

    name = "US"

    def __init__(self, model: Optional[GaussianProcessRegressor] = None, reoptimize_every: int = 5) -> None:
        if model is None:
            # Anisotropic (ARD) RBF: orbital counts, node counts and tile sizes
            # influence the runtime on very different scales.
            from repro.ml.kernels import RBF, ConstantKernel, WhiteKernel

            kernel = ConstantKernel(1.0) * RBF(np.ones(4)) + WhiteKernel(1e-2)
            model = GaussianProcessRegressor(kernel=kernel, n_restarts_optimizer=1, random_state=0)
        self.model = model
        self.reoptimize_every = max(1, reoptimize_every)
        self._round = 0
        self._kernel = None

    def fit_model(self, X_labeled: np.ndarray, y_labeled: np.ndarray, rng: np.random.Generator) -> Any:
        model = clone(self.model)
        if self._kernel is not None and (self._round % self.reoptimize_every) != 0:
            model.set_params(kernel=self._kernel, optimizer=None)
        model.set_params(random_state=int(rng.integers(0, 2**31 - 1)))
        model.fit(X_labeled, y_labeled)
        self._kernel = model.kernel_
        self._round += 1
        return model

    def select(self, model, X_labeled, y_labeled, X_unlabeled, query_size, rng) -> np.ndarray:
        _, std = model.predict(X_unlabeled, return_std=True)
        query_size = min(query_size, X_unlabeled.shape[0])
        return np.argsort(-std, kind="stable")[:query_size]


class QueryByCommittee(QueryStrategy):
    """Algorithm 2: Gradient-Boosting committee disagreement sampling.

    Committee diversity comes from different random seeds and stochastic
    subsampling of the training rows; the variance of the members'
    predictions on the unlabelled pool ranks the candidate queries.
    """

    name = "QC"

    def __init__(
        self,
        n_committee: int = 5,
        base_model: Optional[GradientBoostingRegressor] = None,
        n_jobs: int = 1,
    ) -> None:
        if n_committee < 2:
            raise ValueError("A committee needs at least 2 members.")
        self.n_committee = n_committee
        self.base_model = base_model if base_model is not None else GradientBoostingRegressor(
            n_estimators=80, max_depth=6, subsample=0.8, random_state=0
        )
        self.n_jobs = n_jobs
        self._committee: list[Any] = []

    def fit_model(self, X_labeled: np.ndarray, y_labeled: np.ndarray, rng: np.random.Generator) -> Any:
        # Member seeds are drawn sequentially so committee fits can fan out
        # across processes while staying bit-identical to the serial loop.
        members = []
        for _ in range(self.n_committee):
            member = clone(self.base_model)
            member.set_params(random_state=int(rng.integers(0, 2**31 - 1)))
            members.append(member)
        self._committee = parallel_map(
            _fit_committee_member,
            [(member, X_labeled, y_labeled) for member in members],
            n_jobs=self.n_jobs,
        )
        # Algorithm 2 evaluates with the last fitted committee member.
        return self._committee[-1]

    def select(self, model, X_labeled, y_labeled, X_unlabeled, query_size, rng) -> np.ndarray:
        # All member arenas are stacked and traversed in one batched pass
        # (repro.ml.packed); each column is byte-identical to m.predict(...),
        # so the disagreement ranking matches the per-member loop exactly.
        predictions = committee_predictions(self._committee, X_unlabeled)
        variance = predictions.var(axis=1)
        query_size = min(query_size, X_unlabeled.shape[0])
        return np.argsort(-variance, kind="stable")[:query_size]


_STRATEGY_ALIASES = {
    "rs": RandomSampling,
    "random": RandomSampling,
    "us": UncertaintySampling,
    "uncertainty": UncertaintySampling,
    "qc": QueryByCommittee,
    "qbc": QueryByCommittee,
    "committee": QueryByCommittee,
}


def _resolve_strategy(strategy: Any) -> QueryStrategy:
    if isinstance(strategy, QueryStrategy):
        return strategy
    if isinstance(strategy, str):
        key = strategy.lower()
        if key in _STRATEGY_ALIASES:
            return _STRATEGY_ALIASES[key]()
        raise ValueError(f"Unknown strategy {strategy!r}. Available: {sorted(_STRATEGY_ALIASES)}")
    raise TypeError("strategy must be a QueryStrategy instance or a name.")


# --------------------------------------------------------------------------- campaign
def run_active_learning(
    X_pool: np.ndarray,
    y_pool: np.ndarray,
    strategy: Any,
    config: Optional[ActiveLearningConfig] = None,
    *,
    X_test: Optional[np.ndarray] = None,
    y_test: Optional[np.ndarray] = None,
) -> ActiveLearningResult:
    """Run one active-learning campaign over a pool of runnable configurations.

    ``X_pool``/``y_pool`` play the role of the experiments that *could* be run
    on the supercomputer (labels are revealed when a configuration is
    queried).  ``X_test``/``y_test`` are required when the config's goal is
    STQ or BQ, because the question-level losses are computed on the test
    pool exactly as in Algorithms 1 and 2.
    """
    config = config if config is not None else ActiveLearningConfig()
    strategy = _resolve_strategy(strategy)
    rng = check_random_state(config.random_state)

    X_pool = np.asarray(X_pool, dtype=np.float64)
    y_pool = np.asarray(y_pool, dtype=np.float64).ravel()
    if X_pool.shape[0] != y_pool.shape[0]:
        raise ValueError("X_pool and y_pool must have the same number of rows.")
    if config.goal is not None and (X_test is None or y_test is None):
        raise ValueError("X_test and y_test are required when goal is 'stq' or 'bq'.")

    n_pool = X_pool.shape[0]
    n_initial = min(config.n_initial, n_pool)
    labeled_mask = np.zeros(n_pool, dtype=bool)
    labeled_mask[rng.choice(n_pool, size=n_initial, replace=False)] = True

    result = ActiveLearningResult(strategy=strategy.name, goal=config.goal)
    objective = "runtime" if config.goal == "stq" else "node_hours"

    # Apply the campaign's n_jobs to strategies that support it for the
    # duration of this run only; the caller's object is restored afterwards.
    override_jobs = config.n_jobs != 1 and hasattr(strategy, "n_jobs")
    saved_jobs = strategy.n_jobs if override_jobs else None
    if override_jobs:
        strategy.n_jobs = config.n_jobs
    try:
        for _ in range(config.n_queries):
            X_labeled, y_labeled = X_pool[labeled_mask], y_pool[labeled_mask]
            model = strategy.fit_model(X_labeled, y_labeled, rng)

            # Paper protocol: regression metrics are tracked on the full pool.
            y_hat = model.predict(X_pool)
            result.known_sizes.append(int(labeled_mask.sum()))
            result.r2.append(r2_score(y_pool, y_hat))
            result.mae.append(mean_absolute_error(y_pool, y_hat))
            result.mape.append(mean_absolute_percentage_error(y_pool, y_hat))

            if config.goal is not None:
                report = question_loss_report(
                    X_test, np.asarray(y_test, dtype=float).ravel(), model.predict(X_test), objective
                )
                result.goal_r2.append(report["r2"])
                result.goal_mae.append(report["mae"])
                result.goal_mape.append(report["mape"])

            unlabeled_idx = np.flatnonzero(~labeled_mask)
            if unlabeled_idx.size == 0:
                break
            picked = strategy.select(
                model, X_labeled, y_labeled, X_pool[unlabeled_idx], config.query_size, rng
            )
            labeled_mask[unlabeled_idx[np.asarray(picked, dtype=int)]] = True
    finally:
        if override_jobs:
            strategy.n_jobs = saved_jobs

    return result
