"""Core framework: ML-guided estimation of CCSD computational resources.

This package implements the paper's primary contribution — a framework that
answers application users' resource questions before they submit expensive
jobs:

* :class:`~repro.core.estimator.ResourceEstimator` — regression model for the
  wall time of a CCSD iteration given ⟨O, V, NumNodes, TileSize⟩.
* :mod:`~repro.core.questions` / :class:`~repro.core.advisor.ResourceAdvisor`
  — the Shortest-Time Question (STQ) and Budget Question (BQ) answered by
  sweeping the trained model over candidate configurations.
* :mod:`~repro.core.evaluation` — the paper's evaluation protocol (losses are
  computed with the *true* runtime of the predicted-optimal configuration).
* :mod:`~repro.core.model_zoo` / :mod:`~repro.core.hyperopt` — the nine-model
  comparison under three hyper-parameter search strategies (Figures 1–2).
* :mod:`~repro.core.active_learning` — random sampling, uncertainty sampling
  and query-by-committee campaigns for the data-scarce scenario
  (Figures 3–6).
"""

from repro.core.estimator import ResourceEstimator
from repro.core.questions import (
    ConfigurationSpace,
    QuestionAnswer,
    answer_budget_question,
    answer_shortest_time_question,
)
from repro.core.advisor import ResourceAdvisor
from repro.core.evaluation import (
    OptimalConfigRecord,
    evaluate_question_predictions,
    optimal_configurations,
    question_loss_report,
)
from repro.core.model_zoo import MODEL_ZOO, ModelSpec, build_model, model_names
from repro.core.hyperopt import ModelComparisonResult, run_model_comparison
from repro.core.active_learning import (
    ActiveLearningConfig,
    ActiveLearningResult,
    QueryByCommittee,
    RandomSampling,
    UncertaintySampling,
    run_active_learning,
)

__all__ = [
    "ResourceEstimator",
    "ConfigurationSpace",
    "QuestionAnswer",
    "answer_shortest_time_question",
    "answer_budget_question",
    "ResourceAdvisor",
    "OptimalConfigRecord",
    "optimal_configurations",
    "evaluate_question_predictions",
    "question_loss_report",
    "MODEL_ZOO",
    "ModelSpec",
    "build_model",
    "model_names",
    "ModelComparisonResult",
    "run_model_comparison",
    "ActiveLearningConfig",
    "ActiveLearningResult",
    "RandomSampling",
    "UncertaintySampling",
    "QueryByCommittee",
    "run_active_learning",
]
