"""Plain-text rendering of the paper's tables and figures.

Matplotlib is not assumed to be available, so "figures" are rendered as
aligned text tables / simple learning-curve listings that the benchmark
harness prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.active_learning import ActiveLearningResult
from repro.core.evaluation import OptimalConfigRecord
from repro.core.hyperopt import ModelComparisonResult

__all__ = [
    "format_table",
    "format_model_comparison",
    "format_question_table",
    "format_active_learning_curves",
    "format_metrics",
]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: Optional[str] = None
) -> str:
    """Render an aligned plain-text table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_metrics(metrics: Mapping[str, float], title: Optional[str] = None) -> str:
    """One-line metric summary, e.g. ``r2=0.999 mae=2.36 mape=0.023``."""
    body = " ".join(f"{k}={_fmt(float(v))}" for k, v in metrics.items())
    return f"{title}: {body}" if title else body


def format_model_comparison(results: Sequence[ModelComparisonResult]) -> str:
    """Render Figure 1/2-style results as a table (one row per model × search)."""
    headers = ["Model", "Search", "R2", "MAE", "MAPE", "Search time (s)"]
    rows = [
        [r.model, r.search, r.r2, r.mae, r.mape, r.search_time_s]
        for r in results
    ]
    return format_table(headers, rows)


def format_question_table(
    records: Sequence[OptimalConfigRecord], objective: str = "runtime"
) -> str:
    """Render Table 3/4 (STQ) or Table 5/6 (BQ).

    Mirrors the paper's convention: when the model's recommendation differs
    from the true optimum, the recommended value is shown in parentheses next
    to the true one.
    """
    if objective == "runtime":
        headers = ["O", "V", "Nodes", "Tile size", "Runtime (s)"]
    else:
        headers = ["O", "V", "Nodes", "Tile size", "Runtime (s)", "Node hours"]
    rows = []
    for r in records:
        nodes = str(r.true_nodes)
        tile = str(r.true_tile)
        runtime = _fmt(r.true_runtime_s)
        node_hours = _fmt(r.true_node_hours)
        if not r.configuration_correct:
            nodes = f"{r.true_nodes}({r.predicted_nodes})"
            tile = f"{r.true_tile}({r.predicted_tile})"
            runtime = f"{_fmt(r.true_runtime_s)}({_fmt(r.predicted_config_runtime_s)})"
            node_hours = f"{_fmt(r.true_node_hours)}({_fmt(r.predicted_config_node_hours)})"
        row = [r.n_occupied, r.n_virtual, nodes, tile, runtime]
        if objective != "runtime":
            row.append(node_hours)
        rows.append(row)
    return format_table(headers, rows)


def format_active_learning_curves(
    results: Sequence[ActiveLearningResult], metric: str = "mape", use_goal: bool = False
) -> str:
    """Render Figure 3–6-style learning curves as aligned columns.

    One column per strategy; one row per known-data size.
    """
    if not results:
        raise ValueError("No active-learning results to format.")
    sizes = results[0].known_sizes
    headers = ["Known data"] + [
        f"{r.strategy}{'-' + r.goal.upper() if use_goal and r.goal else ''}" for r in results
    ]
    rows = []
    for i, size in enumerate(sizes):
        row: list[Any] = [size]
        for r in results:
            curve = getattr(r, f"goal_{metric}") if use_goal else getattr(r, metric)
            row.append(curve[i] if i < len(curve) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=f"Active learning ({'goal ' if use_goal else ''}{metric})")
