"""Model comparison under three hyper-parameter search strategies.

Figures 1 and 2 of the paper report, for every model in the zoo and each of
GridSearchCV / RandomizedSearchCV / BayesSearchCV, the test-set R², MAE and
MAPE of the best found configuration and the wall time of the search itself.
:func:`run_model_comparison` reproduces that sweep for one machine's dataset.

With ``n_jobs > 1`` the sweep fans out across the (model x strategy)
combinations — one task per model, heaviest models submitted first — rather
than within a single search.  Grouping a model's three strategies in one
worker keeps the cross-strategy candidate-evaluation cache effective, and
because every task is fully seeded up front, parallel and serial sweeps
return identical results (modulo wall-time fields) for the same seed.

Note on timings: because candidate evaluations are memoised across
strategies (see :mod:`repro.parallel.cache`), ``search_time_s`` measures
the search *as executed* — strategies that revisit candidates already
scored in the same process report only the cache-lookup time.  Scores and
``best_params_`` are unaffected; clear the caches between searches if you
need cold-cache wall times.

Resumability: when a cross-process memo store is active (``--memo-dir`` /
``REPRO_MEMO_DIR``, see :mod:`repro.parallel.store`), every finished
(model, strategy) combination is persisted as soon as it completes, keyed
on the full experimental content (machine, grid, cv, seed and the bytes of
the train/test arrays).  An interrupted sweep rerun against the same store
skips the finished combinations entirely — a fully warm rerun performs
zero model fits and returns the stored results byte-for-byte, including
the original ``search_time_s``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro.core.model_zoo import MODEL_ZOO, get_model_spec
from repro.data.datasets import CCSDDataset
from repro.ml.bayes_search import BayesSearchCV
from repro.ml.metrics import regression_report
from repro.ml.search import GridSearchCV, ParameterGrid, RandomizedSearchCV
from repro.parallel.backend import parallel_map

__all__ = ["ModelComparisonResult", "run_model_comparison", "SEARCH_STRATEGIES"]

#: Search strategy labels as used in the paper's figures.
SEARCH_STRATEGIES: tuple[str, ...] = ("GridSearchCV", "RandomizedSearchCV", "BayesSearchCV")

#: Static cost ranking (heaviest first) used to order task submission so the
#: expensive ensembles never start last on a busy pool.
_MODEL_COST_ORDER: tuple[str, ...] = ("GB", "RF", "GP", "SVR", "AB", "DT", "PR", "KR", "BR")


@dataclass(frozen=True)
class ModelComparisonResult:
    """One bar of Figures 1–2: a (model, search strategy) combination."""

    machine: str
    model: str
    search: str
    best_params: dict[str, Any]
    r2: float
    mae: float
    mape: float
    search_time_s: float
    n_candidates: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "machine": self.machine,
            "model": self.model,
            "search": self.search,
            "best_params": self.best_params,
            "r2": self.r2,
            "mae": self.mae,
            "mape": self.mape,
            "search_time_s": self.search_time_s,
            "n_candidates": self.n_candidates,
        }


def _make_search(
    strategy: str, estimator: Any, grid: dict[str, list], *, cv: int, seed: int, n_jobs: int = 1
) -> Any:
    if strategy == "GridSearchCV":
        return GridSearchCV(estimator, grid, cv=cv, scoring="r2", n_jobs=n_jobs)
    n_grid = len(ParameterGrid(grid))
    if strategy == "RandomizedSearchCV":
        return RandomizedSearchCV(
            estimator,
            grid,
            n_iter=min(8, n_grid),
            cv=cv,
            scoring="r2",
            random_state=seed,
            n_jobs=n_jobs,
        )
    if strategy == "BayesSearchCV":
        return BayesSearchCV(
            estimator,
            grid,
            n_iter=min(8, n_grid),
            n_initial_points=min(4, n_grid),
            cv=cv,
            scoring="r2",
            random_state=seed,
            n_jobs=n_jobs,
        )
    raise ValueError(f"Unknown search strategy {strategy!r}. Expected one of {SEARCH_STRATEGIES}.")


#: Store namespace for finished (model, strategy) sweep combinations.
_SWEEP_NAMESPACE = "model_comparison"


def _sweep_memo_key(
    machine: str,
    key: str,
    strategy: str,
    grid: dict,
    scale: str,
    cv: int,
    seed: int,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
) -> tuple:
    """Content key for one (model, strategy) combination of the sweep.

    The grid itself is part of the key, so editing a model's search space
    in :mod:`repro.core.model_zoo` naturally invalidates stale results.
    """
    from repro.parallel.cache import array_token

    grid_items = tuple(sorted((name, tuple(values)) for name, values in grid.items()))
    return (
        machine,
        key,
        strategy,
        grid_items,
        scale,
        int(cv),
        int(seed),
        array_token(X_train),
        array_token(y_train),
        array_token(X_test),
        array_token(y_test),
    )


def _load_sweep_result(store: Any, memo_key: tuple) -> Optional[ModelComparisonResult]:
    payload = store.get(_SWEEP_NAMESPACE, memo_key)
    if payload is None:
        return None
    try:
        return ModelComparisonResult(**payload)
    except TypeError:
        # The dataclass grew/renamed fields since this payload was written;
        # treat it as stale and recompute.
        return None


def _compare_one_model(task: tuple) -> list[ModelComparisonResult]:
    """Run every search strategy for one model; one parallel task of the sweep.

    With a memo store active, each strategy's finished result is persisted
    immediately (per-combination granularity is what makes an interrupted
    sweep resumable) and already-stored combinations are skipped wholesale.
    """
    from repro.parallel.store import get_store

    (
        machine,
        key,
        strategies,
        scale,
        cv,
        seed,
        search_jobs,
        tree_method,
        X_train,
        y_train,
        X_test,
        y_test,
    ) = task
    spec = get_model_spec(key)
    grid = spec.grid(scale)
    store = get_store()
    results: list[ModelComparisonResult] = []
    for strategy in strategies:
        estimator = spec.factory()
        # Tree-based models opt into the requested split-search engine; the
        # rest of the zoo has no such knob and runs unchanged.
        applies = tree_method != "exact" and "tree_method" in estimator.get_params()
        if applies:
            estimator.set_params(tree_method=tree_method)
        memo_key = None
        if store is not None:
            memo_key = _sweep_memo_key(
                machine, key, strategy, grid, scale, cv, seed, X_train, y_train, X_test, y_test
            )
            if applies:
                # Appended only for non-default engines so results memoised
                # before the knob existed stay addressable.
                memo_key = memo_key + (("tree_method", tree_method),)
            stored = _load_sweep_result(store, memo_key)
            if stored is not None:
                results.append(stored)
                continue
        search = _make_search(strategy, estimator, grid, cv=cv, seed=seed, n_jobs=search_jobs)
        t0 = time.perf_counter()
        search.fit(X_train, y_train)
        elapsed = time.perf_counter() - t0
        report = regression_report(y_test, search.predict(X_test))
        result = ModelComparisonResult(
            machine=machine,
            model=key,
            search=strategy,
            best_params=dict(search.best_params_),
            r2=report["r2"],
            mae=report["mae"],
            mape=report["mape"],
            search_time_s=elapsed,
            n_candidates=len(search.cv_results_["params"]),
        )
        if memo_key is not None:
            store.put(_SWEEP_NAMESPACE, memo_key, result.as_dict())
        results.append(result)
    return results


def run_model_comparison(
    dataset: CCSDDataset,
    *,
    models: Optional[Iterable[str]] = None,
    strategies: Sequence[str] = SEARCH_STRATEGIES,
    scale: str = "fast",
    cv: int = 3,
    seed: int = 0,
    max_train_samples: Optional[int] = None,
    n_jobs: int = 1,
    tree_method: str = "exact",
) -> list[ModelComparisonResult]:
    """Tune every model with every search strategy and score it on the test set.

    Parameters
    ----------
    dataset:
        Machine dataset (train split used for the search, test split for the
        reported metrics).
    models:
        Model keys to include; defaults to the full zoo.
    strategies:
        Search strategies to run (subset of :data:`SEARCH_STRATEGIES`).
    scale:
        ``"fast"`` or ``"paper"`` hyper-parameter grids.
    cv:
        Cross-validation folds inside the searches.
    seed:
        Seed for the randomized/Bayesian searches.
    max_train_samples:
        Optional subsample of the training split (keeps expensive kernel
        models tractable at bench scale); ``None`` uses the full split.
    n_jobs:
        Worker processes for the sweep.  ``1`` runs serially; ``N > 1``
        distributes whole models (all their strategies) over a process pool;
        ``-1`` uses every CPU.  Results are identical for any ``n_jobs``.
    tree_method:
        Split-search engine for the tree-based models (``"exact"`` or
        ``"hist"``, see :mod:`repro.ml.tree`); models without the knob
        are unaffected.
    """
    if tree_method not in ("exact", "hist"):
        raise ValueError(
            f"Unknown tree_method {tree_method!r}; expected 'exact' or 'hist'."
        )
    model_keys = [m.upper() for m in (models if models is not None else MODEL_ZOO.keys())]
    X_train, y_train = dataset.X_train, dataset.y_train
    if max_train_samples is not None and max_train_samples < len(y_train):
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(y_train), size=max_train_samples, replace=False)
        X_train, y_train = X_train[idx], y_train[idx]
    X_test, y_test = dataset.X_test, dataset.y_test

    # One task per model so a worker runs all three strategies and benefits
    # from the shared candidate-evaluation cache; with a single model the
    # parallelism moves inside the searches instead.
    parallel_models = n_jobs != 1 and len(model_keys) > 1
    search_jobs = 1 if parallel_models else n_jobs
    tasks = [
        (
            dataset.machine,
            key,
            tuple(strategies),
            scale,
            cv,
            seed,
            search_jobs,
            tree_method,
            X_train,
            y_train,
            X_test,
            y_test,
        )
        for key in model_keys
    ]
    cost_rank = {key: rank for rank, key in enumerate(_MODEL_COST_ORDER)}
    priority = sorted(
        range(len(model_keys)),
        key=lambda i: (cost_rank.get(model_keys[i], len(cost_rank)), i),
    )
    per_model = parallel_map(
        _compare_one_model, tasks, n_jobs=n_jobs if parallel_models else 1, priority=priority
    )
    return [result for model_results in per_model for result in model_results]
