"""Model comparison under three hyper-parameter search strategies.

Figures 1 and 2 of the paper report, for every model in the zoo and each of
GridSearchCV / RandomizedSearchCV / BayesSearchCV, the test-set R², MAE and
MAPE of the best found configuration and the wall time of the search itself.
:func:`run_model_comparison` reproduces that sweep for one machine's dataset.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro.core.model_zoo import MODEL_ZOO, get_model_spec
from repro.data.datasets import CCSDDataset
from repro.ml.bayes_search import BayesSearchCV
from repro.ml.metrics import regression_report
from repro.ml.search import GridSearchCV, ParameterGrid, RandomizedSearchCV

__all__ = ["ModelComparisonResult", "run_model_comparison", "SEARCH_STRATEGIES"]

#: Search strategy labels as used in the paper's figures.
SEARCH_STRATEGIES: tuple[str, ...] = ("GridSearchCV", "RandomizedSearchCV", "BayesSearchCV")


@dataclass(frozen=True)
class ModelComparisonResult:
    """One bar of Figures 1–2: a (model, search strategy) combination."""

    machine: str
    model: str
    search: str
    best_params: dict[str, Any]
    r2: float
    mae: float
    mape: float
    search_time_s: float
    n_candidates: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "machine": self.machine,
            "model": self.model,
            "search": self.search,
            "best_params": self.best_params,
            "r2": self.r2,
            "mae": self.mae,
            "mape": self.mape,
            "search_time_s": self.search_time_s,
            "n_candidates": self.n_candidates,
        }


def _make_search(strategy: str, estimator: Any, grid: dict[str, list], *, cv: int, seed: int) -> Any:
    if strategy == "GridSearchCV":
        return GridSearchCV(estimator, grid, cv=cv, scoring="r2")
    n_grid = len(ParameterGrid(grid))
    if strategy == "RandomizedSearchCV":
        return RandomizedSearchCV(
            estimator, grid, n_iter=min(8, n_grid), cv=cv, scoring="r2", random_state=seed
        )
    if strategy == "BayesSearchCV":
        return BayesSearchCV(
            estimator,
            grid,
            n_iter=min(8, n_grid),
            n_initial_points=min(4, n_grid),
            cv=cv,
            scoring="r2",
            random_state=seed,
        )
    raise ValueError(f"Unknown search strategy {strategy!r}. Expected one of {SEARCH_STRATEGIES}.")


def run_model_comparison(
    dataset: CCSDDataset,
    *,
    models: Optional[Iterable[str]] = None,
    strategies: Sequence[str] = SEARCH_STRATEGIES,
    scale: str = "fast",
    cv: int = 3,
    seed: int = 0,
    max_train_samples: Optional[int] = None,
) -> list[ModelComparisonResult]:
    """Tune every model with every search strategy and score it on the test set.

    Parameters
    ----------
    dataset:
        Machine dataset (train split used for the search, test split for the
        reported metrics).
    models:
        Model keys to include; defaults to the full zoo.
    strategies:
        Search strategies to run (subset of :data:`SEARCH_STRATEGIES`).
    scale:
        ``"fast"`` or ``"paper"`` hyper-parameter grids.
    cv:
        Cross-validation folds inside the searches.
    seed:
        Seed for the randomized/Bayesian searches.
    max_train_samples:
        Optional subsample of the training split (keeps expensive kernel
        models tractable at bench scale); ``None`` uses the full split.
    """
    model_keys = [m.upper() for m in (models if models is not None else MODEL_ZOO.keys())]
    X_train, y_train = dataset.X_train, dataset.y_train
    if max_train_samples is not None and max_train_samples < len(y_train):
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(y_train), size=max_train_samples, replace=False)
        X_train, y_train = X_train[idx], y_train[idx]
    X_test, y_test = dataset.X_test, dataset.y_test

    results: list[ModelComparisonResult] = []
    for key in model_keys:
        spec = get_model_spec(key)
        grid = spec.grid(scale)
        for strategy in strategies:
            search = _make_search(strategy, spec.factory(), grid, cv=cv, seed=seed)
            t0 = time.perf_counter()
            search.fit(X_train, y_train)
            elapsed = time.perf_counter() - t0
            report = regression_report(y_test, search.predict(X_test))
            results.append(
                ModelComparisonResult(
                    machine=dataset.machine,
                    model=key,
                    search=strategy,
                    best_params=dict(search.best_params_),
                    r2=report["r2"],
                    mae=report["mae"],
                    mape=report["mape"],
                    search_time_s=elapsed,
                    n_candidates=len(search.cv_results_["params"]),
                )
            )
    return results
