"""Lightweight tabular data layer (column-store table, CSV I/O, datasets)."""

from repro.data.table import Table
from repro.data.io import read_csv, write_csv
from repro.data.datasets import (
    CCSDDataset,
    FEATURE_COLUMNS,
    TARGET_COLUMN,
    build_dataset,
    load_or_build_dataset,
)

__all__ = [
    "Table",
    "read_csv",
    "write_csv",
    "CCSDDataset",
    "FEATURE_COLUMNS",
    "TARGET_COLUMN",
    "build_dataset",
    "load_or_build_dataset",
]
