"""CSV persistence for :class:`~repro.data.table.Table`.

Numeric columns round-trip as floats/ints; everything else is stored as
strings.  The format is plain RFC-4180-ish CSV with a header row, so traces
written here can also be opened with pandas or a spreadsheet elsewhere.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

import numpy as np

from repro.data.table import Table

__all__ = ["write_csv", "read_csv"]


def write_csv(table: Table, path: str | Path) -> Path:
    """Write a table to ``path`` (parent directories are created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.column_names)
        columns = [table[name] for name in table.column_names]
        for i in range(table.n_rows):
            writer.writerow([_format_value(col[i]) for col in columns])
    return path


def _format_value(value: Any) -> Any:
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    if isinstance(value, (np.integer, int)):
        return int(value)
    return value


def _convert_column(values: list[str]) -> np.ndarray:
    """Infer the tightest dtype (int, float, str) for a column of strings."""
    try:
        as_int = np.asarray([int(v) for v in values], dtype=np.int64)
        return as_int
    except ValueError:
        pass
    try:
        return np.asarray([float(v) for v in values], dtype=np.float64)
    except ValueError:
        return np.asarray(values, dtype=object)


def read_csv(path: str | Path) -> Table:
    """Read a table previously written by :func:`write_csv`."""
    path = Path(path)
    with path.open("r", newline="") as fh:
        reader = csv.reader(fh)
        rows = list(reader)
    if len(rows) < 2:
        raise ValueError(f"CSV file {path} has no data rows.")
    header, data = rows[0], rows[1:]
    columns: dict[str, np.ndarray] = {}
    for j, name in enumerate(header):
        columns[name] = _convert_column([row[j] for row in data])
    return Table(columns)
