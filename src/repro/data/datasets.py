"""Paper-shaped CCSD performance datasets with fixed train/test splits.

Table 1 of the paper reports 2,329 Aurora measurements split 1,746/583 and
2,454 Frontier measurements split 1,840/614.  :func:`build_dataset` generates
a dataset of exactly that size from the simulator and splits it with the same
proportions; :func:`load_or_build_dataset` adds optional CSV caching so
benchmarks and examples do not regenerate the sweep every time.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.data.io import read_csv, write_csv
from repro.data.table import Table
from repro.ml.base import check_random_state
from repro.simulator.dataset_gen import PAPER_DATASET_SIZES, SweepConfig, generate_dataset
from repro.simulator.traces import traces_to_table

__all__ = [
    "FEATURE_COLUMNS",
    "TARGET_COLUMN",
    "CCSDDataset",
    "build_dataset",
    "load_or_build_dataset",
]

#: Model inputs, in the order used throughout the repo: ⟨O, V, NumNodes, TileSize⟩.
FEATURE_COLUMNS: tuple[str, ...] = ("n_occupied", "n_virtual", "n_nodes", "tile_size")
#: Model target: wall time of one CCSD iteration in seconds.
TARGET_COLUMN: str = "runtime_s"


@dataclass
class CCSDDataset:
    """A machine's performance dataset with a fixed train/test split."""

    machine: str
    table: Table
    train_indices: np.ndarray
    test_indices: np.ndarray

    # ------------------------------------------------------------------ views
    @property
    def n_rows(self) -> int:
        return self.table.n_rows

    @property
    def n_train(self) -> int:
        return len(self.train_indices)

    @property
    def n_test(self) -> int:
        return len(self.test_indices)

    @property
    def X(self) -> np.ndarray:
        return self.table.to_numpy(FEATURE_COLUMNS)

    @property
    def y(self) -> np.ndarray:
        return np.asarray(self.table[TARGET_COLUMN], dtype=np.float64)

    @property
    def X_train(self) -> np.ndarray:
        return self.X[self.train_indices]

    @property
    def y_train(self) -> np.ndarray:
        return self.y[self.train_indices]

    @property
    def X_test(self) -> np.ndarray:
        return self.X[self.test_indices]

    @property
    def y_test(self) -> np.ndarray:
        return self.y[self.test_indices]

    @property
    def train_table(self) -> Table:
        return self.table.filter(self.train_indices)

    @property
    def test_table(self) -> Table:
        return self.table.filter(self.test_indices)

    def problem_sizes(self) -> list[tuple[int, int]]:
        """Distinct (O, V) pairs present in the dataset."""
        keys = np.unique(
            np.column_stack([self.table["n_occupied"], self.table["n_virtual"]]), axis=0
        )
        return [(int(o), int(v)) for o, v in keys]

    def summary(self) -> dict[str, Any]:
        return {
            "machine": self.machine,
            "total": self.n_rows,
            "train": self.n_train,
            "test": self.n_test,
            "n_problem_sizes": len(self.problem_sizes()),
            "runtime_min_s": float(self.y.min()),
            "runtime_max_s": float(self.y.max()),
        }


def _split_indices(n_rows: int, n_test: int, seed: Any) -> tuple[np.ndarray, np.ndarray]:
    rng = check_random_state(seed)
    perm = rng.permutation(n_rows)
    test_idx = np.sort(perm[:n_test])
    train_idx = np.sort(perm[n_test:])
    return train_idx, test_idx


def build_dataset(
    machine: str = "aurora",
    *,
    seed: Any = 0,
    n_total: Optional[int] = None,
    n_test: Optional[int] = None,
    config: Optional[SweepConfig] = None,
) -> CCSDDataset:
    """Generate a dataset and split it like Table 1 of the paper.

    ``n_total``/``n_test`` default to the paper's sizes for the machine; for
    custom sweeps the test fraction defaults to 25 %.
    """
    machine_key = machine.lower()
    traces = generate_dataset(machine_key, n_total=n_total, seed=seed, config=config)
    table = traces_to_table(traces)

    if n_test is None:
        paper = PAPER_DATASET_SIZES.get(machine_key)
        if paper is not None and table.n_rows == paper[0]:
            n_test = paper[2]
        else:
            n_test = max(1, int(round(0.25 * table.n_rows)))
    train_idx, test_idx = _split_indices(table.n_rows, n_test, seed)
    return CCSDDataset(
        machine=machine_key, table=table, train_indices=train_idx, test_indices=test_idx
    )


def load_or_build_dataset(
    machine: str = "aurora",
    *,
    seed: Any = 0,
    cache_dir: Optional[str | Path] = None,
) -> CCSDDataset:
    """Build a paper-sized dataset, caching the generated table as CSV.

    The cache key includes the machine and seed; the train/test split is
    re-derived deterministically from the seed, so cached and fresh datasets
    are identical.
    """
    if cache_dir is None:
        return build_dataset(machine, seed=seed)
    cache_dir = Path(cache_dir)
    cache_path = cache_dir / f"ccsd_dataset_{machine.lower()}_seed{seed}.csv"
    if cache_path.exists():
        table = read_csv(cache_path)
        machine_key = machine.lower()
        paper = PAPER_DATASET_SIZES.get(machine_key)
        n_test = paper[2] if paper is not None and table.n_rows == paper[0] else max(
            1, int(round(0.25 * table.n_rows))
        )
        train_idx, test_idx = _split_indices(table.n_rows, n_test, seed)
        return CCSDDataset(
            machine=machine_key, table=table, train_indices=train_idx, test_indices=test_idx
        )
    dataset = build_dataset(machine, seed=seed)
    write_csv(dataset.table, cache_path)
    return dataset
