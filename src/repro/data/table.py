"""A minimal column-store table.

pandas is not available in the target environment; this class provides the
small subset of functionality the framework needs: named columns backed by
NumPy arrays, row filtering, column selection, sorting, summary statistics
and conversion to/from records.  It is deliberately simple — no indexes, no
missing-value semantics beyond NaN.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

__all__ = ["Table"]


class Table:
    """An ordered mapping of column name → 1-D NumPy array, all equal length."""

    def __init__(self, columns: Mapping[str, Any]) -> None:
        if not columns:
            raise ValueError("A table needs at least one column.")
        self._columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise ValueError(f"Column {name!r} must be 1-D, got shape {arr.shape}.")
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise ValueError(
                    f"Column {name!r} has length {arr.shape[0]}, expected {length}."
                )
            self._columns[str(name)] = arr
        self._length = int(length or 0)

    # ------------------------------------------------------------------ basics
    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    @property
    def n_rows(self) -> int:
        return self._length

    @property
    def n_columns(self) -> int:
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_columns)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._columns:
            raise KeyError(f"No column named {name!r}. Available: {self.column_names}")
        return self._columns[name]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(np.array_equal(self[c], other[c]) for c in self.column_names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.n_rows} rows x {self.n_columns} columns: {self.column_names})"

    # ------------------------------------------------------------------ constructors
    @classmethod
    def from_records(cls, records: Sequence[Mapping[str, Any]]) -> "Table":
        """Build a table from a list of dictionaries (all with the same keys)."""
        if len(records) == 0:
            raise ValueError("Cannot build a table from zero records.")
        keys = list(records[0].keys())
        columns: dict[str, list] = {k: [] for k in keys}
        for rec in records:
            if set(rec.keys()) != set(keys):
                raise ValueError("All records must have the same keys.")
            for k in keys:
                columns[k].append(rec[k])
        return cls({k: np.asarray(v) for k, v in columns.items()})

    def to_records(self) -> list[dict[str, Any]]:
        """Convert back to a list of per-row dictionaries (Python scalars)."""
        out = []
        for i in range(self.n_rows):
            out.append({name: self._columns[name][i].item() if hasattr(self._columns[name][i], "item") else self._columns[name][i] for name in self._columns})
        return out

    # ------------------------------------------------------------------ transforms
    def select(self, names: Iterable[str]) -> "Table":
        """Keep only the given columns (in the given order)."""
        names = list(names)
        return Table({name: self[name] for name in names})

    def with_column(self, name: str, values: Any) -> "Table":
        """Return a new table with ``name`` added or replaced."""
        arr = np.asarray(values)
        if arr.shape[0] != self.n_rows:
            raise ValueError(f"Column {name!r} has length {arr.shape[0]}, expected {self.n_rows}.")
        columns = dict(self._columns)
        columns[name] = arr
        return Table(columns)

    def drop(self, names: Iterable[str]) -> "Table":
        """Return a new table without the given columns."""
        to_drop = set(names)
        remaining = {k: v for k, v in self._columns.items() if k not in to_drop}
        return Table(remaining)

    def filter(self, mask: Any) -> "Table":
        """Row subset by boolean mask or integer indices."""
        mask = np.asarray(mask)
        return Table({name: col[mask] for name, col in self._columns.items()})

    def filter_by(self, predicate: Callable[[dict[str, Any]], bool]) -> "Table":
        """Row subset by a per-row predicate over a row dictionary (slow path)."""
        mask = np.array([predicate(row) for row in self.to_records()], dtype=bool)
        return self.filter(mask)

    def sort_by(self, name: str, descending: bool = False) -> "Table":
        """Sort rows by a column."""
        order = np.argsort(self[name], kind="stable")
        if descending:
            order = order[::-1]
        return self.filter(order)

    def head(self, n: int = 5) -> "Table":
        return self.filter(np.arange(min(n, self.n_rows)))

    def unique(self, name: str) -> np.ndarray:
        return np.unique(self[name])

    def groupby_agg(
        self, by: str | Sequence[str], column: str, agg: Callable[[np.ndarray], float]
    ) -> "Table":
        """Group rows by one or more key columns and aggregate ``column``."""
        keys = [by] if isinstance(by, str) else list(by)
        key_arrays = [self[k] for k in keys]
        stacked = np.rec.fromarrays(key_arrays, names=[f"k{i}" for i in range(len(keys))])
        uniques, inverse = np.unique(stacked, return_inverse=True)
        out_keys: dict[str, list] = {k: [] for k in keys}
        agg_values = []
        for gi in range(len(uniques)):
            mask = inverse == gi
            for ki, k in enumerate(keys):
                out_keys[k].append(key_arrays[ki][mask][0])
            agg_values.append(agg(self[column][mask]))
        columns = {k: np.asarray(v) for k, v in out_keys.items()}
        columns[column] = np.asarray(agg_values)
        return Table(columns)

    # ------------------------------------------------------------------ numerics
    def to_numpy(self, names: Iterable[str] | None = None, dtype: type = np.float64) -> np.ndarray:
        """Stack the selected (numeric) columns into a 2-D array."""
        names = list(names) if names is not None else self.column_names
        return np.column_stack([np.asarray(self[name], dtype=dtype) for name in names])

    def describe(self, names: Iterable[str] | None = None) -> dict[str, dict[str, float]]:
        """Per-column summary statistics for numeric columns."""
        names = list(names) if names is not None else self.column_names
        out: dict[str, dict[str, float]] = {}
        for name in names:
            col = self[name]
            if not np.issubdtype(col.dtype, np.number):
                continue
            colf = col.astype(float)
            out[name] = {
                "count": float(colf.size),
                "mean": float(np.mean(colf)),
                "std": float(np.std(colf)),
                "min": float(np.min(colf)),
                "median": float(np.median(colf)),
                "max": float(np.max(colf)),
            }
        return out

    def concat(self, other: "Table") -> "Table":
        """Stack two tables with identical column sets row-wise."""
        if set(self.column_names) != set(other.column_names):
            raise ValueError("Tables must have the same columns to concatenate.")
        return Table(
            {name: np.concatenate([self[name], other[name]]) for name in self.column_names}
        )
