"""repro.testing — deterministic fault-injection tooling (ISSUE 9).

This package holds test harnesses that ship with the library (not under
``tests/``) because the chaos CI job, the examples, and downstream users
all need them importable: resilience claims are only credible when anyone
can replay the exact fault schedule that proved them.

* :class:`FaultWire` — a seeded, frame-aware TCP proxy that drops,
  delays, truncates, resets, or garbles server→client frames per a
  deterministic schedule (see :mod:`repro.testing.faultwire`).
"""

from repro.testing.faultwire import (
    ACTIONS,
    Fault,
    FaultSchedule,
    FaultWire,
    ScriptedSchedule,
)

__all__ = [
    "ACTIONS",
    "Fault",
    "FaultSchedule",
    "FaultWire",
    "ScriptedSchedule",
]
