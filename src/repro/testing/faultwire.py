"""FaultWire: a deterministic fault-injecting TCP proxy (ISSUE 9).

The resilience layer promises that every wire fault resolves to an
existing contract — miss-and-recompute for the memo store, a clean
retryable error for serve, serial degradation for the cluster; never a
hang, a crash, or a wrong byte.  Hand-rolled kill/truncate tests only
sample that space.  FaultWire covers it *reproducibly*: a frame-aware
TCP proxy sits between a real client and a real server and perturbs
server→client frames per a schedule that is a pure function of
``(seed, connection index, frame index)`` — the same seed replays the
same faults, byte for byte, across runs and machines.

Faults (:data:`ACTIONS`):

* ``pass`` — forward the frame untouched.
* ``delay`` — forward after ``delay_s`` (a stall, not a loss).
* ``drop`` — swallow the frame and close the connection (the client
  sees EOF mid-await, exactly like a server killed between write and
  reply).
* ``truncate`` — forward the length header plus only ``keep_bytes`` of
  the payload, then close: a short read, the classic torn frame.
* ``reset`` — hard RST via ``SO_LINGER(1, 0)``: connection reset by
  peer, the "dead" in shed-vs-dead.
* ``garble`` — forward a frame of the right length whose *body* is
  corrupted (status byte kept, remaining bytes inverted).  The
  inversion maps printable ASCII into invalid-UTF-8 territory, so a
  garbled JSON/pickle/magic-prefixed body can never parse as a
  different valid value — faults may cost retries or misses, never a
  silently wrong answer.

Only the upstream→client direction is perturbed: requests arrive intact
and the *response* path takes the damage, which is where every client
contract (reconnect, degrade-to-miss, failover) actually lives.

Run standalone (the chaos CI job does) with::

    python -m repro.testing.faultwire --listen 127.0.0.1:0 \\
        --upstream 127.0.0.1:7601 --seed 1234 --drop 0.05 --reset 0.02
"""

from __future__ import annotations

import itertools
import json
import random
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.parallel.wire import LEN, MAX_FRAME, parse_hostport_url

__all__ = [
    "ACTIONS",
    "Fault",
    "FaultSchedule",
    "FaultWire",
    "ScriptedSchedule",
]

#: Every fault action FaultWire knows how to apply.
ACTIONS = ("pass", "delay", "drop", "truncate", "reset", "garble")

#: Timeout for upstream connect attempts.
_SOCKET_TIMEOUT = 30.0

#: Pump sockets poll at this interval: a cross-thread close() does not
#: reliably wake a blocked recv(), so pumps time out, check the stop
#: flag, and loop — bounding shutdown latency deterministically.
_POLL_S = 0.1


@dataclass(frozen=True)
class Fault:
    """One scheduled perturbation of one frame."""

    action: str = "pass"
    delay_s: float = 0.0
    keep_bytes: int = 4

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.keep_bytes < 0:
            raise ValueError(f"keep_bytes must be >= 0, got {self.keep_bytes}")


_PASS = Fault("pass")


class FaultSchedule:
    """Seeded fault schedule: a pure function of (conn, frame).

    Each rate is the probability of that action for a given frame; the
    remainder passes clean.  Decisions are drawn from
    ``random.Random(f"{seed}:{conn}:{frame}")`` — string seeding hashes
    via SHA-512, so the schedule is identical across runs, platforms and
    thread interleavings, independent of global RNG state.

    ``warmup_frames`` lets the first N frames of every connection pass
    untouched — handy to let a protocol handshake land before the storm.
    """

    def __init__(
        self,
        seed: object = 0,
        *,
        drop: float = 0.0,
        delay: float = 0.0,
        truncate: float = 0.0,
        reset: float = 0.0,
        garble: float = 0.0,
        delay_s: float = 0.25,
        warmup_frames: int = 0,
    ) -> None:
        rates = {
            "drop": drop,
            "delay": delay,
            "truncate": truncate,
            "reset": reset,
            "garble": garble,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0:
            raise ValueError(
                f"fault rates sum to {sum(rates.values()):.3f} > 1.0"
            )
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        if warmup_frames < 0:
            raise ValueError(f"warmup_frames must be >= 0, got {warmup_frames}")
        self.seed = seed
        self.rates = rates
        self.delay_s = delay_s
        self.warmup_frames = warmup_frames

    def decide(self, conn: int, frame: int) -> Fault:
        if frame < self.warmup_frames:
            return _PASS
        rng = random.Random(f"{self.seed}:{conn}:{frame}")
        draw = rng.random()
        cumulative = 0.0
        for action, rate in self.rates.items():
            cumulative += rate
            if draw < cumulative:
                if action == "delay":
                    return Fault("delay", delay_s=self.delay_s)
                if action == "truncate":
                    # Keep a few payload bytes so the client reads a torn
                    # frame, not a clean EOF at a frame boundary.
                    return Fault("truncate", keep_bytes=1 + rng.randrange(8))
                return Fault(action)
        return _PASS


class ScriptedSchedule:
    """Exact per-frame script: ``{(conn, frame): action-or-Fault}``.

    Unlisted frames pass clean.  Use this when a test needs *this* frame
    torn and *that* one reset, rather than statistical coverage.
    """

    def __init__(
        self, plan: Mapping[Tuple[int, int], Union[str, Fault]]
    ) -> None:
        self.plan: Dict[Tuple[int, int], Fault] = {}
        for key, value in plan.items():
            conn, frame = key
            fault = Fault(value) if isinstance(value, str) else value
            self.plan[(int(conn), int(frame))] = fault

    def decide(self, conn: int, frame: int) -> Fault:
        return self.plan.get((conn, frame), _PASS)


def _recv_exact(
    sock: socket.socket, n: int, stop: Optional[threading.Event] = None
) -> Optional[bytes]:
    """Read exactly ``n`` bytes from ``sock`` or ``None`` on EOF/teardown.

    The socket is expected to carry a short poll timeout; each timeout
    just re-checks ``stop`` and keeps reading.
    """
    chunks = []
    remaining = n
    while remaining > 0:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout:
            if stop is not None and stop.is_set():
                return None
            continue
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _garble_body(payload: bytes) -> bytes:
    """Corrupt a frame body while keeping it structurally classifiable.

    The status byte survives so the client takes its normal decode path;
    every other byte is inverted, which maps printable ASCII to bytes
    >= 0x80 that cannot re-form valid JSON (no inverted byte maps back
    into the ASCII structural set) and cannot match any magic prefix —
    a garbled body always *fails to parse*, it never parses wrong.
    """
    if len(payload) <= 1:
        return bytes(0xFF ^ b for b in payload)
    return payload[:1] + bytes(0xFF ^ b for b in payload[1:])


class FaultWire:
    """A TCP proxy that injects scheduled faults into response frames.

    ``upstream`` is ``(host, port)`` or ``"host:port"``.  The proxy
    listens on ``host:port`` (port 0 = ephemeral), forwards the
    client→upstream byte stream untouched, and re-frames the
    upstream→client stream so each response frame can be perturbed per
    ``schedule.decide(conn, frame)``.  Connection and frame indices are
    0-based; connection indices are assigned in accept order.

    Thread-per-connection, context-manager friendly, and ``stats()``
    reports what was actually injected so tests and the chaos CI job can
    assert the storm really happened.
    """

    def __init__(
        self,
        upstream: Union[str, Tuple[str, int]],
        schedule: Optional[FaultSchedule] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if isinstance(upstream, str):
            raw = upstream.split("://", 1)[-1]
            upstream_host, _, upstream_port = raw.partition(":")
            if not upstream_host or not upstream_port.isdigit():
                raise ValueError(f"malformed upstream {upstream!r}")
            upstream = (upstream_host, int(upstream_port))
        self.upstream: Tuple[str, int] = (upstream[0], int(upstream[1]))
        self.schedule = schedule or FaultSchedule()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        # A blocking accept() is not reliably woken by close() from another
        # thread; poll instead so shutdown() returns promptly.
        self._listener.settimeout(_POLL_S)
        self.host, self.port = self._listener.getsockname()[:2]
        self._conn_ids = itertools.count()
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._open_socks: set = set()
        self._counts: Dict[str, int] = {action: 0 for action in ACTIONS}
        self._connections = 0
        self._accept_thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------

    def start(self) -> "FaultWire":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="faultwire-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def shutdown(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            socks = list(self._open_socks)
        for sock in socks:
            # shutdown() first: close() alone does not wake a pump thread
            # blocked in recv() on another thread's behalf.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "FaultWire":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def url(self, scheme: str) -> str:
        """The proxy endpoint as ``scheme`` URL (e.g. ``serve://h:p``)."""
        if not scheme.endswith("://"):
            scheme += "://"
        return f"{scheme}{self.host}:{self.port}"

    def stats(self) -> Dict[str, object]:
        with self._lock:
            counts = dict(self._counts)
        injected = sum(n for a, n in counts.items() if a != "pass")
        return {
            "connections": self._connections,
            "frames": sum(counts.values()),
            "injected": injected,
            "by_action": counts,
        }

    # -- plumbing ----------------------------------------------------

    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._open_socks.add(sock)

    def _untrack(self, sock: socket.socket) -> None:
        with self._lock:
            self._open_socks.discard(sock)

    def _close_pair(
        self,
        client: socket.socket,
        server: socket.socket,
        *,
        reset: bool = False,
    ) -> None:
        if reset:
            try:
                client.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            except OSError:
                pass
            # Wake our own forward pump blocked in client.recv() without
            # putting anything on the wire: SHUT_RD is local-only, so the
            # linger-0 close below still emits a bare RST.
            try:
                client.shutdown(socket.SHUT_RD)
            except OSError:
                pass
        for sock in (client, server):
            self._untrack(sock)
            if not reset or sock is server:
                # Full shutdown() first: close() alone does not wake the
                # paired pump thread blocked in recv() on this socket.
                # (The reset client skips it — a FIN would forfeit the RST.)
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
            try:
                sock.close()
            except OSError:
                pass

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn = next(self._conn_ids)
            with self._lock:
                self._connections += 1
            thread = threading.Thread(
                target=self._serve_connection,
                args=(client, conn),
                name=f"faultwire-conn-{conn}",
                daemon=True,
            )
            with self._lock:
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, client: socket.socket, conn: int) -> None:
        client.settimeout(_POLL_S)
        self._track(client)
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.settimeout(_SOCKET_TIMEOUT)
        try:
            server.connect(self.upstream)
        except OSError:
            self._close_pair(client, server)
            return
        server.settimeout(_POLL_S)
        self._track(server)
        forward = threading.Thread(
            target=self._pump_raw,
            args=(client, server),
            name=f"faultwire-fwd-{conn}",
            daemon=True,
        )
        with self._lock:
            self._threads.append(forward)
        forward.start()
        self._pump_frames(server, client, conn)

    def _pump_raw(self, src: socket.socket, dst: socket.socket) -> None:
        """client→upstream: forward bytes untouched until either side dies."""
        while True:
            try:
                chunk = src.recv(65536)
            except socket.timeout:
                if self._stop.is_set():
                    return
                continue
            except OSError:
                chunk = b""
            if not chunk:
                # Forward the FIN; the response pump owns full teardown.
                try:
                    dst.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
                return
            try:
                dst.sendall(chunk)
            except OSError:
                return

    def _pump_frames(
        self, server: socket.socket, client: socket.socket, conn: int
    ) -> None:
        """upstream→client: re-frame responses and apply scheduled faults."""
        frame = 0
        try:
            while not self._stop.is_set():
                header = _recv_exact(server, LEN.size, self._stop)
                if header is None:
                    return
                (length,) = LEN.unpack(header)
                if length == 0 or length > MAX_FRAME:
                    # Not a framed stream; stop re-framing, forward and bail.
                    try:
                        client.sendall(header)
                    except OSError:
                        pass
                    return
                payload = _recv_exact(server, length, self._stop)
                if payload is None:
                    return
                fault = self.schedule.decide(conn, frame)
                frame += 1
                with self._lock:
                    self._counts[fault.action] += 1
                if fault.action == "drop":
                    self._close_pair(client, server)
                    return
                if fault.action == "reset":
                    self._close_pair(client, server, reset=True)
                    return
                if fault.action == "delay":
                    time.sleep(fault.delay_s)
                elif fault.action == "garble":
                    payload = _garble_body(payload)
                elif fault.action == "truncate":
                    keep = min(fault.keep_bytes, len(payload))
                    try:
                        client.sendall(header + payload[:keep])
                    except OSError:
                        pass
                    self._close_pair(client, server)
                    return
                try:
                    client.sendall(header + payload)
                except OSError:
                    return
        finally:
            self._close_pair(client, server)


def _main(argv: Optional[list] = None) -> int:  # pragma: no cover - CLI
    """Standalone proxy for shell-driven chaos runs (the CI chaos job)."""
    import argparse
    import signal
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.faultwire",
        description="Deterministic fault-injecting TCP proxy.",
    )
    parser.add_argument("--listen", default="127.0.0.1:0", help="host:port")
    parser.add_argument("--upstream", required=True, help="host:port")
    parser.add_argument("--seed", default="0")
    parser.add_argument("--drop", type=float, default=0.0)
    parser.add_argument("--delay", type=float, default=0.0)
    parser.add_argument("--truncate", type=float, default=0.0)
    parser.add_argument("--reset", type=float, default=0.0)
    parser.add_argument("--garble", type=float, default=0.0)
    parser.add_argument("--delay-s", type=float, default=0.25)
    parser.add_argument("--warmup-frames", type=int, default=0)
    parser.add_argument(
        "--stats-file", default=None, help="write JSON stats here on exit"
    )
    args = parser.parse_args(argv)

    host, _, port = args.listen.partition(":")
    schedule = FaultSchedule(
        args.seed,
        drop=args.drop,
        delay=args.delay,
        truncate=args.truncate,
        reset=args.reset,
        garble=args.garble,
        delay_s=args.delay_s,
        warmup_frames=args.warmup_frames,
    )
    proxy = FaultWire(
        args.upstream, schedule, host=host or "127.0.0.1", port=int(port or 0)
    ).start()
    print(f"faultwire listening on {proxy.host}:{proxy.port}", flush=True)

    done = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: done.set())
    done.wait()
    stats = proxy.stats()
    proxy.shutdown()
    if args.stats_file:
        with open(args.stats_file, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2, sort_keys=True)
    print(f"faultwire stats: {json.dumps(stats, sort_keys=True)}", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
