"""TAMM-like distributed tensor-algebra runtime model.

The paper's training data comes from ExaChem CCSD runs built on TAMM (Tensor
Algebra for Many-body Methods), a task-based distributed tensor framework.
This sub-package models the parts of that stack that determine a CCSD
iteration's wall time: index-space tiling, block-sparse tensor layout, task
generation for tiled contractions, task scheduling/load balance across GPUs,
communication of remote blocks, and run-to-run noise.
"""

from repro.tamm.tiling import TiledIndexSpace
from repro.tamm.tensor import TiledTensor
from repro.tamm.contraction import ContractionPlan, plan_contraction
from repro.tamm.scheduler import SampledScheduler, analytic_makespan
from repro.tamm.noise import NoiseModel
from repro.tamm.runtime import (
    InfeasibleConfigurationError,
    IterationBreakdown,
    TammRuntimeSimulator,
)

__all__ = [
    "TiledIndexSpace",
    "TiledTensor",
    "ContractionPlan",
    "plan_contraction",
    "analytic_makespan",
    "SampledScheduler",
    "NoiseModel",
    "TammRuntimeSimulator",
    "IterationBreakdown",
    "InfeasibleConfigurationError",
]
