"""Tiled index spaces.

TAMM partitions every tensor dimension (occupied range ``O``, virtual range
``V``) into tiles of a user-chosen tile size; the tile size is the key
blocking parameter the paper's models must learn, because it simultaneously
controls GEMM efficiency, task granularity, communication volume and memory
pressure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TiledIndexSpace"]


@dataclass(frozen=True)
class TiledIndexSpace:
    """A contiguous index range ``[0, dimension)`` split into tiles.

    The last tile may be smaller than ``tile_size`` when the dimension is not
    an exact multiple of the tile size (exactly as in TAMM).
    """

    dimension: int
    tile_size: int

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError(f"dimension must be positive, got {self.dimension}.")
        if self.tile_size <= 0:
            raise ValueError(f"tile_size must be positive, got {self.tile_size}.")

    @property
    def n_tiles(self) -> int:
        """Number of tiles covering the dimension."""
        return -(-self.dimension // self.tile_size)

    @property
    def tile_sizes(self) -> np.ndarray:
        """Length of every tile; all ``tile_size`` except possibly the last."""
        sizes = np.full(self.n_tiles, self.tile_size, dtype=np.int64)
        remainder = self.dimension - (self.n_tiles - 1) * self.tile_size
        sizes[-1] = remainder
        return sizes

    @property
    def tile_offsets(self) -> np.ndarray:
        """Start offset of every tile."""
        return np.concatenate(([0], np.cumsum(self.tile_sizes)[:-1]))

    @property
    def mean_tile_size(self) -> float:
        """Average tile length (accounts for the ragged last tile)."""
        return self.dimension / self.n_tiles

    def tile_of(self, index: int) -> int:
        """Tile id containing a flat index."""
        if not 0 <= index < self.dimension:
            raise IndexError(f"index {index} out of range [0, {self.dimension}).")
        return index // self.tile_size

    def tile_bounds(self, tile: int) -> tuple[int, int]:
        """Half-open ``[start, stop)`` bounds of a tile."""
        if not 0 <= tile < self.n_tiles:
            raise IndexError(f"tile {tile} out of range [0, {self.n_tiles}).")
        start = tile * self.tile_size
        stop = min(start + self.tile_size, self.dimension)
        return start, stop

    def __len__(self) -> int:
        return self.n_tiles
