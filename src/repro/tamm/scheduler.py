"""Task scheduling / load-balance models.

Two fidelities are provided:

* :func:`analytic_makespan` — a closed-form estimate of the makespan of
  ``n_tasks`` roughly equal tasks on ``n_workers`` workers, using a
  balls-into-bins bound for the load imbalance.  This is the default used by
  dataset generation (thousands of configurations).
* :class:`SampledScheduler` — draws per-task durations and simulates TAMM's
  dynamic work-stealing-free round-robin assignment, giving a stochastic
  makespan.  Used by tests and the high-fidelity simulator mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import check_random_state

__all__ = ["analytic_makespan", "SampledScheduler"]


def analytic_makespan(
    n_tasks: int,
    task_time: float,
    n_workers: int,
    task_cv: float = 0.25,
) -> float:
    """Closed-form makespan of ``n_tasks`` tasks of mean duration ``task_time``.

    The ideal makespan is ``n_tasks * task_time / n_workers``.  Because tasks
    are assigned dynamically but have variable duration (coefficient of
    variation ``task_cv``) and the last wave of tasks leaves some workers
    idle, the realised makespan exceeds the ideal by an imbalance factor

    ``1 + sqrt(2 ln(W) / max(T/W, 1)) * (task_cv + 0.5)``

    (a balls-into-bins style bound on the maximum load), and can never be
    smaller than a single task's duration.
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive.")
    if n_workers <= 0:
        raise ValueError("n_workers must be positive.")
    if task_time < 0:
        raise ValueError("task_time must be non-negative.")

    ideal = n_tasks * task_time / n_workers
    tasks_per_worker = n_tasks / n_workers
    if tasks_per_worker >= 1.0:
        imbalance = 1.0 + np.sqrt(2.0 * np.log(max(n_workers, 2)) / tasks_per_worker) * (
            task_cv + 0.5
        )
        makespan = ideal * imbalance
    else:
        # Fewer tasks than workers: the makespan is one task (no pipelining).
        makespan = task_time
    return float(max(makespan, task_time))


@dataclass
class SampledScheduler:
    """Monte-Carlo makespan: sample task durations, assign greedily, take max.

    Durations are gamma-distributed around ``task_time`` with coefficient of
    variation ``task_cv``; assignment is longest-processing-time-first over
    the sampled durations, which approximates a dynamic task queue well when
    tasks per worker is modest.
    """

    task_cv: float = 0.25
    max_sampled_tasks: int = 200_000
    random_state: int | None = None

    def makespan(self, n_tasks: int, task_time: float, n_workers: int) -> float:
        if n_tasks <= 0 or n_workers <= 0:
            raise ValueError("n_tasks and n_workers must be positive.")
        if task_time < 0:
            raise ValueError("task_time must be non-negative.")
        if task_time == 0.0:
            return 0.0
        rng = check_random_state(self.random_state)

        # Subsample very large task sets: simulate a representative subset and
        # scale the aggregate work accordingly.
        n_sim = min(n_tasks, self.max_sampled_tasks)
        scale = n_tasks / n_sim

        cv = max(self.task_cv, 1e-6)
        shape = 1.0 / cv**2
        durations = rng.gamma(shape, task_time / shape, size=n_sim) * scale

        if n_sim <= n_workers:
            return float(durations.max())

        # Longest-processing-time-first greedy assignment.
        order = np.argsort(durations)[::-1]
        loads = np.zeros(n_workers)
        for d in durations[order]:
            loads[np.argmin(loads)] += d
        return float(loads.max())
