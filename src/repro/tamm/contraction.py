"""Task-level plan of a tiled tensor contraction.

For one CCSD contraction term, the plan works out how many block-level GEMM
tasks the runtime generates for a given tile size, and the flops, bytes moved
and scheduling overhead of each task.  These quantities feed the scheduler
model to produce the term's makespan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.ccsd_cost import ContractionTerm
from repro.chem.orbitals import ProblemSize
from repro.machines.spec import MachineSpec
from repro.tamm.tiling import TiledIndexSpace

__all__ = ["ContractionPlan", "plan_contraction"]

_BYTES_PER_WORD = 8
#: Blocks touched per task: two input blocks plus the accumulated output block.
_BLOCKS_PER_TASK = 3


@dataclass(frozen=True)
class ContractionPlan:
    """Execution plan of one contraction term at a fixed tile size."""

    term: ContractionTerm
    problem: ProblemSize
    tile_size: int
    n_tasks: int
    flops_per_task: float
    bytes_per_task: float

    @property
    def total_flops(self) -> float:
        return self.flops_per_task * self.n_tasks

    @property
    def total_bytes(self) -> float:
        return self.bytes_per_task * self.n_tasks

    def task_compute_time(self, machine: MachineSpec) -> float:
        """Seconds one GPU spends computing a single task."""
        per_gpu_flops = (
            machine.gpu.peak_fp64_flops
            * machine.sustained_fraction
            * machine.gemm_efficiency(self.tile_size)
        )
        return self.flops_per_task / per_gpu_flops

    def task_comm_time(self, machine: MachineSpec, n_nodes: int) -> float:
        """Seconds one task spends fetching remote blocks.

        Each GPU shares the node's injection bandwidth; only the remote
        fraction of the traffic (blocks living on other nodes) crosses the
        network.
        """
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive.")
        remote_fraction = 1.0 - 1.0 / n_nodes
        per_gpu_bandwidth = machine.node_injection_bytes_per_s / machine.gpus_per_node
        transfer = self.bytes_per_task * remote_fraction / per_gpu_bandwidth
        latency = _BLOCKS_PER_TASK * machine.network_latency_us * 1e-6
        return transfer + latency

    def task_overhead_time(self, machine: MachineSpec) -> float:
        """Task management overhead (scheduling, one-sided get setup, launch)."""
        return machine.task_overhead_us * 1e-6

    def task_time(self, machine: MachineSpec, n_nodes: int, comm_overlap: float = 0.5) -> float:
        """End-to-end time of one task.

        ``comm_overlap`` is the fraction of communication hidden behind
        computation (TAMM prefetches blocks for the next task while the
        current GEMM runs); the remainder is exposed.
        """
        compute = self.task_compute_time(machine)
        comm = self.task_comm_time(machine, n_nodes)
        exposed_comm = max(comm - comm_overlap * compute, 0.0)
        return compute + exposed_comm + self.task_overhead_time(machine)


def plan_contraction(
    term: ContractionTerm, problem: ProblemSize, tile_size: int
) -> ContractionPlan:
    """Build the task-level plan of ``term`` for ``problem`` at ``tile_size``.

    The number of tasks is the product of tile counts over every index of the
    contraction (``o_power`` occupied indices and ``v_power`` virtual ones);
    each task moves two input blocks and one output block whose volume is
    ``tile^rank`` words.
    """
    if tile_size <= 0:
        raise ValueError("tile_size must be positive.")
    occ_space = TiledIndexSpace(problem.n_occupied, min(tile_size, problem.n_occupied))
    vir_space = TiledIndexSpace(problem.n_virtual, min(tile_size, problem.n_virtual))

    n_tasks = occ_space.n_tiles**term.o_power * vir_space.n_tiles**term.v_power
    total_flops = term.flops(problem)
    flops_per_task = total_flops / n_tasks

    effective_occ_tile = min(tile_size, problem.n_occupied)
    effective_vir_tile = min(tile_size, problem.n_virtual)
    # Blocks mix occupied and virtual indices; use the geometric mean of the
    # two effective tile lengths as the representative block edge.
    block_edge = (effective_occ_tile * effective_vir_tile) ** 0.5
    block_words = block_edge**term.tensor_rank
    bytes_per_task = _BLOCKS_PER_TASK * block_words * _BYTES_PER_WORD

    return ContractionPlan(
        term=term,
        problem=problem,
        tile_size=int(tile_size),
        n_tasks=int(n_tasks),
        flops_per_task=float(flops_per_task),
        bytes_per_task=float(bytes_per_task),
    )
