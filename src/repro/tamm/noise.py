"""Run-to-run variability of measured wall times.

Leadership-class systems never give perfectly reproducible timings: network
contention from other jobs, OS jitter, GPU clock throttling and occasional
slow nodes perturb every measurement.  The paper observes that Frontier
timings are noticeably harder to predict than Aurora's; the machine specs
encode that through a larger ``noise_sigma`` and straggler probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.machines.spec import MachineSpec
from repro.ml.base import check_random_state

__all__ = ["NoiseModel"]


@dataclass
class NoiseModel:
    """Multiplicative log-normal noise plus occasional straggler slowdowns."""

    sigma: float
    straggler_probability: float = 0.0
    straggler_slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative.")
        if not 0.0 <= self.straggler_probability <= 1.0:
            raise ValueError("straggler_probability must be in [0, 1].")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1.")

    @classmethod
    def for_machine(cls, machine: MachineSpec) -> "NoiseModel":
        return cls(
            sigma=machine.noise_sigma,
            straggler_probability=machine.straggler_probability,
            straggler_slowdown=machine.straggler_slowdown,
        )

    def sample_factor(self, rng: Any = None, size: int | None = None) -> np.ndarray | float:
        """Multiplicative noise factor(s) to apply to a clean runtime."""
        rng = check_random_state(rng)
        n = 1 if size is None else size
        # Log-normal centred so the *median* equals the clean value.
        factors = np.exp(rng.normal(0.0, self.sigma, size=n))
        stragglers = rng.random(n) < self.straggler_probability
        factors = np.where(stragglers, factors * self.straggler_slowdown, factors)
        if size is None:
            return float(factors[0])
        return factors

    def apply(self, runtime: float, rng: Any = None) -> float:
        """Perturb a single clean runtime."""
        if runtime < 0:
            raise ValueError("runtime must be non-negative.")
        return float(runtime * self.sample_factor(rng))
