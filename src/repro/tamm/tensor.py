"""Block-distributed tensor layout model.

Only layout metadata is modelled (block counts, block sizes, bytes per node),
not actual numerical data: the simulator needs memory footprints and block
volumes, never the tensor values themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from operator import mul
from typing import Sequence

import numpy as np

from repro.tamm.tiling import TiledIndexSpace

__all__ = ["TiledTensor"]

_BYTES_PER_WORD = 8


@dataclass(frozen=True)
class TiledTensor:
    """A dense tensor over a tuple of tiled index spaces, block-distributed
    round-robin over nodes (TAMM's default global-array style distribution)."""

    spaces: tuple[TiledIndexSpace, ...]
    name: str = "tensor"

    def __post_init__(self) -> None:
        if len(self.spaces) == 0:
            raise ValueError("A tensor needs at least one index space.")

    @property
    def rank(self) -> int:
        return len(self.spaces)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(s.dimension for s in self.spaces)

    @property
    def n_elements(self) -> int:
        return int(reduce(mul, self.shape, 1))

    @property
    def n_blocks(self) -> int:
        return int(reduce(mul, (s.n_tiles for s in self.spaces), 1))

    @property
    def total_bytes(self) -> float:
        return float(self.n_elements) * _BYTES_PER_WORD

    @property
    def max_block_elements(self) -> int:
        """Elements of the largest (full-tile) block."""
        return int(reduce(mul, (min(s.tile_size, s.dimension) for s in self.spaces), 1))

    @property
    def max_block_bytes(self) -> float:
        return float(self.max_block_elements) * _BYTES_PER_WORD

    @property
    def mean_block_bytes(self) -> float:
        return self.total_bytes / self.n_blocks

    def bytes_per_node(self, n_nodes: int) -> float:
        """Storage required on each node under a balanced block distribution.

        The imbalance of distributing ``n_blocks`` blocks over ``n_nodes``
        nodes is accounted for by the ceiling on blocks-per-node.
        """
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive.")
        blocks_per_node = -(-self.n_blocks // n_nodes)
        return blocks_per_node * self.mean_block_bytes

    def block_shape(self, block_index: Sequence[int]) -> tuple[int, ...]:
        """Shape of a specific block identified by per-dimension tile ids."""
        if len(block_index) != self.rank:
            raise ValueError(f"block_index must have {self.rank} entries.")
        shape = []
        for space, tile in zip(self.spaces, block_index):
            start, stop = space.tile_bounds(int(tile))
            shape.append(stop - start)
        return tuple(shape)

    def block_sizes_summary(self) -> dict[str, float]:
        """Summary statistics of block byte sizes (useful for diagnostics)."""
        per_dim = [s.tile_sizes for s in self.spaces]
        # Outer product of per-dimension tile lengths gives every block volume.
        volumes = reduce(np.multiply.outer, per_dim).astype(float).ravel() * _BYTES_PER_WORD
        return {
            "min": float(volumes.min()),
            "max": float(volumes.max()),
            "mean": float(volumes.mean()),
            "total": float(volumes.sum()),
        }
