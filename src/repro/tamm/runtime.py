"""End-to-end model of one CCSD iteration executed by a TAMM-style runtime.

The simulator composes the chemistry cost model (per-term flops/memory), the
contraction plans (task counts and per-task costs at a tile size), the
scheduler model (makespan with load imbalance) and the machine spec into a
single wall-time estimate with a per-component breakdown.  It also enforces
the memory-feasibility constraints that determine the minimum node count for
a problem size and the maximum usable tile size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import numpy as np

from repro.chem.ccsd_cost import CCSD_TERMS, ContractionTerm, ccsd_memory_bytes
from repro.chem.orbitals import ProblemSize
from repro.machines.spec import MachineSpec
from repro.ml.base import check_random_state
from repro.tamm.contraction import ContractionPlan, plan_contraction
from repro.tamm.noise import NoiseModel
from repro.tamm.scheduler import SampledScheduler, analytic_makespan

__all__ = ["TammRuntimeSimulator", "IterationBreakdown", "InfeasibleConfigurationError"]

#: Fraction of node GPU memory usable for distributed tensors (the rest is
#: runtime buffers, MPI/GA internals and kernel workspaces).
_USABLE_MEMORY_FRACTION = 0.85
#: Per-GPU workspace available to hold the blocks of in-flight tasks.
_TASK_WORKSPACE_BYTES = 24e9
#: Blocks resident per in-flight task (two inputs, one output, one prefetch).
_RESIDENT_BLOCKS = 4


class InfeasibleConfigurationError(ValueError):
    """Raised when a (problem, nodes, tile) configuration cannot run.

    Mirrors the out-of-memory / invalid-tiling failures a user would hit on
    the real machine: not enough aggregate GPU memory for the distributed
    tensors, or tile blocks too large for the per-GPU workspace.
    """


@dataclass
class IterationBreakdown:
    """Wall-time decomposition of one simulated CCSD iteration."""

    problem: ProblemSize
    n_nodes: int
    tile_size: int
    machine: str
    compute_time: float
    comm_time: float
    overhead_time: float
    imbalance_time: float
    fixed_time: float
    total_time: float
    noisy_time: float
    n_tasks: int
    per_term: dict[str, float] = field(default_factory=dict)

    @property
    def node_seconds(self) -> float:
        """Resource usage of the iteration in node-seconds."""
        return self.noisy_time * self.n_nodes

    @property
    def node_hours(self) -> float:
        """Resource usage of the iteration in node-hours."""
        return self.node_seconds / 3600.0


class TammRuntimeSimulator:
    """Simulate CCSD iteration wall times on a machine.

    Parameters
    ----------
    machine:
        Hardware/system model (:data:`repro.machines.AURORA` or
        :data:`repro.machines.FRONTIER`).
    terms:
        Contraction-term decomposition of the iteration; defaults to
        :data:`repro.chem.ccsd_cost.CCSD_TERMS`.
    comm_overlap:
        Fraction of per-task communication hidden behind computation.
    fidelity:
        ``"analytic"`` (closed-form makespans, default) or ``"sampled"``
        (Monte-Carlo task durations via :class:`SampledScheduler`).
    """

    def __init__(
        self,
        machine: MachineSpec,
        terms: Iterable[ContractionTerm] = CCSD_TERMS,
        comm_overlap: float = 0.5,
        fidelity: str = "analytic",
        task_cv: float = 0.25,
    ) -> None:
        if not 0.0 <= comm_overlap <= 1.0:
            raise ValueError("comm_overlap must be in [0, 1].")
        if fidelity not in ("analytic", "sampled"):
            raise ValueError("fidelity must be 'analytic' or 'sampled'.")
        self.machine = machine
        self.terms = tuple(terms)
        self.comm_overlap = comm_overlap
        self.fidelity = fidelity
        self.task_cv = task_cv
        self.noise = NoiseModel.for_machine(machine)

    # ------------------------------------------------------------------ memory
    def min_nodes(self, problem: ProblemSize) -> int:
        """Smallest node count whose aggregate GPU memory holds the tensors."""
        total = ccsd_memory_bytes(problem)
        per_node = self.machine.node_memory_bytes * _USABLE_MEMORY_FRACTION
        return max(1, int(math.ceil(total / per_node)))

    def max_tile_size(self, problem: ProblemSize) -> int:
        """Largest tile size whose task blocks fit in the per-GPU workspace."""
        limit = (_TASK_WORKSPACE_BYTES / (_RESIDENT_BLOCKS * 8.0)) ** 0.25
        return int(min(limit, problem.n_orbitals))

    def check_feasible(self, problem: ProblemSize, n_nodes: int, tile_size: int) -> None:
        """Raise :class:`InfeasibleConfigurationError` if the run would fail."""
        if n_nodes < 1:
            raise InfeasibleConfigurationError("At least one node is required.")
        if tile_size < 1:
            raise InfeasibleConfigurationError("Tile size must be at least 1.")
        needed = self.min_nodes(problem)
        if n_nodes < needed:
            raise InfeasibleConfigurationError(
                f"{problem} needs at least {needed} {self.machine.name} nodes for its "
                f"distributed tensors; got {n_nodes}."
            )
        max_tile = self.max_tile_size(problem)
        if tile_size > max_tile:
            raise InfeasibleConfigurationError(
                f"Tile size {tile_size} exceeds the per-GPU workspace limit of "
                f"{max_tile} for {problem} on {self.machine.name}."
            )

    def is_feasible(self, problem: ProblemSize, n_nodes: int, tile_size: int) -> bool:
        try:
            self.check_feasible(problem, n_nodes, tile_size)
        except InfeasibleConfigurationError:
            return False
        return True

    # ------------------------------------------------------------------ timing
    def _term_makespan(
        self,
        plan: ContractionPlan,
        n_nodes: int,
        rng: Any,
    ) -> tuple[float, float, float, float]:
        """Makespan of one term plus its compute/comm/overhead decomposition."""
        machine = self.machine
        n_workers = n_nodes * machine.gpus_per_node

        compute = plan.task_compute_time(machine)
        comm = plan.task_comm_time(machine, n_nodes)
        overhead = plan.task_overhead_time(machine)
        exposed_comm = max(comm - self.comm_overlap * compute, 0.0)
        task_time = compute + exposed_comm + overhead

        if self.fidelity == "sampled":
            scheduler = SampledScheduler(
                task_cv=self.task_cv, random_state=int(rng.integers(0, 2**31 - 1))
            )
            makespan = scheduler.makespan(plan.n_tasks, task_time, n_workers)
        else:
            makespan = analytic_makespan(plan.n_tasks, task_time, n_workers, self.task_cv)

        # Split the makespan proportionally into components for the breakdown;
        # whatever exceeds the ideal work/worker time is attributed to imbalance.
        ideal = plan.n_tasks * task_time / n_workers
        scale = min(ideal, makespan) / max(task_time, 1e-30)
        compute_part = compute * scale
        comm_part = exposed_comm * scale
        overhead_part = overhead * scale
        imbalance_part = max(makespan - ideal, 0.0)
        return compute_part, comm_part, overhead_part, imbalance_part

    def _fixed_costs(self, problem: ProblemSize, n_nodes: int) -> float:
        """Per-iteration costs independent of the contraction work.

        Three components:

        * a serial base cost (amplitude/DIIS updates, residual norms,
          poorly-parallel intermediate construction) — the wall-time floor
          visible in the measured data (no CCSD iteration on either machine
          completes in under ~15-25 s regardless of allocation size);
        * T2-sized traffic for the amplitude update, which shrinks with the
          allocation;
        * synchronisation / one-sided completion costs that grow with the
          allocation size, which is what eventually makes adding more nodes
          counter-productive and produces an interior shortest-time optimum.
        """
        machine = self.machine
        t2_bytes = 8.0 * problem.t2_amplitudes
        # Amplitude update + DIIS touch the distributed T2 a handful of times.
        local_traffic = 6.0 * t2_bytes / n_nodes / machine.node_injection_bytes_per_s
        collectives = 40.0 * machine.network_latency_us * 1e-6 * math.log2(n_nodes + 1)
        sync = machine.sync_cost_per_node_s * n_nodes
        return machine.iteration_base_s + local_traffic + collectives + sync

    def simulate_iteration(
        self,
        problem: ProblemSize,
        n_nodes: int,
        tile_size: int,
        rng: Any = None,
        apply_noise: bool = True,
    ) -> IterationBreakdown:
        """Simulate one CCSD iteration and return its wall-time breakdown."""
        self.check_feasible(problem, n_nodes, tile_size)
        rng = check_random_state(rng)

        compute = comm = overhead = imbalance = 0.0
        n_tasks_total = 0
        per_term: dict[str, float] = {}
        for term in self.terms:
            plan = plan_contraction(term, problem, tile_size)
            c, m, o, i = self._term_makespan(plan, n_nodes, rng)
            term_time = c + m + o + i
            per_term[term.name] = term_time
            compute += c
            comm += m
            overhead += o
            imbalance += i
            n_tasks_total += plan.n_tasks

        fixed = self._fixed_costs(problem, n_nodes)
        total = compute + comm + overhead + imbalance + fixed
        noisy = self.noise.apply(total, rng) if apply_noise else total

        return IterationBreakdown(
            problem=problem,
            n_nodes=int(n_nodes),
            tile_size=int(tile_size),
            machine=self.machine.name,
            compute_time=compute,
            comm_time=comm,
            overhead_time=overhead,
            imbalance_time=imbalance,
            fixed_time=fixed,
            total_time=total,
            noisy_time=noisy,
            n_tasks=n_tasks_total,
            per_term=per_term,
        )

    def predict_runtime(
        self,
        problem: ProblemSize,
        n_nodes: int,
        tile_size: int,
        rng: Any = None,
        apply_noise: bool = True,
    ) -> float:
        """Convenience wrapper returning only the (noisy) wall time in seconds."""
        return self.simulate_iteration(
            problem, n_nodes, tile_size, rng=rng, apply_noise=apply_noise
        ).noisy_time

    # ------------------------------------------------------------------ sweeps
    def node_range(
        self,
        problem: ProblemSize,
        candidate_nodes: Optional[Iterable[int]] = None,
        min_tasks_per_worker: float = 0.5,
    ) -> list[int]:
        """Node counts "of typical use" for a problem size.

        Lower bound: memory feasibility.  Upper bound: allocations where the
        dominant contraction still provides at least ``min_tasks_per_worker``
        tasks per GPU at a mid-range tile size (users do not run small
        problems on enormous allocations).
        """
        lo = self.min_nodes(problem)
        reference_tile = 80
        dominant = max(self.terms, key=lambda t: t.flops(problem))
        plan = plan_contraction(dominant, problem, reference_tile)
        hi_by_tasks = max(
            lo, int(plan.n_tasks / (min_tasks_per_worker * self.machine.gpus_per_node))
        )
        hi = min(self.machine.max_nodes, hi_by_tasks)
        if candidate_nodes is None:
            candidate_nodes = _DEFAULT_NODE_GRID
        nodes = sorted({int(n) for n in candidate_nodes if lo <= int(n) <= hi})
        if not nodes:
            nodes = [lo]
        return nodes


#: Allocation sizes typically requested by application users (union of the
#: node counts appearing in the paper's result tables plus common job sizes).
_DEFAULT_NODE_GRID: tuple[int, ...] = (
    5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 60, 65, 70, 75, 80, 90, 95, 100,
    110, 120, 130, 140, 150, 160, 185, 200, 220, 240, 260, 280, 300, 320,
    350, 400, 450, 500, 600, 700, 800, 900,
)
