"""ALCF Aurora node model.

Aurora nodes pair two Intel Xeon Max CPUs with six Intel Data Center GPU Max
1550 accelerators (each with 128 GB HBM) and eight HPE Slingshot-11 NICs.
Numbers below are public peak figures; the sustained fraction and overheads
are calibrated so simulated CCSD iteration times land in the same range as
the paper's Aurora measurements (tens to hundreds of seconds).
"""

from repro.machines.spec import GPUSpec, MachineSpec

__all__ = ["AURORA"]

AURORA = MachineSpec(
    name="aurora",
    gpu=GPUSpec(
        name="Intel Data Center GPU Max 1550",
        peak_fp64_tflops=52.0,
        memory_gb=128.0,
        memory_bandwidth_gbs=3276.0,
    ),
    gpus_per_node=6,
    cpu_memory_gb=1024.0,
    injection_bandwidth_gbs=200.0,
    network_latency_us=2.0,
    sustained_fraction=0.055,
    gemm_halfpoint_tile=42.0,
    task_overhead_us=900.0,
    iteration_base_s=8.0,
    sync_cost_per_node_s=0.18,
    noise_sigma=0.015,
    straggler_probability=0.01,
    straggler_slowdown=1.10,
    max_nodes=1024,
    description="ALCF Aurora: 2x Xeon Max + 6x Intel GPU Max 1550, Slingshot-11",
)
