"""Machine models of the two DOE leadership-class systems used in the paper."""

from repro.machines.spec import GPUSpec, MachineSpec
from repro.machines.aurora import AURORA
from repro.machines.frontier import FRONTIER


def get_machine(name: str) -> MachineSpec:
    """Look up a machine spec by name (case-insensitive)."""
    key = name.lower()
    if key == "aurora":
        return AURORA
    if key == "frontier":
        return FRONTIER
    raise ValueError(f"Unknown machine {name!r}; expected 'aurora' or 'frontier'.")


__all__ = ["GPUSpec", "MachineSpec", "AURORA", "FRONTIER", "get_machine"]
