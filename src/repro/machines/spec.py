"""Hardware descriptions used by the performance simulator.

The specs capture only what the runtime model needs: per-GPU double-precision
throughput and memory, per-node injection bandwidth, messaging latency, how
efficiently GEMMs of a given tile size run, and how noisy measured runtimes
are on the machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GPUSpec", "MachineSpec"]


@dataclass(frozen=True)
class GPUSpec:
    """A single accelerator device (or GCD/tile treated as one device)."""

    name: str
    peak_fp64_tflops: float
    memory_gb: float
    memory_bandwidth_gbs: float

    @property
    def peak_fp64_flops(self) -> float:
        return self.peak_fp64_tflops * 1e12

    @property
    def memory_bytes(self) -> float:
        return self.memory_gb * 1e9


@dataclass(frozen=True)
class MachineSpec:
    """A supercomputer node architecture plus system-level parameters.

    Attributes
    ----------
    name:
        Machine name ("aurora", "frontier").
    gpu:
        Per-device spec.
    gpus_per_node:
        Number of devices the runtime schedules work onto per node.
    cpu_memory_gb:
        Host DRAM per node (used as spill space for distributed tensors).
    injection_bandwidth_gbs:
        Effective per-node network injection bandwidth.
    network_latency_us:
        One-sided get/put latency.
    sustained_fraction:
        Application-level sustained fraction of peak flops for tensor
        contraction workloads (covers kernel inefficiency beyond tile-size
        effects, data movement on the node, CPU work, ...).
    gemm_halfpoint_tile:
        Tile size at which GEMM efficiency reaches 50 % of its asymptote —
        controls how badly small tiles underutilise the accelerators.
    task_overhead_us:
        Per-task scheduling/launch/one-sided-get overhead of the task runtime.
    iteration_base_s:
        Fixed serial cost of one CCSD iteration (amplitude updates, DIIS,
        residual norms, intermediate construction with poor parallelism).
        This is the wall-time floor visible in the measured data.
    sync_cost_per_node_s:
        Runtime synchronisation / one-sided completion cost that grows with
        the allocation size (GA_Sync-style flushes over every remote
        endpoint); this is what eventually makes adding nodes counter-
        productive and creates the interior shortest-time optimum.
    noise_sigma:
        Log-normal run-to-run variability of measured wall times.
    straggler_probability, straggler_slowdown:
        Probability and magnitude of occasional slow nodes (more common on
        Frontier, which the paper observes to be harder to predict).
    max_nodes:
        Largest allocation size present in the training data sweeps.
    """

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    cpu_memory_gb: float
    injection_bandwidth_gbs: float
    network_latency_us: float
    sustained_fraction: float
    gemm_halfpoint_tile: float
    task_overhead_us: float
    iteration_base_s: float
    sync_cost_per_node_s: float
    noise_sigma: float
    straggler_probability: float
    straggler_slowdown: float
    max_nodes: int
    description: str = field(default="", compare=False)

    # ------------------------------------------------------------------ derived
    @property
    def node_peak_flops(self) -> float:
        """Aggregate peak FP64 flops of one node."""
        return self.gpus_per_node * self.gpu.peak_fp64_flops

    @property
    def node_memory_bytes(self) -> float:
        """GPU memory available to distributed tensors on one node."""
        return self.gpus_per_node * self.gpu.memory_bytes

    @property
    def node_injection_bytes_per_s(self) -> float:
        return self.injection_bandwidth_gbs * 1e9

    def gemm_efficiency(self, tile_size: float) -> float:
        """Fraction of peak a tiled contraction kernel achieves at ``tile_size``.

        Uses a cubic saturation curve in the tile edge length: tiny tiles are
        launch/latency bound, large tiles approach the sustained asymptote.
        """
        if tile_size <= 0:
            raise ValueError("tile_size must be positive.")
        t3 = float(tile_size) ** 3
        h3 = float(self.gemm_halfpoint_tile) ** 3
        return t3 / (t3 + h3)

    def effective_node_flops(self, tile_size: float) -> float:
        """Sustained per-node flop rate for a given tile size."""
        return self.node_peak_flops * self.sustained_fraction * self.gemm_efficiency(tile_size)
