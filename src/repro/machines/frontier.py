"""OLCF Frontier node model.

Frontier nodes combine one AMD EPYC 7A53 CPU with four AMD Instinct MI250X
accelerators (eight GCDs, 128 GB HBM2e per MI250X) and four Slingshot-11
NICs.  The higher noise/straggler settings reflect the paper's observation
that Frontier runtimes are harder to predict than Aurora's.
"""

from repro.machines.spec import GPUSpec, MachineSpec

__all__ = ["FRONTIER"]

FRONTIER = MachineSpec(
    name="frontier",
    gpu=GPUSpec(
        name="AMD Instinct MI250X",
        peak_fp64_tflops=53.0,
        memory_gb=128.0,
        memory_bandwidth_gbs=3276.0,
    ),
    gpus_per_node=4,
    cpu_memory_gb=512.0,
    injection_bandwidth_gbs=100.0,
    network_latency_us=2.5,
    sustained_fraction=0.065,
    gemm_halfpoint_tile=46.0,
    task_overhead_us=1200.0,
    iteration_base_s=12.0,
    sync_cost_per_node_s=0.12,
    noise_sigma=0.06,
    straggler_probability=0.06,
    straggler_slowdown=1.25,
    max_nodes=1024,
    description="OLCF Frontier: 1x EPYC 7A53 + 4x MI250X, Slingshot-11",
)
