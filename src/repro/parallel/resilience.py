"""Shared resilience policies for every wire client (ISSUE 9).

PRs 3/5/7/8 each grew an ad-hoc failure path: the memo client did
one-reconnect-then-fixed-backoff, the serve client did doubling backoff
plus a single ring pass, and the cluster worker had its own reconnect
window.  This module unifies them behind two small, deterministic-under-
seed primitives:

* :class:`RetryPolicy` — capped jittered exponential backoff with a
  per-operation retry budget and an optional overall deadline.  A policy
  is immutable and shareable; each operation derives a private
  :class:`RetryState` (``policy.start()``) whose ``note_failure()``
  returns either the next jittered delay or ``None`` when the budget or
  deadline is spent.
* :class:`HealthTracker` — per-endpoint EWMA of failures driving a
  closed / open / half-open circuit.  Overloads are counted separately
  and **never** trip the circuit: a shedding replica is a healthy
  replica (the shed-vs-dead distinction).  Open circuits cool down for a
  jittered, per-consecutive-trip doubling window, then admit exactly one
  half-open probe; a probe success closes the circuit, a probe failure
  re-opens it with a doubled window.

Determinism: all jitter is drawn from a ``random.Random`` owned by the
caller.  Seed it explicitly (``retry_seed=``), or set
``REPRO_RETRY_SEED`` in the environment, and every retry sequence —
delays, cooldowns, probe timings — replays identically.  Unseeded, the
RNG uses OS entropy as usual.

Nothing here sleeps or touches sockets; callers own their clocks and
waits, which keeps the engine trivially testable with a fake clock.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.obs import trace as obs_trace

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "HealthTracker",
    "RETRY_SEED_ENV",
    "RetryPolicy",
    "RetryState",
    "policy_rng",
]

RETRY_SEED_ENV = "REPRO_RETRY_SEED"

#: Circuit states (string-valued so they serialise straight into stats).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Safety valve: a half-open probe claim that never reported back (the
#: prober crashed between claim and request) releases after this long so
#: the endpoint cannot stay unprobeable forever.
_PROBE_STALE_S = 60.0


def policy_rng(seed: object = None) -> random.Random:
    """A jitter RNG, deterministic under a seed.

    An explicit ``seed`` wins; otherwise ``REPRO_RETRY_SEED`` from the
    environment; otherwise OS entropy.  Seeds are stringified first so
    ``7`` and ``"7"`` draw the same sequence.
    """
    if seed is None:
        raw = os.environ.get(RETRY_SEED_ENV, "").strip()
        if raw:
            seed = raw
    if seed is None:
        return random.Random()
    return random.Random(str(seed))


@dataclass(frozen=True)
class RetryPolicy:
    """Capped jittered exponential backoff with a budget and a deadline.

    ``retries`` is the number of *additional* attempts after the first
    failure (``None`` = unbounded, rely on ``deadline``).  The raw delay
    before retry *n* (1-based) is ``min(max_delay, base_delay *
    multiplier ** (n - 1))``; equal jitter then scales it by a uniform
    draw from ``[1 - jitter, 1]``, so ``jitter=0.5`` yields delays in
    ``[raw / 2, raw]`` and ``jitter=0`` is fully deterministic without a
    seed.  ``deadline`` bounds the whole operation: once it has elapsed
    (measured from ``start()``), ``note_failure()`` returns ``None``
    regardless of remaining budget, and any delay is clipped to the time
    remaining.
    """

    retries: Optional[int] = 2
    base_delay: float = 0.5
    max_delay: float = 30.0
    multiplier: float = 2.0
    jitter: float = 0.5
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.retries is not None and self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay {self.max_delay} < base_delay {self.base_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")

    def delay(self, failures: int, rng: Optional[random.Random] = None) -> float:
        """The jittered delay after the ``failures``-th failure (1-based)."""
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (failures - 1))
        if rng is None or self.jitter <= 0.0:
            return raw
        return raw * (1.0 - self.jitter * rng.random())

    def start(
        self,
        rng: Optional[random.Random] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "RetryState":
        """Begin one operation: a private failure counter and deadline."""
        return RetryState(self, rng=rng, clock=clock)


class RetryState:
    """Per-operation retry bookkeeping derived from a :class:`RetryPolicy`.

    The canonical loop::

        state = policy.start(rng)
        while True:
            try:
                return op()
            except RetryableError:
                delay = state.note_failure()
                if delay is None:
                    raise          # budget or deadline spent
                time.sleep(delay)
    """

    def __init__(
        self,
        policy: RetryPolicy,
        rng: Optional[random.Random] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy
        self._rng = rng
        self._clock = clock
        self.failures = 0
        self.started = clock()

    def note_failure(self) -> Optional[float]:
        """Record a failure; return the delay before the next attempt.

        Returns ``None`` once the retry budget or the overall deadline is
        spent — the caller must stop retrying and surface the error.
        """
        self.failures += 1
        policy = self.policy
        if policy.retries is not None and self.failures > policy.retries:
            return None
        delay = policy.delay(self.failures, self._rng)
        if policy.deadline is not None:
            remaining = policy.deadline - (self._clock() - self.started)
            if remaining <= 0.0:
                return None
            delay = min(delay, remaining)
        # Every wire client funnels its retry sleeps through here, so this
        # one annotation charges backoff time to the live trace span for
        # all of them (serve client, memo client, cluster worker redial).
        obs_trace.annotate("backoff_sleep", delay)
        return delay

    @property
    def exhausted(self) -> bool:
        policy = self.policy
        if policy.retries is not None and self.failures > policy.retries:
            return True
        if policy.deadline is not None:
            return self._clock() - self.started >= policy.deadline
        return False


@dataclass
class _Endpoint:
    state: str = CLOSED
    ewma: float = 0.0
    trips: int = 0  # consecutive trips since the last close
    open_until: float = 0.0
    probing: bool = False
    probe_at: float = 0.0
    successes: int = 0
    failures: int = 0
    overloads: int = 0
    trips_total: int = 0
    last_failure: Optional[float] = None
    last_success: Optional[float] = None
    last_overload: Optional[float] = None


class HealthTracker:
    """Per-endpoint failure EWMA driving a closed/open/half-open circuit.

    * ``record_failure`` folds a 1 into the EWMA (``ewma = alpha + (1 -
      alpha) * ewma``); when it crosses ``trip_threshold`` the circuit
      **opens** for a jittered cooldown drawn from the ``cooldown``
      policy at the endpoint's consecutive-trip count — so back-to-back
      trips double the window, exactly the old per-client behaviour, now
      shared.  The defaults (``alpha=0.7``, ``trip_threshold=0.5``) trip
      on the first recorded failure, matching the fail-fast contract the
      serve/memo tests pin.
    * ``record_success`` decays the EWMA and, from half-open (or open),
      **closes** the circuit and resets the consecutive-trip count.
    * ``record_overload`` only counts: shedding is healthy behaviour and
      must never remove a replica from the ring.
    * After the cooldown the circuit is **half-open**: ``routable()``
      stays ``False`` (it re-enters the ring only on probe success) but
      ``claim_probe()`` grants exactly one caller the trial request.

    ``generation`` bumps on every state transition, so callers can cache
    derived structures (the serve client's consistent-hash ring) and
    rebuild only when membership actually changed.  All methods are
    thread-safe; the clock is injectable for tests.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.7,
        trip_threshold: float = 0.5,
        cooldown: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 < trip_threshold <= 1.0:
            raise ValueError(
                f"trip_threshold must be in (0, 1], got {trip_threshold}"
            )
        self.alpha = alpha
        self.trip_threshold = trip_threshold
        self.cooldown = cooldown or RetryPolicy(
            retries=None, base_delay=0.5, max_delay=30.0, jitter=0.5
        )
        self._rng = rng if rng is not None else policy_rng()
        self._clock = clock
        self._lock = threading.Lock()
        self._endpoints: Dict[str, _Endpoint] = {}
        self._generation = 0

    # -- internals ---------------------------------------------------

    def _get(self, name: str) -> _Endpoint:
        ep = self._endpoints.get(name)
        if ep is None:
            ep = self._endpoints[name] = _Endpoint()
        return ep

    def _refresh(self, ep: _Endpoint, now: float) -> None:
        if ep.state == OPEN and now >= ep.open_until:
            ep.state = HALF_OPEN
            ep.probing = False
            self._generation += 1

    def _trip(self, ep: _Endpoint, now: float) -> None:
        ep.trips += 1
        ep.trips_total += 1
        ep.state = OPEN
        ep.probing = False
        ep.open_until = now + self.cooldown.delay(ep.trips, self._rng)
        self._generation += 1

    # -- recording ---------------------------------------------------

    def record_success(self, name: str) -> None:
        with self._lock:
            now = self._clock()
            ep = self._get(name)
            self._refresh(ep, now)
            ep.successes += 1
            ep.last_success = now
            ep.ewma *= 1.0 - self.alpha
            if ep.state != CLOSED:
                ep.state = CLOSED
                ep.trips = 0
                ep.ewma = 0.0
                ep.probing = False
                self._generation += 1

    def record_failure(self, name: str) -> None:
        with self._lock:
            now = self._clock()
            ep = self._get(name)
            self._refresh(ep, now)
            ep.failures += 1
            ep.last_failure = now
            ep.ewma = self.alpha + (1.0 - self.alpha) * ep.ewma
            if ep.state == HALF_OPEN or (
                ep.state == CLOSED and ep.ewma >= self.trip_threshold
            ):
                self._trip(ep, now)

    def record_overload(self, name: str) -> None:
        with self._lock:
            ep = self._get(name)
            ep.overloads += 1
            ep.last_overload = self._clock()

    # -- querying ----------------------------------------------------

    def state(self, name: str) -> str:
        with self._lock:
            ep = self._get(name)
            self._refresh(ep, self._clock())
            return ep.state

    def routable(self, name: str) -> bool:
        """True when the endpoint belongs in the routing ring (closed)."""
        return self.state(name) == CLOSED

    def claim_probe(self, name: str) -> bool:
        """Claim the single half-open trial request for ``name``.

        Returns ``True`` for exactly one caller per half-open window; the
        claim releases when the probe's outcome is recorded (or after
        ``_PROBE_STALE_S`` if the prober vanished).
        """
        with self._lock:
            now = self._clock()
            ep = self._get(name)
            self._refresh(ep, now)
            if ep.state != HALF_OPEN:
                return False
            if ep.probing and now - ep.probe_at < _PROBE_STALE_S:
                return False
            ep.probing = True
            ep.probe_at = now
            return True

    def open_remaining(self, name: str) -> float:
        """Seconds of cooldown left (0.0 unless the circuit is open)."""
        with self._lock:
            ep = self._get(name)
            now = self._clock()
            self._refresh(ep, now)
            if ep.state != OPEN:
                return 0.0
            return max(0.0, ep.open_until - now)

    @property
    def generation(self) -> int:
        """Bumps on every circuit transition; cheap cache-invalidation key."""
        with self._lock:
            now = self._clock()
            for ep in self._endpoints.values():
                self._refresh(ep, now)
            return self._generation

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Operator-facing view: circuit state, counters, failure ages."""
        with self._lock:
            now = self._clock()
            out: Dict[str, Dict[str, object]] = {}
            for name, ep in self._endpoints.items():
                self._refresh(ep, now)
                out[name] = {
                    "state": ep.state,
                    "failure_ewma": round(ep.ewma, 4),
                    "successes": ep.successes,
                    "failures": ep.failures,
                    "overloads": ep.overloads,
                    "trips": ep.trips_total,
                    "last_failure_age_s": (
                        None
                        if ep.last_failure is None
                        else round(now - ep.last_failure, 3)
                    ),
                    "last_success_age_s": (
                        None
                        if ep.last_success is None
                        else round(now - ep.last_success, 3)
                    ),
                    "open_remaining_s": (
                        round(max(0.0, ep.open_until - now), 3)
                        if ep.state == OPEN
                        else 0.0
                    ),
                }
            return out
