"""Named executor registry behind :class:`~repro.parallel.backend.ParallelMap`.

`ParallelMap` used to hard-wire its two execution strategies (a serial loop
and a :class:`~concurrent.futures.ProcessPoolExecutor` fan-out).  This module
turns them into *named*, registered executors so backends are pluggable
without touching the search/CV/AL call sites:

* ``serial`` — the plain in-process loop; always available, supports any
  function/task, and is the fallback every other executor degrades to.
* ``process`` — the process-pool executor (the previous behaviour and still
  the default for ``n_jobs > 1``); workers are initialised with the
  parent's memo-store location and flush statistics after every task.

Selection order: an explicit ``executor=`` argument to ``ParallelMap`` /
``parallel_map`` wins, then the ``REPRO_EXECUTOR`` environment variable,
then the ``process`` default.  An unknown name raises ``ValueError`` listing
the registered executors — a typo in ``REPRO_EXECUTOR`` should fail loudly,
not silently run serial.

Executor contract:

* :meth:`Executor.map` receives the task list, the submission ``order`` (a
  permutation of task indices, heaviest first) and the resolved worker
  count; it must return results **in task order** and let task exceptions
  propagate unchanged.
* :meth:`Executor.supports` is a pre-flight check; returning ``False``
  (e.g. un-picklable closures for a process pool) sends the work down the
  serial path instead.
* An executor that cannot run at all (dead pool, unreachable cluster)
  raises :class:`ExecutorUnavailableError`; ``ParallelMap`` recomputes
  serially, which is always bit-identical.

Distributed backends slot in by registering a class with
:func:`register_executor` — the task model (self-contained, picklable,
seed-carrying tasks) already satisfies their requirements.  The bundled
``cluster`` executor (:mod:`repro.parallel.cluster`) is registered lazily:
naming it imports the module on demand, so the registry stays import-cycle
free and sessions that never go distributed never pay for it.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence, Type

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "ExecutorUnavailableError",
    "EXECUTOR_ENV_VAR",
    "DEFAULT_EXECUTOR",
    "register_executor",
    "get_executor",
    "available_executors",
    "resolve_executor",
]

#: Environment variable naming the executor used for parallel regions.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: Executor used when neither the call site nor the environment names one.
DEFAULT_EXECUTOR = "process"


class ExecutorUnavailableError(RuntimeError):
    """The executor's infrastructure failed (not a task failure).

    ``ParallelMap`` reacts by recomputing the whole batch serially; a task
    exception, by contrast, must propagate to the caller unchanged.
    """


class Executor:
    """Interface for a ``ParallelMap`` execution backend."""

    #: Registry name; set by subclasses.
    name: str = "?"

    def supports(self, fn: Callable[[Any], Any], tasks: list[Any]) -> bool:
        """Pre-flight check; ``False`` routes the batch to the serial path."""
        return True

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: list[Any],
        *,
        order: Sequence[int],
        n_workers: int,
    ) -> list[Any]:
        """Run every task, returning results in task order."""
        raise NotImplementedError


class SerialExecutor(Executor):
    """The plain in-process loop; the universal fallback."""

    name = "serial"

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: list[Any],
        *,
        order: Sequence[int],
        n_workers: int,
    ) -> list[Any]:
        return [fn(task) for task in tasks]


class ProcessExecutor(Executor):
    """Process-pool fan-out (the default for ``n_jobs > 1``).

    Workers are initialised with the parent's memo-store location so every
    worker (and every later run) shares candidate evaluations, and flush
    their store statistics after each task.
    """

    name = "process"

    def supports(self, fn: Callable[[Any], Any], tasks: list[Any]) -> bool:
        """Pre-flight pickling check before handing work to a process pool.

        Verifying up front that the function and a representative task
        pickle means any exception that later escapes ``future.result()``
        was raised *by the task itself* inside a worker and must propagate
        to the caller — exactly like it would serially — rather than being
        confused with an infrastructure failure and silently retried.  Only
        the first task is checked (one fan-out's tasks are structurally
        homogeneous); pickling every task here would double the dominant
        IPC cost of a parallel call.
        """
        try:
            pickle.dumps(fn)
            pickle.dumps(tasks[0])
        except Exception:
            return False
        return True

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: list[Any],
        *,
        order: Sequence[int],
        n_workers: int,
    ) -> list[Any]:
        from repro.parallel.backend import _call_task, _init_worker, effective_cpu_count
        from repro.parallel.store import active_memo_dir

        # Tasks are CPU-bound: more workers than cores only adds contention,
        # so the pool is capped at the affinity-visible CPU count.
        max_workers = max(1, min(n_workers, len(tasks), effective_cpu_count()))
        results: list[Any] = [None] * len(tasks)
        try:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_init_worker,
                initargs=(active_memo_dir(),),
            ) as pool:
                futures = {idx: pool.submit(_call_task, fn, tasks[idx]) for idx in order}
                for idx in range(len(tasks)):
                    results[idx] = futures[idx].result()
        except BrokenProcessPool as exc:
            # A dead pool (OOM-killed worker, interpreter teardown) is an
            # infrastructure failure, not a task failure.
            raise ExecutorUnavailableError("process pool broke mid-run") from exc
        return results


# ------------------------------------------------------------------ registry

_REGISTRY: dict[str, Type[Executor]] = {}

# Executors shipped with repro but registered on demand (importing the
# module at registry-import time would cycle: cluster builds on executors).
_LAZY_EXECUTOR_MODULES: dict[str, str] = {"cluster": "repro.parallel.cluster"}


def register_executor(cls: Type[Executor]) -> Type[Executor]:
    """Register an executor class under its ``name`` (usable as a decorator)."""
    name = getattr(cls, "name", None)
    if not name or name == "?":
        raise ValueError("Executor classes must define a non-empty 'name'.")
    _REGISTRY[name] = cls
    return cls


def available_executors() -> list[str]:
    """Registered executor names (lazy ones included), sorted."""
    return sorted(set(_REGISTRY) | set(_LAZY_EXECUTOR_MODULES))


def get_executor(name: str) -> Executor:
    """Instantiate the executor registered under ``name``."""
    if name not in _REGISTRY and name in _LAZY_EXECUTOR_MODULES:
        import importlib

        # Importing the module runs its register_executor() side effect.
        importlib.import_module(_LAZY_EXECUTOR_MODULES[name])
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"Unknown executor {name!r}; available: {', '.join(available_executors())}"
        ) from None
    return cls()


def resolve_executor(spec: "str | Executor | None" = None) -> Executor:
    """Resolve an executor: explicit spec, else ``$REPRO_EXECUTOR``, else default."""
    if isinstance(spec, Executor):
        return spec
    name = spec or os.environ.get(EXECUTOR_ENV_VAR, "").strip() or DEFAULT_EXECUTOR
    return get_executor(name)


register_executor(SerialExecutor)
register_executor(ProcessExecutor)
