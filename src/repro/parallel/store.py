"""Cross-process, content-addressed memo store for candidate evaluations.

The in-memory caches of :mod:`repro.parallel.cache` die with their process:
every worker spawned by :class:`~repro.parallel.backend.ParallelMap` starts
cold, and a 27-combination ``run_model_comparison`` sweep that is interrupted
loses everything.  :class:`MemoStore` fixes both by persisting memoised
values on disk, keyed by the SHA-1 of a canonical encoding of the same
content tokens the in-memory caches use (:func:`~repro.parallel.cache.array_token`,
:func:`~repro.parallel.cache.splits_token`).  All workers of a run, and all
successive runs pointed at the same directory, share one store.

Storage contract:

* **Content-addressed** — a key is an arbitrary nesting of primitives,
  tuples, lists and dicts; :func:`key_digest` encodes it deterministically
  (type-tagged, so ``1``/``1.0``/``True`` never collide) and hashes it.
  Equal keys map to the same file in any process on any run.
* **Atomic writes** — payloads are written to a unique temporary file and
  published with ``os.replace``; a reader never observes a partial payload,
  and concurrent writers of the same key are last-writer-wins (both wrote
  the same deterministic value anyway).
* **Versioned payloads** — every file starts with a magic string carrying a
  format version.  A version bump invalidates old files: they read as
  misses and are recomputed, never misinterpreted.
* **Corruption-tolerant reads** — a truncated, garbled or unpicklable file
  is counted in ``errors``, best-effort unlinked, and reported as a miss so
  the caller recomputes; the store never raises out of :meth:`MemoStore.get`.
* **Read-only values** — every ndarray in a retrieved value is marked
  ``writeable=False``, preserving the cache-poisoning protection of the
  in-memory layer across the pickle round-trip.

Determinism contract: the store only ever holds values that are pure
functions of their key (seed-deterministic evaluations of content-addressed
inputs), so a warm-store run is bit-identical to a cold serial run.

Statistics: every process keeps local hit/miss/put/error counters plus a
count of estimator fits executed by the search/CV layers
(:func:`record_fit`).  :meth:`MemoStore.flush_stats` snapshots them — along
with the process's in-memory LRU counters — into ``stats/<pid>.json``
inside the store; :meth:`MemoStore.aggregated_stats` sums the snapshots of
every process that ever touched the store, which is what keeps cache
statistics coherent when the work ran in a pool.

Activation: call :func:`configure_store` explicitly (the CLI's
``--memo-dir`` does), or set ``REPRO_MEMO_DIR`` and the first
:func:`get_store` call picks it up; worker processes are initialised with
the parent's store directory by the backend.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Optional

import numpy as np

__all__ = [
    "MemoStore",
    "key_digest",
    "make_store",
    "configure_store",
    "get_store",
    "active_memo_dir",
    "record_fit",
    "fit_count",
    "reset_fit_count",
    "MEMO_URL_SCHEME",
]

#: URL scheme that routes :func:`make_store` to the service-backed client.
MEMO_URL_SCHEME = "memo://"

#: Bump to invalidate every previously written payload.
STORE_FORMAT_VERSION = 1

_MAGIC_PREFIX = b"RPMEMO"
_MAGIC = _MAGIC_PREFIX + bytes([STORE_FORMAT_VERSION]) + b"\n"

_ENV_VAR = "REPRO_MEMO_DIR"

# Estimator-level fit counter for this process (see record_fit).  It lives
# here rather than in cache.py so it is flushed with the store statistics.
_FIT_COUNT = 0
_FIT_LOCK = threading.Lock()

# Unique stats-snapshot identity per process.  A bare PID would let a later
# run whose process happens to reuse the PID overwrite an earlier run's
# snapshot, making aggregated totals non-monotonic (and per-run deltas
# wrong); the random suffix keeps every process's snapshot distinct for the
# lifetime of the store.  Regenerated after fork (the PID check), so a
# worker never clobbers the parent's snapshot.
_PROC_PID = 0
_PROC_UID = ""


def _process_token() -> str:
    global _PROC_PID, _PROC_UID
    pid = os.getpid()
    if pid != _PROC_PID:
        _PROC_PID = pid
        _PROC_UID = uuid.uuid4().hex[:8]
    return f"{pid}-{_PROC_UID}"


def record_fit(n: int = 1) -> None:
    """Count ``n`` estimator fits executed by the search/CV layers.

    The counter is what lets tests assert that a fully warm-store sweep
    performed *zero* model fits; it is aggregated across worker processes
    through the store's stats files.
    """
    global _FIT_COUNT
    with _FIT_LOCK:
        _FIT_COUNT += n


def fit_count() -> int:
    """Estimator fits recorded in this process since the last reset."""
    return _FIT_COUNT


def reset_fit_count() -> None:
    global _FIT_COUNT
    with _FIT_LOCK:
        _FIT_COUNT = 0


def _encode_key(obj: Any, h: "hashlib._Hash") -> None:
    """Feed a canonical, type-tagged encoding of ``obj`` into hash ``h``.

    Only JSON-ish shapes appear in memo keys (strings, numbers, booleans,
    ``None``, bytes, tuples/lists, string-keyed dicts); anything else is a
    programming error and raises ``TypeError`` rather than hashing an
    unstable ``repr``.
    """
    if obj is None:
        h.update(b"N;")
    elif isinstance(obj, bool):  # before int: True is an int subclass
        h.update(b"B1;" if obj else b"B0;")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I" + str(int(obj)).encode("ascii") + b";")
    elif isinstance(obj, (float, np.floating)):
        # repr round-trips doubles exactly, so equal floats hash equally
        # and the digest survives process boundaries.
        h.update(b"F" + repr(float(obj)).encode("ascii") + b";")
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        h.update(b"S" + str(len(raw)).encode("ascii") + b":" + raw + b";")
    elif isinstance(obj, bytes):
        h.update(b"Y" + str(len(obj)).encode("ascii") + b":" + obj + b";")
    elif isinstance(obj, (tuple, list)):
        h.update(b"T(" if isinstance(obj, tuple) else b"L(")
        for item in obj:
            _encode_key(item, h)
        h.update(b")")
    elif isinstance(obj, dict):
        keys = sorted(obj)
        if any(not isinstance(k, str) for k in keys):
            raise TypeError("Memo-store dict keys must be strings.")
        h.update(b"D(")
        for k in keys:
            _encode_key(k, h)
            _encode_key(obj[k], h)
        h.update(b")")
    else:
        raise TypeError(f"Unsupported memo-store key component: {type(obj).__name__}")


def key_digest(key: Any) -> str:
    """Deterministic SHA-1 hex digest of a structured memo key."""
    h = hashlib.sha1()
    _encode_key(key, h)
    return h.hexdigest()


def _freeze_nested(obj: Any) -> Any:
    """Mark every ndarray inside ``obj`` read-only (recursing containers)."""
    if isinstance(obj, np.ndarray):
        obj.setflags(write=False)
    elif isinstance(obj, (tuple, list)):
        for item in obj:
            _freeze_nested(item)
    elif isinstance(obj, dict):
        for item in obj.values():
            _freeze_nested(item)
    return obj


class MemoStore:
    """A directory of memoised values shared by processes and runs.

    Layout::

        <root>/objects/<namespace>/<aa>/<digest[2:]>.pkl
        <root>/stats/<pid>.json
    """

    def __init__(self, root: str | os.PathLike) -> None:
        # ``~`` is expanded and missing parents are created, so a CLI
        # ``--memo-dir ~/.cache/repro-memo`` works on a fresh machine.
        self.root = Path(root).expanduser()
        self._objects = self.root / "objects"
        self._stats_dir = self.root / "stats"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._stats_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._tmp_seq = 0
        self._last_flush = 0.0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.errors = 0

    # ------------------------------------------------------------------ paths

    @property
    def location(self) -> str:
        """The string a worker/client needs to attach to this store."""
        return str(self.root)

    def path_for(self, namespace: str, key: Any) -> Path:
        return self.digest_path(namespace, key_digest(key))

    def digest_path(self, namespace: str, digest: str) -> Path:
        return self._objects / namespace / digest[:2] / (digest[2:] + ".pkl")

    def _stats_path(self) -> Path:
        return self._stats_dir / f"{_process_token()}.json"

    # ------------------------------------------------------------- get / put

    def get(self, namespace: str, key: Any, default: Any = None) -> Any:
        """Retrieve a memoised value, or ``default`` on any kind of miss.

        Stale-version, truncated and corrupt payloads are unlinked
        (best-effort) and reported as misses; ndarrays in a hit are
        returned read-only.
        """
        path = self.path_for(namespace, key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except (FileNotFoundError, OSError):
            with self._lock:
                self.misses += 1
            return default
        if not blob.startswith(_MAGIC):
            # Foreign bytes or a payload written by a different format
            # version: invalidate rather than risk misreading it.
            with self._lock:
                self.misses += 1
                if not blob.startswith(_MAGIC_PREFIX):
                    self.errors += 1
            self._discard(path)
            return default
        try:
            value = pickle.loads(blob[len(_MAGIC):])
        except Exception:
            with self._lock:
                self.misses += 1
                self.errors += 1
            self._discard(path)
            return default
        with self._lock:
            self.hits += 1
        return _freeze_nested(value)

    def put(self, namespace: str, key: Any, value: Any) -> None:
        """Persist a memoised value atomically (write temp file, then rename)."""
        path = self.path_for(namespace, key)
        with self._lock:
            self._tmp_seq += 1
            seq = self._tmp_seq
        tmp = path.parent / f".{path.name}.{os.getpid()}.{seq}.tmp"
        blob = _MAGIC + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            # A full or read-only disk degrades the store to a no-op cache;
            # the value was computed and the caller still has it.
            with self._lock:
                self.errors += 1
            self._discard(tmp)
            return
        with self._lock:
            self.puts += 1
        # Keep the on-disk counters fresh enough that an interrupted serial
        # run loses at most a second of statistics, without paying a stats
        # write per put on hot sweeps (pool workers additionally flush
        # after every task).  The flush clock is read under the lock: an
        # unlocked read races a concurrent flush_stats() and can skip or
        # double-publish a snapshot window.
        with self._lock:
            due = time.monotonic() - self._last_flush > 1.0
        if due:
            self.flush_stats()

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # ------------------------------------------------------------- blob layer
    #
    # The memo service (repro.parallel.service) moves whole payload blobs —
    # the same magic-prefixed versioned pickles this class writes — without
    # ever unpickling them; these methods are its storage backend.  They do
    # not touch the hit/miss counters: those count *client* operations, and
    # the remote client keeps its own.

    def get_blob(self, namespace: str, digest: str) -> Optional[bytes]:
        """Raw payload bytes for a digest, or ``None`` on any kind of miss.

        A payload that lost its magic/version prefix (corruption, stale
        format) is discarded so the next put heals it.
        """
        path = self.digest_path(namespace, digest)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        if not blob.startswith(_MAGIC):
            self._discard(path)
            return None
        return blob

    def put_blob(self, namespace: str, digest: str, blob: bytes) -> bool:
        """Atomically publish raw payload bytes; ``False`` if it failed."""
        if not blob.startswith(_MAGIC_PREFIX):
            return False
        path = self.digest_path(namespace, digest)
        with self._lock:
            self._tmp_seq += 1
            seq = self._tmp_seq
        tmp = path.parent / f".{path.name}.{os.getpid()}.{seq}.tmp"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            self._discard(tmp)
            return False
        return True

    def write_snapshot(self, token: str, data: bytes) -> bool:
        """Atomically publish a remote process's stats snapshot JSON."""
        path = self._stats_dir / f"{token}.json"
        tmp = path.parent / f".{path.name}.tmp"
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError:
            self._discard(tmp)
            return False
        return True

    def read_snapshots(self) -> list[dict]:
        """Every parseable stats snapshot in the store (unparseable skipped)."""
        snapshots = []
        for path in sorted(self._stats_dir.glob("*.json")):
            try:
                snapshots.append(json.loads(path.read_text()))
            except (OSError, ValueError):
                continue
        return snapshots

    # ------------------------------------------------------------ statistics

    def stats(self) -> dict[str, int]:
        """This process's counters (plus the on-disk object count)."""
        with self._lock:
            out = {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "errors": self.errors,
            }
        out["objects"] = self.object_count()
        return out

    def object_count(self) -> int:
        return sum(
            1
            for _, _, files in os.walk(self._objects)
            for name in files
            if name.endswith(".pkl")
        )

    def flush_stats(self) -> None:
        """Atomically snapshot this process's counters into the stats dir.

        The snapshot carries the store counters, the in-memory LRU cache
        counters and the fit count, so :meth:`aggregated_stats` can present
        a coherent cross-process view.  Failures are swallowed: statistics
        must never break the computation they describe.
        """
        with self._lock:
            counters = {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "errors": self.errors,
            }
        snapshot = build_stats_snapshot(counters)
        path = self._stats_path()
        tmp = path.parent / f".{path.name}.tmp"
        try:
            tmp.write_text(json.dumps(snapshot))
            os.replace(tmp, path)
        except OSError:
            self._discard(tmp)
        with self._lock:
            self._last_flush = time.monotonic()

    def aggregated_stats(self) -> dict[str, Any]:
        """Sum the stats snapshots of every process that used this store."""
        self.flush_stats()
        return sum_snapshots(self.read_snapshots(), objects=self.object_count())

    def reset_stats(self) -> None:
        """Zero this process's counters and drop every stats snapshot file."""
        with self._lock:
            self.hits = self.misses = self.puts = self.errors = 0
        for path in self._stats_dir.glob("*.json"):
            self._discard(path)

    def clear(self) -> None:
        """Delete every stored object and stats snapshot (keep the directory)."""
        for base, _, files in os.walk(self._objects, topdown=False):
            for name in files:
                self._discard(Path(base) / name)
        self.reset_stats()


# ------------------------------------------------------- snapshot aggregation
#
# Shared by the disk store and the service-backed client so both report the
# same coherent cross-process view.


def build_stats_snapshot(counters: dict[str, int]) -> dict[str, Any]:
    """This process's stats snapshot around ``counters`` (hits/misses/...)."""
    from repro.parallel.cache import cache_stats

    return {
        "pid": os.getpid(),
        "store": dict(counters),
        "fits": fit_count(),
        "caches": {
            name: {"hits": c["hits"], "misses": c["misses"]}
            for name, c in cache_stats(include_store=False).items()
        },
    }


def _as_int(value: Any) -> int:
    """Best-effort integer coercion; garbage reads as 0, never raises."""
    try:
        return int(value)
    except (TypeError, ValueError):
        return 0


def sum_snapshots(snapshots: list[dict], *, objects: int) -> dict[str, Any]:
    """Sum per-process stats snapshots into one aggregated view.

    Snapshots come off disk (or off the wire) from other processes, so any
    of them can be torn or garbled: parseable-but-malformed JSON — a
    non-numeric counter, a ``"store"`` that is a list, a cache entry that
    is a string — contributes zeros instead of crashing the aggregation.
    """
    totals: dict[str, int] = {"hits": 0, "misses": 0, "puts": 0, "errors": 0}
    caches: dict[str, dict[str, int]] = {}
    fits = 0
    processes = 0
    for snapshot in snapshots:
        if not isinstance(snapshot, dict):
            continue
        processes += 1
        fits += _as_int(snapshot.get("fits", 0))
        store = snapshot.get("store")
        for field, value in store.items() if isinstance(store, dict) else ():
            if field in totals:
                totals[field] += _as_int(value)
        snap_caches = snapshot.get("caches")
        for name, counters in (
            snap_caches.items() if isinstance(snap_caches, dict) else ()
        ):
            if not isinstance(counters, dict):
                continue
            bucket = caches.setdefault(name, {"hits": 0, "misses": 0})
            bucket["hits"] += _as_int(counters.get("hits", 0))
            bucket["misses"] += _as_int(counters.get("misses", 0))
    totals["objects"] = objects
    return {"store": totals, "caches": caches, "fits": fits, "processes": processes}


# --------------------------------------------------------- module-level state

_STORE: Optional[MemoStore] = None
_CONFIGURED = False  # an explicit configure_store() overrides the env var
_STATE_LOCK = threading.Lock()


def make_store(spec: Optional[str | os.PathLike]) -> Optional["MemoStore"]:
    """Build a store from a location spec: a path, or a ``memo://`` URL.

    ``None``/empty disables the store; ``memo://host:port`` attaches the
    service-backed :class:`~repro.parallel.service.RemoteMemoStore`; any
    other value is a disk directory (``~`` expanded, parents created).
    Disk and remote stores expose the same get/put/stats surface.
    """
    if spec is None:
        return None
    spec = os.fspath(spec)
    if isinstance(spec, bytes):  # os.fspath may hand back bytes paths
        spec = os.fsdecode(spec)
    # Strip stray whitespace (a YAML env block or shell export easily adds
    # it): ' memo://...' must reach the URL branch, not become a relative
    # disk directory literally named ' memo:'.
    spec = spec.strip()
    if not spec:
        return None
    if spec.startswith(MEMO_URL_SCHEME):
        from repro.parallel.service import RemoteMemoStore

        return RemoteMemoStore(spec)
    return MemoStore(spec)


def configure_store(spec: Optional[str | os.PathLike]) -> Optional[MemoStore]:
    """Activate the memo store at ``spec`` (``None`` disables it).

    ``spec`` is a disk directory or a ``memo://host:port`` service URL (see
    :func:`make_store`).  Explicit configuration wins over
    ``REPRO_MEMO_DIR``; passing ``None`` turns the store off even when the
    environment variable is set.
    """
    global _STORE, _CONFIGURED
    with _STATE_LOCK:
        previous, _STORE = _STORE, make_store(spec)
        _CONFIGURED = True
        if previous is not None and previous is not _STORE:
            close = getattr(previous, "close", None)
            if close is not None:
                close()
        return _STORE


def get_store() -> Optional[MemoStore]:
    """The active store, lazily created from ``REPRO_MEMO_DIR`` if unset."""
    global _STORE, _CONFIGURED
    with _STATE_LOCK:
        if not _CONFIGURED:
            _STORE = make_store(os.environ.get(_ENV_VAR))
            _CONFIGURED = True
        return _STORE


def active_memo_dir() -> Optional[str]:
    """Location of the active store (what workers are initialised with).

    A disk directory for :class:`MemoStore`, a ``memo://`` URL for the
    service-backed client — either way, the exact string a worker process
    passes back to :func:`configure_store`.
    """
    store = get_store()
    return store.location if store is not None else None
