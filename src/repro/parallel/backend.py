"""``ParallelMap``: pluggable-executor fan-out with a serial guarantee.

Every fit-heavy layer of the repo (hyper-parameter searches, cross
validation, forests, active-learning committees, the model x strategy sweep
of :func:`repro.core.hyperopt.run_model_comparison`) funnels its
embarrassingly parallel work through :class:`ParallelMap`.  The contract:

* **Seed-stable task ordering** — results are always returned in the order
  of the input tasks, regardless of worker completion order, so parallel
  and serial execution are interchangeable.
* **Determinism** — tasks must carry their own random state (a seed or a
  cloned generator).  Callers pre-draw any seeds *sequentially* before
  fanning out, which makes ``n_jobs=1`` and ``n_jobs=N`` bit-identical.
* **Serial fallback** — ``n_jobs=1`` (the default), nested parallel
  regions, un-picklable tasks and broken executors all degrade gracefully
  to the plain serial loop; worker exceptions propagate to the caller.
* **Pluggable executors** — the actual fan-out is delegated to a named
  executor from :mod:`repro.parallel.executors` (``serial``, ``process``,
  or the distributed ``cluster`` of :mod:`repro.parallel.cluster`),
  selected per call site
  (``executor=``) or globally (``REPRO_EXECUTOR``) without touching
  callers.

``n_jobs`` follows the scikit-learn convention: ``None``/``1`` is serial,
positive integers give the worker count, and negative values count back
from the number of CPUs (``-1`` means "all cores").
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.obs import trace as obs_trace
from repro.parallel.executors import (
    Executor,
    ExecutorUnavailableError,
    resolve_executor,
)

__all__ = [
    "ParallelMap",
    "parallel_map",
    "resolve_n_jobs",
    "effective_cpu_count",
    "mark_worker_process",
]

# Set in worker processes so that nested parallel regions (e.g. a forest fit
# inside a parallel search candidate) run serially instead of forking again.
_IN_WORKER = False


def mark_worker_process() -> None:
    """Mark this process as a worker: nested parallel regions run serially.

    Pool workers are marked by :func:`_init_worker`; standalone worker
    agents (``repro-chem cluster-work``) call this themselves at startup so
    a task that internally fans out — a forest fit, a CV loop — runs its
    inner region on the serial path instead of recursing into another
    pool or back into the cluster.
    """
    global _IN_WORKER
    _IN_WORKER = True


def _init_worker(memo_dir: Optional[str]) -> None:
    """Pool initializer: mark the process and attach the parent's memo store.

    Workers start with empty in-memory caches; pointing them at the
    parent's store — a disk directory or a ``memo://`` service URL — is
    what lets every worker (and every later run) share candidate
    evaluations.  Passing the location through initargs — rather than
    relying on fork-inherited module state — keeps the contract under any
    multiprocessing start method.
    """
    mark_worker_process()
    from repro.parallel.store import configure_store

    # Configure unconditionally: a parent that explicitly disabled the store
    # (memo_dir None) must stay disabled in workers even when REPRO_MEMO_DIR
    # is set and the start method does not inherit parent module state.
    configure_store(memo_dir)


def _call_task(fn: Callable[[Any], Any], task: Any) -> Any:
    """Run one task in a worker, flushing store statistics afterwards.

    The flush publishes the worker's store and LRU counters (and fit count)
    into the store's per-process stats snapshots after *every* task, so an
    interrupt never loses more than the in-flight task's counters.
    """
    try:
        return fn(task)
    finally:
        from repro.parallel.store import get_store

        store = get_store()
        if store is not None:
            store.flush_stats()


def effective_cpu_count() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` spec to a concrete worker count (>= 1)."""
    if n_jobs is None:
        return 1
    n = int(n_jobs)
    if n == 0:
        raise ValueError("n_jobs == 0 has no meaning; use 1 for serial or -1 for all CPUs.")
    if n < 0:
        n = effective_cpu_count() + 1 + n
    return max(1, n)


class ParallelMap:
    """Map a function over tasks through a named executor.

    Parameters
    ----------
    n_jobs:
        Worker count spec (see :func:`resolve_n_jobs`).
    executor:
        Executor name, :class:`~repro.parallel.executors.Executor` instance,
        or ``None`` to use ``$REPRO_EXECUTOR`` (default ``process``).  Only
        consulted when a parallel region is actually entered (``n_jobs > 1``
        with more than one task outside a worker).
    """

    def __init__(
        self,
        n_jobs: Optional[int] = 1,
        executor: Union[str, Executor, None] = None,
    ) -> None:
        self.n_jobs = n_jobs
        self.executor = executor

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        *,
        priority: Optional[Sequence[int]] = None,
    ) -> list[Any]:
        """Apply ``fn`` to every task, returning results in input order.

        ``priority`` optionally gives the submission order (a permutation of
        task indices, heaviest first) to reduce straggler time on a pool;
        it never affects the order of the returned results.
        """
        tasks = list(tasks)
        n_workers = resolve_n_jobs(self.n_jobs)
        if n_workers == 1 or _IN_WORKER or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        executor = resolve_executor(self.executor)
        order = list(priority) if priority is not None else list(range(len(tasks)))
        if sorted(order) != list(range(len(tasks))):
            # Validated for every executor, so a buggy priority list at a
            # call site cannot hide behind REPRO_EXECUTOR=serial.
            raise ValueError("priority must be a permutation of the task indices.")
        if not executor.supports(fn, tasks):
            # Un-picklable closures/tasks (e.g. lambda scorers) fall back to
            # the serial path, which is always available and bit-identical.
            return [fn(task) for task in tasks]
        with obs_trace.span(
            "parallel.map",
            tags={"n_tasks": len(tasks), "n_workers": n_workers},
        ):
            try:
                return executor.map(fn, tasks, order=order, n_workers=n_workers)
            except ExecutorUnavailableError:
                # A dead executor (OOM-killed pool, unreachable cluster) is
                # an infrastructure failure, not a task failure: recompute
                # serially.
                return [fn(task) for task in tasks]


def parallel_map(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    n_jobs: Optional[int] = 1,
    *,
    priority: Optional[Sequence[int]] = None,
    executor: Union[str, Executor, None] = None,
) -> list[Any]:
    """Functional shorthand for ``ParallelMap(n_jobs, executor).map(fn, tasks)``."""
    return ParallelMap(n_jobs, executor).map(fn, tasks, priority=priority)
