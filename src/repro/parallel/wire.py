"""Shared length-prefixed binary framing for repro's TCP services.

The memo service (:mod:`repro.parallel.service`, PR 3) and the online
inference service (:mod:`repro.serve`, PR 5) speak the same wire substrate:
every frame is a 4-byte big-endian payload length followed by the payload;
requests start with a 1-byte opcode, responses with a 1-byte status byte.
Strings inside a frame are ``!H`` length-prefixed.  Frames above
:data:`MAX_FRAME` (1 GiB) are rejected outright — a garbled length prefix
must read as a protocol error, never as a multi-gigabyte allocation.

This module is the single source of truth for that contract: the frame
read/write helpers, the size guard, and the server scaffolding (a
``ThreadingTCPServer`` that tracks open connections so shutdown severs them
like a real process kill, plus the request-loop handler) live here and are
consumed by every framed service (memo, serve, and the cluster
dispatcher).  Anything protocol-*semantic* — opcodes, status bytes, body
encodings, failure policies — stays with each service.

Two robustness guards protect the thread-per-connection model itself:

* **Per-connection timeouts** (:data:`DEFAULT_TIMEOUT`): a client that
  connects and goes silent, or sends a partial frame and stalls, used to
  park its handler thread in ``read_exact`` forever — threads accumulated
  without bound.  Every handler socket now carries a timeout; an idle or
  mid-frame stall closes the connection and reclaims the thread.  Healthy
  long-lived clients are unaffected: both ``RemoteMemoStore`` and
  ``ServeClient`` transparently reconnect on their next operation.
* **Admission control** (:data:`DEFAULT_MAX_CONNECTIONS`): past the cap,
  new connections are shed (accepted and immediately closed) instead of
  spawning yet another handler thread, so overload degrades by refusing
  work rather than by queueing threads unboundedly.
"""

from __future__ import annotations

import json
import socket
import socketserver
import struct
import threading
import time
from typing import Any, Optional

from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "MAX_FRAME",
    "LEN",
    "STR_LEN",
    "DEFAULT_TIMEOUT",
    "DEFAULT_MAX_CONNECTIONS",
    "CONTEXT_MARKER",
    "OP_CAPS",
    "OP_TELEMETRY",
    "TELEMETRY_SCHEMA_VERSION",
    "WIRE_CAPS",
    "ProtocolError",
    "pack_str",
    "unpack_str",
    "read_exact",
    "read_frame",
    "write_frame",
    "wrap_context",
    "split_context",
    "negotiate_caps",
    "fetch_telemetry",
    "parse_hostport_url",
    "FrameService",
]

#: Upper bound on a single frame (request or response), shared by every
#: framed service.  A corrupt length prefix reads as garbage, not as a giant
#: allocation.
MAX_FRAME = 1 << 30

#: Frame length prefix: 4-byte big-endian unsigned.
LEN = struct.Struct("!I")

#: In-frame string length prefix: 2-byte big-endian unsigned.
STR_LEN = struct.Struct("!H")

#: Default per-connection socket timeout (seconds).  A connection that goes
#: this long without completing a read — silent client, partial frame, held
#: socket — is closed and its handler thread reclaimed.  Generous enough
#: that no healthy request/response exchange ever trips it; idle persistent
#: clients simply reconnect on their next operation.
DEFAULT_TIMEOUT = 300.0

#: Default cap on concurrently open client connections.  Arrivals past the
#: cap are shed (accepted and closed immediately) instead of growing the
#: handler-thread population unboundedly.
DEFAULT_MAX_CONNECTIONS = 128

#: First byte of a context-wrapped request frame.  Every service opcode is
#: printable ASCII, so NUL is unambiguous: a wrapped frame is
#: ``b"\\x00" + pack_str(context_json) + real_payload``.  Old peers that
#: receive one (they never should — clients only wrap after a successful
#: capability probe) answer their usual unknown-opcode error frame.
CONTEXT_MARKER = b"\x00"

#: Generic capability-probe opcode, handled by :class:`FrameService` itself
#: before service dispatch.  Old peers answer it with a clean error frame —
#: which *is* the negotiation: a non-``+`` status means "no extensions".
OP_CAPS = b"\x01"

#: Generic telemetry opcode: a versioned JSON snapshot of the service's
#: metrics registry, legacy stats and recent spans (:meth:`FrameService.telemetry`).
OP_TELEMETRY = b"\x02"

#: Version stamped into telemetry snapshots and capability documents.
TELEMETRY_SCHEMA_VERSION = 1

#: Wire extensions this build speaks.
WIRE_CAPS = ("context", "telemetry")


class ProtocolError(Exception):
    """A malformed frame or field; the connection/operation is abandoned."""


def parse_hostport_url(url: str, scheme: str) -> tuple[str, int]:
    """``<scheme>host:port`` -> ``(host, port)``; raises ``ValueError`` on junk.

    A malformed URL is a configuration typo and must fail loudly — unlike
    runtime protocol failures, which each service degrades per its own
    failure contract.
    """
    if not url.startswith(scheme):
        raise ValueError(f"URL must start with {scheme!r}: {url!r}")
    rest = url[len(scheme):].rstrip("/")
    host, sep, port_s = rest.rpartition(":")
    if not sep or not host or not port_s.isdigit():
        raise ValueError(f"URL must be {scheme}host:port, got {url!r}")
    port = int(port_s)
    if not 0 < port < 65536:
        raise ValueError(f"URL port out of range: {url!r}")
    return host, port


# ------------------------------------------------------------- frame helpers


def pack_str(value: str) -> bytes:
    """Encode a ``!H`` length-prefixed UTF-8 string field."""
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError("string field too long")
    return STR_LEN.pack(len(raw)) + raw


def unpack_str(payload: bytes, offset: int) -> tuple[str, int]:
    """Decode a string field at ``offset``; returns ``(value, next_offset)``."""
    end = offset + STR_LEN.size
    if end > len(payload):
        raise ProtocolError("truncated string field")
    (length,) = STR_LEN.unpack_from(payload, offset)
    if end + length > len(payload):
        raise ProtocolError("truncated string field")
    return payload[end:end + length].decode("utf-8"), end + length


def read_exact(rfile, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise; a short read is a dead peer."""
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = rfile.read(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(rfile) -> bytes:
    """Read one length-prefixed frame, enforcing the :data:`MAX_FRAME` guard."""
    header = read_exact(rfile, LEN.size)
    (length,) = LEN.unpack(header)
    if length == 0 or length > MAX_FRAME:
        raise ProtocolError(f"invalid frame length {length}")
    return read_exact(rfile, length)


def write_frame(wfile, payload: bytes) -> None:
    """Write one length-prefixed frame and flush it."""
    wfile.write(LEN.pack(len(payload)) + payload)
    wfile.flush()


# --------------------------------------------------------- context envelope


def wrap_context(payload: bytes, context: Optional[str]) -> bytes:
    """Wrap a request payload in the optional trace-context envelope.

    ``None`` (tracing off, no live span, or a peer without the
    ``context`` capability) returns the payload untouched — the wrapped
    and unwrapped forms differ only when there is a context to carry.
    """
    if context is None:
        return payload
    return CONTEXT_MARKER + pack_str(context) + payload


def split_context(frame: bytes) -> tuple[Optional[str], bytes]:
    """Peel the context envelope off an inbound frame, if present.

    Returns ``(context_json_or_None, real_payload)``.  A frame that does
    not start with :data:`CONTEXT_MARKER` is returned unchanged; a
    truncated envelope raises :class:`ProtocolError`.
    """
    if not frame.startswith(CONTEXT_MARKER):
        return None, frame
    context, offset = unpack_str(frame, 1)
    return context, frame[offset:]


def negotiate_caps(rfile, wfile) -> frozenset:
    """Probe a connected peer's wire extensions over an open connection.

    Sends :data:`OP_CAPS` and reads one response.  A peer from before
    this protocol answers with its unknown-opcode error frame (any
    non-``+`` status), which decodes as "no extensions" — that round trip
    *is* the version negotiation, so mixed fleets keep working.  Raises
    ``OSError``/:class:`ProtocolError` only for transport-level failures,
    exactly like any other request on the connection.
    """
    write_frame(wfile, OP_CAPS)
    response = read_frame(rfile)
    if response[:1] != b"+":
        return frozenset()
    try:
        doc = json.loads(response[1:])
    except ValueError:
        return frozenset()
    caps = doc.get("caps") if isinstance(doc, dict) else None
    if not isinstance(caps, list):
        return frozenset()
    return frozenset(str(cap) for cap in caps)


def fetch_telemetry(host: str, port: int, *, timeout: float = 5.0) -> dict[str, Any]:
    """One-shot telemetry scrape from any framed repro service.

    Dials ``host:port``, sends :data:`OP_TELEMETRY` and returns the
    versioned snapshot dict.  Raises ``OSError`` when nothing answers and
    :class:`ProtocolError` when the peer refuses the opcode (an old build)
    or returns junk — callers map both onto clean non-zero exits.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        with sock.makefile("rb") as rfile, sock.makefile("wb") as wfile:
            write_frame(wfile, OP_TELEMETRY)
            response = read_frame(rfile)
    if response[:1] != b"+":
        raise ProtocolError(
            "peer refused telemetry (pre-observability build?): "
            f"{response[1:].decode('utf-8', 'replace')!r}"
        )
    try:
        doc = json.loads(response[1:])
    except ValueError:
        raise ProtocolError("telemetry response is not JSON") from None
    if not isinstance(doc, dict) or "schema_version" not in doc:
        raise ProtocolError("telemetry response is not a snapshot document")
    return doc


# ------------------------------------------------------------------- server


class _FrameRequestHandler(socketserver.StreamRequestHandler):
    """One client connection: a loop of request/response frames.

    Frame semantics are delegated to the owning :class:`FrameService`:
    ``_handle_frame`` maps a request frame to a full response frame
    (status byte + body) and must not raise for request-level errors —
    an exception that escapes it is answered with the service's
    ``_internal_error_frame`` so one bad request never kills the server.

    The connection socket carries the service's per-connection timeout, so
    a silent client or a stalled partial frame surfaces as ``socket.timeout``
    (an ``OSError``) out of ``read_exact`` and the handler returns — the
    connection closes and the thread is reclaimed instead of parking in a
    blocking read forever.
    """

    def setup(self) -> None:
        # StreamRequestHandler applies self.timeout to the connection in its
        # own setup(); routing the service's knob through it puts the whole
        # request loop — header, partial payload, idle gaps — under one
        # deadline per blocking read.
        self.timeout = self.server.frame_service.timeout
        super().setup()

    def handle(self) -> None:  # pragma: no cover - exercised via FrameService
        service: "FrameService" = self.server.frame_service
        while True:
            try:
                request = read_frame(self.rfile)
            except (OSError, ProtocolError):
                return  # EOF, reset, timeout or garbage: drop the connection
            try:
                response = service._respond(request)
            except Exception:
                response = service._internal_error_frame()
            try:
                write_frame(self.wfile, response)
            except OSError:
                return


class _TrackingTCPServer(socketserver.ThreadingTCPServer):
    """Threading TCP server that can sever every open client connection.

    Handler threads otherwise outlive ``shutdown()`` and keep serving their
    connected client; severing makes an orderly shutdown indistinguishable
    from a process kill — exactly the failure clients promise to tolerate.

    ``max_connections`` is the admission guard: once that many connections
    are open, new arrivals are shed — closed immediately, without spawning
    a handler thread — so overload cannot grow the thread population
    unboundedly.  Shed clients see a clean EOF and apply their usual
    reconnect/degrade contract.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        *args: Any,
        max_connections: Optional[int] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._max_connections = max_connections
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        self.connections_shed = 0

    def process_request(self, request: socket.socket, client_address: Any) -> None:
        with self._connections_lock:
            if (
                self._max_connections is not None
                and len(self._connections) >= self._max_connections
            ):
                self.connections_shed += 1
                shed = True
            else:
                self._connections.add(request)
                shed = False
        if shed:
            self._send_shed_frame(request)
            super().shutdown_request(request)
            return
        super().process_request(request, client_address)

    def _send_shed_frame(self, request: socket.socket) -> None:
        """Best-effort goodbye frame for a shed connection.

        Services that define a shed-response frame get to tell the client
        *why* it was refused (so the client can distinguish "overloaded,
        retry elsewhere" from a dead peer) instead of a bare EOF.  One
        frame fits the kernel's send buffer, so this never blocks the
        accept loop; any failure falls back to the plain close.
        """
        frame = self.frame_service._shed_frame()
        if frame is None:
            return
        try:
            request.settimeout(1.0)
            request.sendall(LEN.pack(len(frame)) + frame)
        except OSError:
            pass

    def shutdown_request(self, request: socket.socket) -> None:
        with self._connections_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        with self._connections_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


class FrameService:
    """Lifecycle scaffolding for a thread-per-connection framed TCP service.

    Subclasses implement :meth:`_handle_frame` (request frame -> response
    frame) and set :attr:`scheme` so :attr:`url` renders the right URL
    flavour.  ``port=0`` binds an ephemeral port (see :attr:`port`/:attr:`url`
    for the actual address) — what in-process tests use.

    ``timeout`` is the per-connection socket timeout (``None``/``<= 0``
    disables it): a connection that stalls a read that long — silent
    client, partial frame, held socket — is closed and its handler thread
    reclaimed.  ``max_connections`` caps concurrently open connections;
    arrivals past the cap are shed instead of queueing threads unboundedly
    (``None``/``<= 0`` removes the cap).
    """

    #: URL scheme rendered by :attr:`url` (e.g. ``"memo://"``).
    scheme = "tcp://"

    #: Whether this service speaks the PR 10 wire extensions (context
    #: envelope, CAPS/TELEMETRY opcodes).  Tests flip it off to emulate a
    #: pre-observability peer: every extension frame then falls through to
    #: the service's own dispatch and earns its historical error response.
    wire_extensions = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        max_connections: Optional[int] = DEFAULT_MAX_CONNECTIONS,
    ) -> None:
        self.timeout = float(timeout) if timeout and timeout > 0 else None
        self.max_connections = (
            int(max_connections) if max_connections and max_connections > 0 else None
        )
        self._tcp = _TrackingTCPServer(
            (host, port), _FrameRequestHandler, max_connections=self.max_connections
        )
        self._tcp.frame_service = self
        self._thread: Optional[threading.Thread] = None
        self._started = False
        #: Typed instrument home for this service instance; subclasses
        #: hang their own counters/histograms off it and the telemetry
        #: opcode snapshots it.  A subclass that created its registry
        #: before calling up (to instrument pre-bind construction work)
        #: keeps it.
        if not isinstance(getattr(self, "metrics", None), MetricsRegistry):
            self.metrics = MetricsRegistry()
        self._frames_total = self.metrics.counter("wire.frames")
        self._frame_seconds = self.metrics.histogram("wire.frame_seconds")
        self._started_monotonic = time.monotonic()

    # ------------------------------------------------------------- lifecycle

    @property
    def host(self) -> str:
        return self._tcp.server_address[0]

    @property
    def port(self) -> int:
        return self._tcp.server_address[1]

    @property
    def url(self) -> str:
        return f"{self.scheme}{self.host}:{self.port}"

    @property
    def open_connections(self) -> int:
        """Currently open client connections."""
        with self._tcp._connections_lock:
            return len(self._tcp._connections)

    @property
    def connections_shed(self) -> int:
        """Connections refused by the admission guard since startup."""
        return self._tcp.connections_shed

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (or interrupt)."""
        self._started = True
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> "FrameService":
        """Serve on a daemon background thread (in-process test mode)."""
        self._started = True
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=type(self).__name__.lower(),
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and sever every client connection (idempotent).

        Severing in-flight connections is deliberate: it makes an orderly
        shutdown indistinguishable from a process kill, which is exactly
        the failure clients promise to tolerate.
        """
        if self._started:
            self._started = False
            self._tcp.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._tcp.close_all_connections()
        self._tcp.server_close()

    def __enter__(self) -> "FrameService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -------------------------------------------------------------- dispatch

    def _respond(self, request: bytes) -> bytes:
        """Generic wire-extension layer wrapped around :meth:`_handle_frame`.

        Handles the CAPS/TELEMETRY opcodes, peels the optional trace
        context off the frame, and — when a context arrived or tracing is
        on in this process — records a server-side span around the
        service dispatch.  With :attr:`wire_extensions` off (or for plain
        unwrapped frames with tracing off) this is byte-for-byte the old
        behaviour: the raw request goes straight to the service.
        """
        if not self.wire_extensions:
            return self._handle_frame(request)
        op = request[:1]
        if op == OP_CAPS:
            return b"+" + json.dumps(self._caps_doc(), sort_keys=True).encode("utf-8")
        if op == OP_TELEMETRY:
            doc = json.dumps(self.telemetry(), sort_keys=True, default=str)
            return b"+" + doc.encode("utf-8")
        try:
            context, payload = split_context(request)
        except ProtocolError:
            # A truncated envelope cannot be attributed: let the service
            # answer the raw frame with its own malformed-request error.
            context, payload = None, request
        self._frames_total.inc()
        parent = obs_trace.parent_from_wire(context)
        if (
            parent is None
            and not obs_trace.tracing_enabled()
            and not self._force_frame_spans()
        ):
            t0 = time.perf_counter()
            response = self._handle_frame(payload)
            self._frame_seconds.observe(time.perf_counter() - t0)
            return response
        with obs_trace.span(
            f"{self._span_service()}.frame",
            parent=parent,
            force=True,
            tags={"service": type(self).__name__, "op": self._op_label(payload)},
        ) as frame_span:
            t0 = time.perf_counter()
            response = self._handle_frame(payload)
            self._frame_seconds.observe(time.perf_counter() - t0)
            frame_span.set_tag("status", repr(response[:1]))
        self._on_frame_span(frame_span)
        return response

    def _span_service(self) -> str:
        """Short span-name prefix derived from the URL scheme."""
        return self.scheme.split(":", 1)[0] or "wire"

    def _op_label(self, payload: bytes) -> str:
        """Human-readable opcode label for span tags and slow-request lines.

        Services that know their opcode names override this (e.g. the
        serve protocol maps ``b"p"`` to ``"predict"``).
        """
        return repr(payload[:1])

    def _caps_doc(self) -> dict[str, Any]:
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "service": type(self).__name__,
            "caps": list(WIRE_CAPS),
        }

    def telemetry(self) -> dict[str, Any]:
        """The versioned observability snapshot served by :data:`OP_TELEMETRY`.

        One document, JSON-able, same shape for every framed service:
        metrics registry snapshot, the service's legacy ``stats()`` view,
        and the newest spans from this process's ring.
        """
        try:
            stats = self._telemetry_stats()
        except Exception:
            stats = {}
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "service": type(self).__name__,
            "url": self.url,
            "caps": list(WIRE_CAPS),
            "uptime_s": time.monotonic() - self._started_monotonic,
            "connections": {
                "open": self.open_connections,
                "shed": self.connections_shed,
            },
            "metrics": self.metrics.snapshot(),
            "stats": stats,
            "spans": obs_trace.recent_spans(limit=100),
        }

    def _telemetry_stats(self) -> dict[str, Any]:
        """The legacy stats view embedded in telemetry (override to adjust)."""
        stats = getattr(self, "stats", None)
        if callable(stats):
            return stats()
        return {}

    def _force_frame_spans(self) -> bool:
        """Record frame spans even with tracing globally off (override).

        The serve server's ``--slow-ms`` knob needs per-frame spans to
        measure against without requiring tracing to be enabled.
        """
        return False

    def _on_frame_span(self, frame_span: Any) -> None:
        """Hook called after a traced frame finishes (slow-log lives here)."""

    def _handle_frame(self, request: bytes) -> bytes:
        """Map one request frame to one response frame (status + body)."""
        raise NotImplementedError

    def _internal_error_frame(self) -> bytes:
        """Response frame sent when :meth:`_handle_frame` raises."""
        return b"!internal error"

    def _shed_frame(self) -> Optional[bytes]:
        """Response frame written (best-effort) to a shed connection.

        ``None`` (the default) keeps the historical bare-EOF shed; services
        that want shed clients to see a distinct, retryable refusal return
        a full response frame (status byte + body) here.
        """
        return None
