"""Shared length-prefixed binary framing for repro's TCP services.

The memo service (:mod:`repro.parallel.service`, PR 3) and the online
inference service (:mod:`repro.serve`, PR 5) speak the same wire substrate:
every frame is a 4-byte big-endian payload length followed by the payload;
requests start with a 1-byte opcode, responses with a 1-byte status byte.
Strings inside a frame are ``!H`` length-prefixed.  Frames above
:data:`MAX_FRAME` (1 GiB) are rejected outright — a garbled length prefix
must read as a protocol error, never as a multi-gigabyte allocation.

This module is the single source of truth for that contract: the frame
read/write helpers, the size guard, and the server scaffolding (a
``ThreadingTCPServer`` that tracks open connections so shutdown severs them
like a real process kill, plus the request-loop handler) live here and are
consumed by both services.  Anything protocol-*semantic* — opcodes, status
bytes, body encodings, failure policies — stays with each service.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading
from typing import Any, Optional

__all__ = [
    "MAX_FRAME",
    "LEN",
    "STR_LEN",
    "ProtocolError",
    "pack_str",
    "unpack_str",
    "read_exact",
    "read_frame",
    "write_frame",
    "parse_hostport_url",
    "FrameService",
]

#: Upper bound on a single frame (request or response), shared by every
#: framed service.  A corrupt length prefix reads as garbage, not as a giant
#: allocation.
MAX_FRAME = 1 << 30

#: Frame length prefix: 4-byte big-endian unsigned.
LEN = struct.Struct("!I")

#: In-frame string length prefix: 2-byte big-endian unsigned.
STR_LEN = struct.Struct("!H")


class ProtocolError(Exception):
    """A malformed frame or field; the connection/operation is abandoned."""


def parse_hostport_url(url: str, scheme: str) -> tuple[str, int]:
    """``<scheme>host:port`` -> ``(host, port)``; raises ``ValueError`` on junk.

    A malformed URL is a configuration typo and must fail loudly — unlike
    runtime protocol failures, which each service degrades per its own
    failure contract.
    """
    if not url.startswith(scheme):
        raise ValueError(f"URL must start with {scheme!r}: {url!r}")
    rest = url[len(scheme):].rstrip("/")
    host, sep, port_s = rest.rpartition(":")
    if not sep or not host or not port_s.isdigit():
        raise ValueError(f"URL must be {scheme}host:port, got {url!r}")
    port = int(port_s)
    if not 0 < port < 65536:
        raise ValueError(f"URL port out of range: {url!r}")
    return host, port


# ------------------------------------------------------------- frame helpers


def pack_str(value: str) -> bytes:
    """Encode a ``!H`` length-prefixed UTF-8 string field."""
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError("string field too long")
    return STR_LEN.pack(len(raw)) + raw


def unpack_str(payload: bytes, offset: int) -> tuple[str, int]:
    """Decode a string field at ``offset``; returns ``(value, next_offset)``."""
    end = offset + STR_LEN.size
    if end > len(payload):
        raise ProtocolError("truncated string field")
    (length,) = STR_LEN.unpack_from(payload, offset)
    if end + length > len(payload):
        raise ProtocolError("truncated string field")
    return payload[end:end + length].decode("utf-8"), end + length


def read_exact(rfile, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise; a short read is a dead peer."""
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = rfile.read(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(rfile) -> bytes:
    """Read one length-prefixed frame, enforcing the :data:`MAX_FRAME` guard."""
    header = read_exact(rfile, LEN.size)
    (length,) = LEN.unpack(header)
    if length == 0 or length > MAX_FRAME:
        raise ProtocolError(f"invalid frame length {length}")
    return read_exact(rfile, length)


def write_frame(wfile, payload: bytes) -> None:
    """Write one length-prefixed frame and flush it."""
    wfile.write(LEN.pack(len(payload)) + payload)
    wfile.flush()


# ------------------------------------------------------------------- server


class _FrameRequestHandler(socketserver.StreamRequestHandler):
    """One client connection: a loop of request/response frames.

    Frame semantics are delegated to the owning :class:`FrameService`:
    ``_handle_frame`` maps a request frame to a full response frame
    (status byte + body) and must not raise for request-level errors —
    an exception that escapes it is answered with the service's
    ``_internal_error_frame`` so one bad request never kills the server.
    """

    def handle(self) -> None:  # pragma: no cover - exercised via FrameService
        service: "FrameService" = self.server.frame_service
        while True:
            try:
                request = read_frame(self.rfile)
            except (OSError, ProtocolError):
                return  # EOF, reset or garbage: drop the connection
            try:
                response = service._handle_frame(request)
            except Exception:
                response = service._internal_error_frame()
            try:
                write_frame(self.wfile, response)
            except OSError:
                return


class _TrackingTCPServer(socketserver.ThreadingTCPServer):
    """Threading TCP server that can sever every open client connection.

    Handler threads otherwise outlive ``shutdown()`` and keep serving their
    connected client; severing makes an orderly shutdown indistinguishable
    from a process kill — exactly the failure clients promise to tolerate.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()

    def process_request(self, request: socket.socket, client_address: Any) -> None:
        with self._connections_lock:
            self._connections.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request: socket.socket) -> None:
        with self._connections_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        with self._connections_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


class FrameService:
    """Lifecycle scaffolding for a thread-per-connection framed TCP service.

    Subclasses implement :meth:`_handle_frame` (request frame -> response
    frame) and set :attr:`scheme` so :attr:`url` renders the right URL
    flavour.  ``port=0`` binds an ephemeral port (see :attr:`port`/:attr:`url`
    for the actual address) — what in-process tests use.
    """

    #: URL scheme rendered by :attr:`url` (e.g. ``"memo://"``).
    scheme = "tcp://"

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._tcp = _TrackingTCPServer((host, port), _FrameRequestHandler)
        self._tcp.frame_service = self
        self._thread: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------- lifecycle

    @property
    def host(self) -> str:
        return self._tcp.server_address[0]

    @property
    def port(self) -> int:
        return self._tcp.server_address[1]

    @property
    def url(self) -> str:
        return f"{self.scheme}{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (or interrupt)."""
        self._started = True
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> "FrameService":
        """Serve on a daemon background thread (in-process test mode)."""
        self._started = True
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=type(self).__name__.lower(),
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and sever every client connection (idempotent).

        Severing in-flight connections is deliberate: it makes an orderly
        shutdown indistinguishable from a process kill, which is exactly
        the failure clients promise to tolerate.
        """
        if self._started:
            self._started = False
            self._tcp.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._tcp.close_all_connections()
        self._tcp.server_close()

    def __enter__(self) -> "FrameService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -------------------------------------------------------------- dispatch

    def _handle_frame(self, request: bytes) -> bytes:
        """Map one request frame to one response frame (status + body)."""
        raise NotImplementedError

    def _internal_error_frame(self) -> bytes:
        """Response frame sent when :meth:`_handle_frame` raises."""
        return b"!internal error"
