"""Shared length-prefixed binary framing for repro's TCP services.

The memo service (:mod:`repro.parallel.service`, PR 3) and the online
inference service (:mod:`repro.serve`, PR 5) speak the same wire substrate:
every frame is a 4-byte big-endian payload length followed by the payload;
requests start with a 1-byte opcode, responses with a 1-byte status byte.
Strings inside a frame are ``!H`` length-prefixed.  Frames above
:data:`MAX_FRAME` (1 GiB) are rejected outright — a garbled length prefix
must read as a protocol error, never as a multi-gigabyte allocation.

This module is the single source of truth for that contract: the frame
read/write helpers, the size guard, and the server scaffolding (a
``ThreadingTCPServer`` that tracks open connections so shutdown severs them
like a real process kill, plus the request-loop handler) live here and are
consumed by every framed service (memo, serve, and the cluster
dispatcher).  Anything protocol-*semantic* — opcodes, status bytes, body
encodings, failure policies — stays with each service.

Two robustness guards protect the thread-per-connection model itself:

* **Per-connection timeouts** (:data:`DEFAULT_TIMEOUT`): a client that
  connects and goes silent, or sends a partial frame and stalls, used to
  park its handler thread in ``read_exact`` forever — threads accumulated
  without bound.  Every handler socket now carries a timeout; an idle or
  mid-frame stall closes the connection and reclaims the thread.  Healthy
  long-lived clients are unaffected: both ``RemoteMemoStore`` and
  ``ServeClient`` transparently reconnect on their next operation.
* **Admission control** (:data:`DEFAULT_MAX_CONNECTIONS`): past the cap,
  new connections are shed (accepted and immediately closed) instead of
  spawning yet another handler thread, so overload degrades by refusing
  work rather than by queueing threads unboundedly.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading
from typing import Any, Optional

__all__ = [
    "MAX_FRAME",
    "LEN",
    "STR_LEN",
    "DEFAULT_TIMEOUT",
    "DEFAULT_MAX_CONNECTIONS",
    "ProtocolError",
    "pack_str",
    "unpack_str",
    "read_exact",
    "read_frame",
    "write_frame",
    "parse_hostport_url",
    "FrameService",
]

#: Upper bound on a single frame (request or response), shared by every
#: framed service.  A corrupt length prefix reads as garbage, not as a giant
#: allocation.
MAX_FRAME = 1 << 30

#: Frame length prefix: 4-byte big-endian unsigned.
LEN = struct.Struct("!I")

#: In-frame string length prefix: 2-byte big-endian unsigned.
STR_LEN = struct.Struct("!H")

#: Default per-connection socket timeout (seconds).  A connection that goes
#: this long without completing a read — silent client, partial frame, held
#: socket — is closed and its handler thread reclaimed.  Generous enough
#: that no healthy request/response exchange ever trips it; idle persistent
#: clients simply reconnect on their next operation.
DEFAULT_TIMEOUT = 300.0

#: Default cap on concurrently open client connections.  Arrivals past the
#: cap are shed (accepted and closed immediately) instead of growing the
#: handler-thread population unboundedly.
DEFAULT_MAX_CONNECTIONS = 128


class ProtocolError(Exception):
    """A malformed frame or field; the connection/operation is abandoned."""


def parse_hostport_url(url: str, scheme: str) -> tuple[str, int]:
    """``<scheme>host:port`` -> ``(host, port)``; raises ``ValueError`` on junk.

    A malformed URL is a configuration typo and must fail loudly — unlike
    runtime protocol failures, which each service degrades per its own
    failure contract.
    """
    if not url.startswith(scheme):
        raise ValueError(f"URL must start with {scheme!r}: {url!r}")
    rest = url[len(scheme):].rstrip("/")
    host, sep, port_s = rest.rpartition(":")
    if not sep or not host or not port_s.isdigit():
        raise ValueError(f"URL must be {scheme}host:port, got {url!r}")
    port = int(port_s)
    if not 0 < port < 65536:
        raise ValueError(f"URL port out of range: {url!r}")
    return host, port


# ------------------------------------------------------------- frame helpers


def pack_str(value: str) -> bytes:
    """Encode a ``!H`` length-prefixed UTF-8 string field."""
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError("string field too long")
    return STR_LEN.pack(len(raw)) + raw


def unpack_str(payload: bytes, offset: int) -> tuple[str, int]:
    """Decode a string field at ``offset``; returns ``(value, next_offset)``."""
    end = offset + STR_LEN.size
    if end > len(payload):
        raise ProtocolError("truncated string field")
    (length,) = STR_LEN.unpack_from(payload, offset)
    if end + length > len(payload):
        raise ProtocolError("truncated string field")
    return payload[end:end + length].decode("utf-8"), end + length


def read_exact(rfile, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise; a short read is a dead peer."""
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = rfile.read(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(rfile) -> bytes:
    """Read one length-prefixed frame, enforcing the :data:`MAX_FRAME` guard."""
    header = read_exact(rfile, LEN.size)
    (length,) = LEN.unpack(header)
    if length == 0 or length > MAX_FRAME:
        raise ProtocolError(f"invalid frame length {length}")
    return read_exact(rfile, length)


def write_frame(wfile, payload: bytes) -> None:
    """Write one length-prefixed frame and flush it."""
    wfile.write(LEN.pack(len(payload)) + payload)
    wfile.flush()


# ------------------------------------------------------------------- server


class _FrameRequestHandler(socketserver.StreamRequestHandler):
    """One client connection: a loop of request/response frames.

    Frame semantics are delegated to the owning :class:`FrameService`:
    ``_handle_frame`` maps a request frame to a full response frame
    (status byte + body) and must not raise for request-level errors —
    an exception that escapes it is answered with the service's
    ``_internal_error_frame`` so one bad request never kills the server.

    The connection socket carries the service's per-connection timeout, so
    a silent client or a stalled partial frame surfaces as ``socket.timeout``
    (an ``OSError``) out of ``read_exact`` and the handler returns — the
    connection closes and the thread is reclaimed instead of parking in a
    blocking read forever.
    """

    def setup(self) -> None:
        # StreamRequestHandler applies self.timeout to the connection in its
        # own setup(); routing the service's knob through it puts the whole
        # request loop — header, partial payload, idle gaps — under one
        # deadline per blocking read.
        self.timeout = self.server.frame_service.timeout
        super().setup()

    def handle(self) -> None:  # pragma: no cover - exercised via FrameService
        service: "FrameService" = self.server.frame_service
        while True:
            try:
                request = read_frame(self.rfile)
            except (OSError, ProtocolError):
                return  # EOF, reset, timeout or garbage: drop the connection
            try:
                response = service._handle_frame(request)
            except Exception:
                response = service._internal_error_frame()
            try:
                write_frame(self.wfile, response)
            except OSError:
                return


class _TrackingTCPServer(socketserver.ThreadingTCPServer):
    """Threading TCP server that can sever every open client connection.

    Handler threads otherwise outlive ``shutdown()`` and keep serving their
    connected client; severing makes an orderly shutdown indistinguishable
    from a process kill — exactly the failure clients promise to tolerate.

    ``max_connections`` is the admission guard: once that many connections
    are open, new arrivals are shed — closed immediately, without spawning
    a handler thread — so overload cannot grow the thread population
    unboundedly.  Shed clients see a clean EOF and apply their usual
    reconnect/degrade contract.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        *args: Any,
        max_connections: Optional[int] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._max_connections = max_connections
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        self.connections_shed = 0

    def process_request(self, request: socket.socket, client_address: Any) -> None:
        with self._connections_lock:
            if (
                self._max_connections is not None
                and len(self._connections) >= self._max_connections
            ):
                self.connections_shed += 1
                shed = True
            else:
                self._connections.add(request)
                shed = False
        if shed:
            self._send_shed_frame(request)
            super().shutdown_request(request)
            return
        super().process_request(request, client_address)

    def _send_shed_frame(self, request: socket.socket) -> None:
        """Best-effort goodbye frame for a shed connection.

        Services that define a shed-response frame get to tell the client
        *why* it was refused (so the client can distinguish "overloaded,
        retry elsewhere" from a dead peer) instead of a bare EOF.  One
        frame fits the kernel's send buffer, so this never blocks the
        accept loop; any failure falls back to the plain close.
        """
        frame = self.frame_service._shed_frame()
        if frame is None:
            return
        try:
            request.settimeout(1.0)
            request.sendall(LEN.pack(len(frame)) + frame)
        except OSError:
            pass

    def shutdown_request(self, request: socket.socket) -> None:
        with self._connections_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        with self._connections_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


class FrameService:
    """Lifecycle scaffolding for a thread-per-connection framed TCP service.

    Subclasses implement :meth:`_handle_frame` (request frame -> response
    frame) and set :attr:`scheme` so :attr:`url` renders the right URL
    flavour.  ``port=0`` binds an ephemeral port (see :attr:`port`/:attr:`url`
    for the actual address) — what in-process tests use.

    ``timeout`` is the per-connection socket timeout (``None``/``<= 0``
    disables it): a connection that stalls a read that long — silent
    client, partial frame, held socket — is closed and its handler thread
    reclaimed.  ``max_connections`` caps concurrently open connections;
    arrivals past the cap are shed instead of queueing threads unboundedly
    (``None``/``<= 0`` removes the cap).
    """

    #: URL scheme rendered by :attr:`url` (e.g. ``"memo://"``).
    scheme = "tcp://"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        max_connections: Optional[int] = DEFAULT_MAX_CONNECTIONS,
    ) -> None:
        self.timeout = float(timeout) if timeout and timeout > 0 else None
        self.max_connections = (
            int(max_connections) if max_connections and max_connections > 0 else None
        )
        self._tcp = _TrackingTCPServer(
            (host, port), _FrameRequestHandler, max_connections=self.max_connections
        )
        self._tcp.frame_service = self
        self._thread: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------- lifecycle

    @property
    def host(self) -> str:
        return self._tcp.server_address[0]

    @property
    def port(self) -> int:
        return self._tcp.server_address[1]

    @property
    def url(self) -> str:
        return f"{self.scheme}{self.host}:{self.port}"

    @property
    def open_connections(self) -> int:
        """Currently open client connections."""
        with self._tcp._connections_lock:
            return len(self._tcp._connections)

    @property
    def connections_shed(self) -> int:
        """Connections refused by the admission guard since startup."""
        return self._tcp.connections_shed

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (or interrupt)."""
        self._started = True
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> "FrameService":
        """Serve on a daemon background thread (in-process test mode)."""
        self._started = True
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=type(self).__name__.lower(),
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and sever every client connection (idempotent).

        Severing in-flight connections is deliberate: it makes an orderly
        shutdown indistinguishable from a process kill, which is exactly
        the failure clients promise to tolerate.
        """
        if self._started:
            self._started = False
            self._tcp.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._tcp.close_all_connections()
        self._tcp.server_close()

    def __enter__(self) -> "FrameService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -------------------------------------------------------------- dispatch

    def _handle_frame(self, request: bytes) -> bytes:
        """Map one request frame to one response frame (status + body)."""
        raise NotImplementedError

    def _internal_error_frame(self) -> bytes:
        """Response frame sent when :meth:`_handle_frame` raises."""
        return b"!internal error"

    def _shed_frame(self) -> Optional[bytes]:
        """Response frame written (best-effort) to a shed connection.

        ``None`` (the default) keeps the historical bare-EOF shed; services
        that want shed clients to see a distinct, retryable refusal return
        a full response frame (status byte + body) here.
        """
        return None
