"""Shared parallel execution backend and content-addressed caches.

``repro.parallel`` is the substrate under every fit-heavy layer:

* :class:`ParallelMap` / :func:`parallel_map` — process-pool or serial
  fan-out with seed-stable task ordering, exception propagation and a
  graceful serial fallback (see :mod:`repro.parallel.backend`).
* :func:`cv_splits`, :func:`feature_moments`, :func:`feature_presort` —
  caches for CV splits, standardisation moments and sorted-feature indices
  keyed on array content (see :mod:`repro.parallel.cache`).
* :class:`MemoStore` / :func:`configure_store` / :func:`get_store` — a
  cross-process, on-disk memo store that backs the candidate-evaluation
  cache so worker processes and successive runs share evaluations and
  interrupted sweeps resume (see :mod:`repro.parallel.store`).
* :class:`MemoServer` / :class:`RemoteMemoStore` — the service-backed form
  of the same store: a TCP server fronting a disk store and a client with
  the identical get/put/stats surface, for runs spread over multiple hosts
  (see :mod:`repro.parallel.service`).
* A named executor registry (``serial``, ``process``, ``cluster``; see
  :mod:`repro.parallel.executors`) behind :class:`ParallelMap`, selected
  per call (``executor=``) or globally (``REPRO_EXECUTOR``).
* :class:`ClusterDispatcher` / :class:`ClusterWorker` — the distributed
  form of the fan-out: the run hosts a dispatcher (``REPRO_CLUSTER_URL``)
  and ``repro-chem cluster-work`` agents on any machine pull tasks over
  the shared wire protocol (see :mod:`repro.parallel.cluster`; imported
  lazily — selecting ``REPRO_EXECUTOR=cluster`` loads it on demand).

The ``n_jobs`` contract (mirrored by the CLI's ``--jobs`` flag): ``1`` or
``None`` runs serially, ``N > 1`` uses up to ``N`` worker processes, and
negative values count back from the CPU count (``-1`` = all cores).  For a
fixed seed, serial and parallel execution produce bit-identical results.

The ``--memo-dir`` / ``REPRO_MEMO_DIR`` contract: pointing any run at a
memo store — a directory or a ``memo://host:port`` service URL (see
:func:`make_store`) — must not change its results, only how much of them
is recomputed.  A warm-store run is byte-identical to a cold serial run,
and a dead or corrupt store degrades to recomputation, never a crash.
"""

from repro.parallel.backend import (
    ParallelMap,
    effective_cpu_count,
    parallel_map,
    resolve_n_jobs,
)
from repro.parallel.executors import (
    Executor,
    available_executors,
    get_executor,
    register_executor,
)
from repro.parallel.cache import (
    array_token,
    cache_stats,
    clear_caches,
    cv_splits,
    feature_moments,
    feature_presort,
)
from repro.parallel.service import MemoServer, RemoteMemoStore
from repro.parallel.store import (
    MemoStore,
    active_memo_dir,
    configure_store,
    fit_count,
    get_store,
    make_store,
)

__all__ = [
    "ParallelMap",
    "parallel_map",
    "resolve_n_jobs",
    "effective_cpu_count",
    "Executor",
    "register_executor",
    "get_executor",
    "available_executors",
    "array_token",
    "cv_splits",
    "feature_moments",
    "feature_presort",
    "clear_caches",
    "cache_stats",
    "MemoStore",
    "MemoServer",
    "RemoteMemoStore",
    "make_store",
    "configure_store",
    "get_store",
    "active_memo_dir",
    "fit_count",
]
