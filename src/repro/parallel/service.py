"""Service-backed memo store: a TCP server and its ``RemoteMemoStore`` client.

:class:`~repro.parallel.store.MemoStore` shares memoised evaluations between
the processes of one host through a directory.  This module lifts the same
contract onto a socket so *multiple hosts* (or processes without a shared
filesystem) can share one memo:

* :class:`MemoServer` — a stdlib :mod:`socketserver` ``ThreadingTCPServer``
  fronting an ordinary disk :class:`MemoStore`.  It moves opaque payload
  blobs — the exact magic-prefixed, versioned pickles the disk store writes
  — without ever unpickling them, so the served directory stays fully
  interoperable with local disk clients, and a hostile or corrupt payload
  cannot execute code server-side.
* :class:`RemoteMemoStore` — a client implementing the same get/put/stats
  surface as the disk store.  Pickling, version checking, read-only
  freezing and key digesting all happen client-side; the wire carries
  ``(namespace, digest, blob)``.
* ``repro-chem memo-serve`` (see :mod:`repro.cli`) — the operational front
  end: point it at a store directory and point every run at
  ``memo://host:port``.

Wire protocol (version 1): the shared length-prefixed binary framing of
:mod:`repro.parallel.wire` (one 4-byte big-endian length + payload per
frame, ``!H``-prefixed strings, 1 GiB frame cap).  Requests start with a
1-byte opcode, responses with a 1-byte status; the value blob, when
present, is the remainder of the frame.

Failure contract (mirrors the disk store's corruption tolerance): *any*
protocol error — dead or unreachable server, connection reset mid-frame,
truncated or oversized frame, garbage status, corrupt payload — degrades to
a cache miss (counted in ``errors``) and the caller recomputes.  A memo
service can be killed at any point of a run and the run still finishes with
the right answer; determinism is untouched because the store only ever
holds values that are pure functions of their keys.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import socket
import struct
import threading
import time
from typing import Any, Optional

from repro.obs import trace as obs_trace
from repro.parallel.resilience import HealthTracker, RetryPolicy, policy_rng
from repro.parallel.wire import (
    DEFAULT_MAX_CONNECTIONS,
    DEFAULT_TIMEOUT,
    LEN,
    MAX_FRAME,
    FrameService,
    ProtocolError,
    negotiate_caps,
    pack_str,
    parse_hostport_url,
    read_frame,
    unpack_str,
    wrap_context,
    write_frame,
)
from repro.parallel.store import (
    _MAGIC,
    MEMO_URL_SCHEME,
    MemoStore,
    _freeze_nested,
    _process_token,
    build_stats_snapshot,
    key_digest,
    sum_snapshots,
)

__all__ = ["MemoServer", "RemoteMemoStore", "parse_memo_url", "PROTOCOL_VERSION"]

PROTOCOL_VERSION = 1

# Framing contract lives in repro.parallel.wire (shared with repro.serve);
# the historical private names stay importable for existing callers/tests.
_LEN = LEN
_MAX_FRAME = MAX_FRAME
_pack_str = pack_str
_unpack_str = unpack_str

# Request opcodes.
_OP_GET = b"G"
_OP_PUT = b"P"
_OP_SNAP = b"S"      # publish this process's stats snapshot
_OP_SNAPS = b"A"     # fetch every process's stats snapshot
_OP_COUNT = b"C"     # on-disk object count
_OP_RESET = b"R"     # drop stats snapshots (MemoStore.reset_stats)
_OP_CLEAR = b"X"     # drop objects and snapshots (MemoStore.clear)
_OP_PING = b"?"

# Response statuses.
_ST_OK = b"+"
_ST_MISS = b"-"
_ST_ERR = b"!"

_PING_BANNER = f"repro-memo/{PROTOCOL_VERSION}".encode("ascii")

# Namespaces/digests/tokens become path components on the server; anything
# fancier than these is rejected before it can escape the store directory.
_NAMESPACE_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]{0,63}$")
_DIGEST_RE = re.compile(r"^[0-9a-f]{6,64}$")
_TOKEN_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]{0,63}$")


_ProtocolError = ProtocolError


def parse_memo_url(url: str) -> tuple[str, int]:
    """``memo://host:port`` -> ``(host, port)``; raises ``ValueError`` on junk.

    A malformed URL is a configuration typo and must fail loudly — unlike
    runtime protocol failures, which degrade to misses.
    """
    return parse_hostport_url(url, MEMO_URL_SCHEME)


# ------------------------------------------------------------------- server


class MemoServer(FrameService):
    """Serve a disk :class:`MemoStore` to ``RemoteMemoStore`` clients.

    ``port=0`` binds an ephemeral port (see :attr:`port`/:attr:`url` for
    the actual address) — what the in-process parity tests use.  The server
    is thread-per-connection (stdlib ``ThreadingTCPServer``); the disk
    store's atomic write-then-rename publication makes concurrent writers
    of the same key safe, exactly as it does for local multi-process use.

    ``timeout`` and ``max_connections`` are the wire scaffolding's
    robustness knobs (see :class:`~repro.parallel.wire.FrameService`): a
    silent or half-framed client is disconnected after ``timeout`` seconds
    — reclaiming its handler thread — and connections past the cap are
    shed instead of queueing threads unboundedly.
    """

    scheme = MEMO_URL_SCHEME

    def __init__(
        self,
        root: "str | os.PathLike",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        max_connections: Optional[int] = DEFAULT_MAX_CONNECTIONS,
    ) -> None:
        self.store = MemoStore(root)
        super().__init__(
            host=host, port=port, timeout=timeout, max_connections=max_connections
        )

    def __enter__(self) -> "MemoServer":
        self.start()
        return self

    def stats(self) -> dict:
        """Aggregated cross-process view of the served store.

        This is what the ``telemetry`` opcode exposes under ``"stats"`` —
        the sum of every client process's published snapshot plus the
        on-disk object count.
        """
        return self.store.aggregated_stats()

    # -------------------------------------------------------------- dispatch

    def _handle_frame(self, request: bytes) -> bytes:
        try:
            status, body = self._dispatch(request)
        except ProtocolError:
            status, body = _ST_ERR, b"malformed request"
        except Exception:
            status, body = _ST_ERR, b"internal error"
        return status + body

    def _internal_error_frame(self) -> bytes:
        return _ST_ERR + b"internal error"

    def _dispatch(self, request: bytes) -> tuple[bytes, bytes]:
        op = request[:1]
        if op == _OP_GET:
            namespace, digest = self._parse_object_fields(request, expect_blob=False)
            blob = self.store.get_blob(namespace, digest)
            return (_ST_OK, blob) if blob is not None else (_ST_MISS, b"")
        if op == _OP_PUT:
            namespace, digest, blob = self._parse_object_fields(request, expect_blob=True)
            ok = self.store.put_blob(namespace, digest, blob)
            return (_ST_OK, b"") if ok else (_ST_ERR, b"store write failed")
        if op == _OP_SNAP:
            token, offset = unpack_str(request, 1)
            if not _TOKEN_RE.match(token):
                raise _ProtocolError("bad snapshot token")
            snapshot = request[offset:]
            json.loads(snapshot)  # reject unparseable snapshots at the door
            ok = self.store.write_snapshot(token, snapshot)
            return (_ST_OK, b"") if ok else (_ST_ERR, b"snapshot write failed")
        if op == _OP_SNAPS:
            body = json.dumps(self.store.read_snapshots()).encode("utf-8")
            return (_ST_OK, body)
        if op == _OP_COUNT:
            return (_ST_OK, str(self.store.object_count()).encode("ascii"))
        if op == _OP_RESET:
            self.store.reset_stats()
            return (_ST_OK, b"")
        if op == _OP_CLEAR:
            self.store.clear()
            return (_ST_OK, b"")
        if op == _OP_PING:
            return (_ST_OK, _PING_BANNER)
        raise _ProtocolError(f"unknown opcode {op!r}")

    @staticmethod
    def _parse_object_fields(request: bytes, *, expect_blob: bool) -> Any:
        namespace, offset = unpack_str(request, 1)
        digest, offset = unpack_str(request, offset)
        if not _NAMESPACE_RE.match(namespace) or not _DIGEST_RE.match(digest):
            raise _ProtocolError("bad namespace or digest")
        if expect_blob:
            return namespace, digest, request[offset:]
        if offset != len(request):
            raise _ProtocolError("trailing bytes after GET fields")
        return namespace, digest


# ------------------------------------------------------------------- client


class RemoteMemoStore:
    """Client for :class:`MemoServer` with the disk store's get/put surface.

    One persistent connection per instance (so per process: workers each
    build their own from the ``memo://`` URL the pool initializer hands
    them), serialised by a lock.  Every operation tolerates a dead or
    misbehaving server: one reconnect is attempted, then the server's
    circuit opens (see :mod:`repro.parallel.resilience`) and operations
    return misses instantly — the run degrades to recomputing, never
    crashes.  The open window starts at ``retry_delay``, is jittered, and
    doubles per consecutive failed half-open probe (capped at 30s); seed
    the jitter with ``retry_seed`` (or ``REPRO_RETRY_SEED``) to make the
    backoff sequence reproducible.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 5.0,
        retry_delay: float = 0.5,
        retry_seed: object = None,
    ) -> None:
        self.host, self.port = parse_memo_url(url)
        self.url = f"{MEMO_URL_SCHEME}{self.host}:{self.port}"
        self.timeout = timeout
        self.retry_delay = retry_delay
        self._rng = policy_rng(retry_seed)
        self.circuits = HealthTracker(
            cooldown=RetryPolicy(
                retries=None,
                base_delay=retry_delay,
                max_delay=30.0,
                jitter=0.5,
            ),
            rng=self._rng,
        )
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        # Wire capabilities of the connected server (None = not yet probed
        # on this connection).  Probed lazily, and only when tracing is
        # active — so tracing-off wire behaviour is byte-identical to
        # before trace propagation existed.
        self._caps: Optional[frozenset] = None
        self._conn_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._last_flush = 0.0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.errors = 0

    # ---------------------------------------------------------- connection

    @property
    def location(self) -> str:
        """The ``memo://`` URL (what workers are initialised with)."""
        return self.url

    def _connect(self) -> None:
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")

    def _teardown(self) -> None:
        for closer in (self._rfile, self._wfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = self._rfile = self._wfile = None
        self._caps = None

    def close(self) -> None:
        """Drop the connection (the store stays usable; it reconnects lazily)."""
        with self._conn_lock:
            self._teardown()

    def _request(self, payload: bytes) -> Optional[tuple[bytes, bytes]]:
        """One request/response round trip, or ``None`` on any failure.

        A failure mid-exchange gets one reconnect-and-retry (the server may
        simply have restarted); a second failure trips the server's
        circuit so a dead service costs a fast local check per operation,
        not a connect timeout.  The open window starts at ``retry_delay``
        (jittered) and doubles per consecutive failed half-open probe
        (capped at 30s): a server that *times out* rather than refusing —
        a blackholing firewall, a hung host — costs two connect timeouts
        per window, not per operation, so even a many-thousand-op sweep
        stalls for bounded time.
        """
        if len(payload) > _MAX_FRAME:
            # One oversized value must fail alone (a local error for the
            # caller), not tear the connection down and poison the
            # back-off window for every other key.
            return None
        with self._conn_lock:
            if not (
                self.circuits.routable(self.url)
                or self.circuits.claim_probe(self.url)
            ):
                return None
            for attempt in (0, 1):
                try:
                    if self._sock is None:
                        self._connect()
                    wire_payload = payload
                    context = obs_trace.wire_context()
                    if context is not None:
                        if self._caps is None:
                            self._caps = negotiate_caps(self._rfile, self._wfile)
                        if "context" in self._caps:
                            wire_payload = wrap_context(payload, context)
                    t0 = time.perf_counter()
                    write_frame(self._wfile, wire_payload)
                    response = read_frame(self._rfile)
                    if not response:
                        raise _ProtocolError("empty response")
                    obs_trace.annotate("memo_wait", time.perf_counter() - t0)
                    self.circuits.record_success(self.url)
                    return response[:1], response[1:]
                except (OSError, _ProtocolError, struct.error):
                    self._teardown()
            self.circuits.record_failure(self.url)
            return None

    # ------------------------------------------------------------- get / put

    def _count(self, **deltas: int) -> None:
        with self._counter_lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    @staticmethod
    def _check_namespace(namespace: str) -> None:
        """Reject namespaces the server would refuse — loudly.

        A namespace is a compile-time constant of the caching layer, not
        runtime data: one the server-side regex rejects would silently turn
        the service store into a 100%-miss cache for that layer, so it is a
        programming error (like a malformed URL), not a degradable fault.
        """
        if not _NAMESPACE_RE.match(namespace):
            raise ValueError(
                f"Namespace {namespace!r} is not servable over memo:// "
                f"(must match {_NAMESPACE_RE.pattern})."
            )

    def get(self, namespace: str, key: Any, default: Any = None) -> Any:
        """Retrieve a memoised value, or ``default`` on any kind of miss.

        Transport failures and corrupt payloads count as ``errors`` (and
        misses); ndarrays in a hit are returned read-only, exactly like the
        disk store.
        """
        self._check_namespace(namespace)
        try:
            request = _OP_GET + pack_str(namespace) + pack_str(key_digest(key))
        except _ProtocolError:
            self._count(misses=1, errors=1)
            return default
        with obs_trace.span("memo.get", tags={"namespace": namespace}):
            response = self._request(request)
        if response is None:
            self._count(misses=1, errors=1)
            return default
        status, body = response
        if status == _ST_MISS:
            self._count(misses=1)
            return default
        if status != _ST_OK or not body.startswith(_MAGIC):
            self._count(misses=1, errors=1)
            return default
        try:
            value = pickle.loads(body[len(_MAGIC):])
        except Exception:
            self._count(misses=1, errors=1)
            return default
        self._count(hits=1)
        return _freeze_nested(value)

    def put(self, namespace: str, key: Any, value: Any) -> None:
        """Publish a memoised value; failures degrade to a no-op cache."""
        self._check_namespace(namespace)
        try:
            blob = _MAGIC + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            request = _OP_PUT + pack_str(namespace) + pack_str(key_digest(key)) + blob
        except Exception:
            self._count(errors=1)
            return
        with obs_trace.span("memo.put", tags={"namespace": namespace}):
            response = self._request(request)
        if response is not None and response[0] == _ST_OK:
            self._count(puts=1)
        else:
            self._count(errors=1)
        # Read the flush clock under the counter lock: an unlocked read
        # races flush_stats() in another thread and can double-publish or
        # skip a snapshot window (the PR 7 lock discipline, applied here).
        with self._counter_lock:
            due = time.monotonic() - self._last_flush > 1.0
        if due:
            self.flush_stats()

    # ------------------------------------------------------------ statistics

    def _local_counters(self) -> dict[str, int]:
        with self._counter_lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "errors": self.errors,
            }

    def stats(self) -> dict[str, int]:
        """This process's counters (plus the server-side object count)."""
        out = self._local_counters()
        out["objects"] = self.object_count()
        return out

    def object_count(self) -> int:
        response = self._request(_OP_COUNT)
        if response is None or response[0] != _ST_OK:
            return 0
        try:
            return int(response[1])
        except ValueError:
            return 0

    def flush_stats(self) -> None:
        """Publish this process's counters as a snapshot on the server.

        Failures are swallowed: statistics must never break the computation
        they describe.
        """
        snapshot = json.dumps(build_stats_snapshot(self._local_counters()))
        self._request(_OP_SNAP + pack_str(_process_token()) + snapshot.encode("utf-8"))
        with self._counter_lock:
            self._last_flush = time.monotonic()

    def aggregated_stats(self) -> dict[str, Any]:
        """Sum the snapshots of every process that used the service."""
        self.flush_stats()
        response = self._request(_OP_SNAPS)
        snapshots: list[dict] = []
        if response is not None and response[0] == _ST_OK:
            try:
                loaded = json.loads(response[1])
                if isinstance(loaded, list):
                    snapshots = loaded
            except ValueError:
                pass
        if not snapshots:
            # Unreachable server: report at least this process's view.
            snapshots = [build_stats_snapshot(self._local_counters())]
        return sum_snapshots(snapshots, objects=self.object_count())

    def reset_stats(self) -> None:
        """Zero this process's counters and drop the server's snapshots."""
        with self._counter_lock:
            self.hits = self.misses = self.puts = self.errors = 0
        self._request(_OP_RESET)

    def clear(self) -> None:
        """Delete every stored object and snapshot on the server."""
        self._request(_OP_CLEAR)
        with self._counter_lock:
            self.hits = self.misses = self.puts = self.errors = 0

    def ping(self) -> bool:
        """True when the server answers the protocol handshake."""
        response = self._request(_OP_PING)
        return response is not None and response[0] == _ST_OK

    def circuit_state(self) -> str:
        """The server's circuit (``closed`` / ``open`` / ``half-open``)."""
        return self.circuits.state(self.url)
