"""Content-addressed caches for CV splits, feature moments and presorts.

The paper's workload runs many hyper-parameter searches against the *same*
training matrix: nine models x three strategies all split the same 300-row
subsample with the same ``KFold(3)``, every candidate standardises the same
fold matrices, and every boosting stage re-sorts the same feature columns.
This module caches those derived artefacts, keyed on the **content** of the
array (SHA-1 of its bytes plus shape/dtype) together with the relevant
configuration — for CV splits that is ``(dataset, cv, seed)``.

Safety contract:

* Cache hits return the *identical* arrays (no copies) for speed.
* Every cached array is marked read-only (``writeable=False``); a caller
  that tries to mutate a returned array gets a ``ValueError`` instead of
  silently poisoning the cache.  Callers that need a private mutable copy
  must ``.copy()``.
* Splitters with stateful random sources (a ``numpy`` ``Generator`` as
  ``random_state``) bypass the cache entirely — consuming their state is
  part of their semantics.

All caches are bounded LRU and thread-safe; worker processes spawned by
:mod:`repro.parallel.backend` each hold their own (initially empty) cache.
When a cross-process memo store is active (see :mod:`repro.parallel.store`),
the candidate-evaluation cache additionally reads through to and writes
through to disk, so workers and successive runs share evaluations; the
in-process LRU then acts as a first-level cache in front of the store.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Mapping, NamedTuple, Optional

import numpy as np

from repro.parallel import store as _store

__all__ = [
    "array_token",
    "cv_splits",
    "feature_moments",
    "feature_presort",
    "FeatureBins",
    "compute_feature_bins",
    "feature_bins",
    "candidate_eval_get",
    "candidate_eval_put",
    "estimator_token",
    "splits_token",
    "clear_caches",
    "cache_stats",
]

#: Hyper-parameter value types that are safe to use in memo keys: hashable,
#: deterministically encodable and round-trippable across processes.
PRIMITIVE_PARAM_TYPES = (int, float, str, bool, type(None), np.integer, np.floating)


class _LRUCache:
    """A small thread-safe LRU mapping with hit/miss counters."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Any) -> Any:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


_SPLIT_CACHE = _LRUCache(maxsize=32)
_MOMENTS_CACHE = _LRUCache(maxsize=64)
_PRESORT_CACHE = _LRUCache(maxsize=32)
_BINS_CACHE = _LRUCache(maxsize=16)
_CANDIDATE_CACHE = _LRUCache(maxsize=1024)


def array_token(X: np.ndarray) -> tuple:
    """A hashable content token for an ndarray (shape, dtype, SHA-1 digest)."""
    X = np.ascontiguousarray(X)
    digest = hashlib.sha1(X.tobytes()).hexdigest()
    return (X.shape, X.dtype.str, digest)


def _freeze(arr: np.ndarray) -> np.ndarray:
    arr.setflags(write=False)
    return arr


def _cv_signature(cv: Any) -> Optional[tuple]:
    """Hashable signature of a splitter, or ``None`` when it must not be cached."""
    from repro.ml.model_selection import KFold, _resolve_cv

    splitter = _resolve_cv(cv)
    if not isinstance(splitter, KFold):  # pragma: no cover - only KFold exists today
        return None
    seed = splitter.random_state
    if splitter.shuffle:
        # Only a concrete integer seed makes a shuffled split reproducible;
        # an unseeded or Generator-driven shuffle must stay a fresh draw.
        if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
            return None
        return ("kfold", splitter.n_splits, True, int(seed))
    return ("kfold", splitter.n_splits, False, None)


def cv_splits(X: np.ndarray, y: Optional[np.ndarray] = None, *, cv: Any = 5) -> list[tuple[np.ndarray, np.ndarray]]:
    """Cached ``[(train_idx, test_idx), ...]`` for splitting ``X`` with ``cv``.

    Keyed on ``(dataset content, cv config, shuffle seed)``.  The returned
    index arrays are read-only; copy before mutating.
    """
    from repro.ml.model_selection import _resolve_cv

    signature = _cv_signature(cv)
    if signature is None:
        return list(_resolve_cv(cv).split(X, y))
    key = (array_token(np.asarray(X)), signature)
    cached = _SPLIT_CACHE.get(key)
    if cached is not None:
        return list(cached)
    splits = [
        (_freeze(train), _freeze(test)) for train, test in _resolve_cv(cv).split(X, y)
    ]
    _SPLIT_CACHE.put(key, tuple(splits))
    return splits


def feature_moments(X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cached per-column ``(mean, scale)`` with zero-variance columns clamped to 1.

    This is the exact computation of ``StandardScaler.fit``, shared across
    the many estimators that re-standardise the same fold matrix.
    """
    X = np.ascontiguousarray(X)
    key = array_token(X)
    cached = _MOMENTS_CACHE.get(key)
    if cached is not None:
        return cached
    mean = X.mean(axis=0)
    scale = X.std(axis=0)
    scale[scale == 0.0] = 1.0
    value = (_freeze(mean), _freeze(scale))
    _MOMENTS_CACHE.put(key, value)
    return value


def feature_presort(X: np.ndarray) -> np.ndarray:
    """Cached stable argsort of every feature column, shape ``(n_samples, n_features)``.

    Column ``f`` lists the row indices of ``X`` in ascending order of feature
    ``f`` (ties by row index).  Tree builders start from this matrix and
    *partition* it down the tree instead of re-sorting at every node; because
    the cache is content-addressed, every boosting stage and every search
    candidate fitting on the same fold matrix reuses one sort.
    """
    X = np.ascontiguousarray(X)
    key = array_token(X)
    cached = _PRESORT_CACHE.get(key)
    if cached is not None:
        return cached
    presort = _freeze(np.argsort(X, axis=0, kind="stable"))
    _PRESORT_CACHE.put(key, presort)
    return presort


class FeatureBins(NamedTuple):
    """Per-dataset feature quantisation backing the ``tree_method="hist"`` builder.

    ``codes`` holds each sample's bin index per feature (``uint8``, so at most
    255 bins); ``lower``/``upper`` record the smallest and largest *dataset*
    value landing in each bin (``NaN``-padded to the widest feature), which is
    what lets the histogram split scan place thresholds with the exact
    builder's midpoint arithmetic.  When a feature has at most ``max_bins``
    distinct values every value gets its own bin (``lower == upper``) and the
    candidate thresholds are exactly the exact builder's candidate midpoints.
    """

    codes: np.ndarray  # (n_samples, n_features) uint8, read-only
    n_bins: np.ndarray  # (n_features,) int64 — occupied bins per feature
    lower: np.ndarray  # (n_features, max(n_bins)) float64, NaN-padded
    upper: np.ndarray  # (n_features, max(n_bins)) float64, NaN-padded
    max_bins: int

    def take(self, rows: np.ndarray) -> "FeatureBins":
        """Bins restricted to a row subset (same bin geometry, fewer codes).

        Used by subsampled boosting stages: the dataset is binned once and
        each stage's tree sees only its drawn rows.
        """
        return self._replace(codes=_freeze(self.codes[rows]))


def compute_feature_bins(X: np.ndarray, max_bins: int = 255) -> FeatureBins:
    """Quantile-bin every feature column of ``X`` into at most ``max_bins`` bins.

    Features with at most ``max_bins`` distinct values get one bin per value;
    wider features are cut at (sample-count) quantile boundaries between
    distinct values, so no two samples sharing a value are ever separated.
    """
    if not 2 <= int(max_bins) <= 255:
        raise ValueError("max_bins must be in [2, 255] (codes are uint8).")
    max_bins = int(max_bins)
    X = np.ascontiguousarray(np.asarray(X, dtype=np.float64))
    n_samples, n_features = X.shape
    codes = np.empty((n_samples, n_features), dtype=np.uint8)
    lowers: list[np.ndarray] = []
    uppers: list[np.ndarray] = []
    for f in range(n_features):
        col = X[:, f]
        uniq, counts = np.unique(col, return_counts=True)
        if uniq.size <= max_bins:
            lo = hi = uniq
        else:
            # Cut between distinct values at equal-sample-count quantiles:
            # ``cuts`` are the last distinct-value indices of all but the
            # final bin.
            cum = np.cumsum(counts)
            targets = np.linspace(0.0, float(n_samples), max_bins + 1)[1:-1]
            cuts = np.unique(np.searchsorted(cum, targets, side="left"))
            cuts = cuts[cuts < uniq.size - 1]
            lo = uniq[np.r_[0, cuts + 1]]
            hi = uniq[np.r_[cuts, uniq.size - 1]]
        # A value v belongs to the first bin whose upper bound is >= v.
        codes[:, f] = np.searchsorted(hi, col, side="left")
        lowers.append(lo)
        uppers.append(hi)
    n_bins = np.array([lo.size for lo in lowers], dtype=np.int64)
    width = int(n_bins.max()) if n_features else 0
    lower = np.full((n_features, width), np.nan)
    upper = np.full((n_features, width), np.nan)
    for f in range(n_features):
        lower[f, : n_bins[f]] = lowers[f]
        upper[f, : n_bins[f]] = uppers[f]
    return FeatureBins(
        codes=_freeze(codes),
        n_bins=_freeze(n_bins),
        lower=_freeze(lower),
        upper=_freeze(upper),
        max_bins=max_bins,
    )


def feature_bins(X: np.ndarray, max_bins: int = 255) -> FeatureBins:
    """Cached :func:`compute_feature_bins`, keyed on content like ``feature_presort``.

    Every boosting stage and every search candidate fitting a histogram tree
    on the same matrix reuses one binning; the returned arrays are read-only.
    """
    X = np.ascontiguousarray(X)
    key = (array_token(X), int(max_bins))
    cached = _BINS_CACHE.get(key)
    if cached is not None:
        return cached
    bins = compute_feature_bins(X, max_bins=max_bins)
    _BINS_CACHE.put(key, bins)
    return bins


def estimator_token(estimator: Any, overrides: Optional[Mapping[str, Any]] = None) -> Optional[tuple]:
    """Stable memo token for an estimator's class and resolved parameters.

    Returns ``None`` when the configuration must not be memoised: any
    non-primitive parameter value (e.g. a kernel object), or an unseeded
    stochastic estimator (``random_state=None`` draws fresh entropy per fit,
    so memoising would freeze one random draw and replay it).
    """
    resolved = dict(estimator.get_params(deep=False))
    if overrides:
        resolved.update(overrides)
    if resolved.get("random_state", 0) is None:
        return None
    items = []
    for name in sorted(resolved):
        value = resolved[name]
        if not isinstance(value, PRIMITIVE_PARAM_TYPES):
            return None
        items.append((name, value))
    cls = type(estimator)
    return (f"{cls.__module__}.{cls.__qualname__}", tuple(items))


#: Store namespace for whole-candidate CV evaluations.
_CANDIDATE_NAMESPACE = "candidate_eval"


def candidate_eval_get(key: Any) -> Any:
    """Cached ``(mean_score, std_score)`` of a CV candidate, or ``None``.

    The three search strategies of the paper's sweep largely evaluate the
    *same* hyper-parameter candidates on the *same* splits; memoising the
    (pure, seed-deterministic) evaluation makes the second and third
    strategies nearly free.  Keys are built by the search layer from the
    estimator class, its fully resolved primitive hyper-parameters and the
    content tokens of ``(X, y, splits, scoring)``; candidates with
    non-primitive parameters (e.g. kernel objects) are never cached.

    Lookup order is the in-process LRU first, then the cross-process memo
    store (when one is active); a store hit repopulates the LRU so repeat
    lookups in the same process stay in memory.
    """
    cached = _CANDIDATE_CACHE.get(key)
    if cached is not None:
        return cached
    store = _store.get_store()
    if store is not None:
        cached = store.get(_CANDIDATE_NAMESPACE, key)
        if cached is not None:
            _CANDIDATE_CACHE.put(key, cached)
    return cached


def candidate_eval_put(key: Any, value: Any) -> None:
    _CANDIDATE_CACHE.put(key, value)
    store = _store.get_store()
    if store is not None:
        store.put(_CANDIDATE_NAMESPACE, key, value)


def splits_token(splits: Any) -> tuple:
    """A hashable content token for a list of ``(train_idx, test_idx)`` splits."""
    return tuple(
        (array_token(np.asarray(train)), array_token(np.asarray(test)))
        for train, test in splits
    )


def clear_caches() -> None:
    """Drop every in-memory cached artefact and reset all counters.

    When a cross-process memo store is active, its hit/miss counters and
    per-process stats snapshots are reset too, but its on-disk *objects*
    are kept — persistence across runs is the store's whole point.  Use
    ``get_store().clear()`` to wipe the objects as well.
    """
    _SPLIT_CACHE.clear()
    _MOMENTS_CACHE.clear()
    _PRESORT_CACHE.clear()
    _BINS_CACHE.clear()
    _CANDIDATE_CACHE.clear()
    _store.reset_fit_count()
    store = _store.get_store()
    if store is not None:
        store.reset_stats()


def cache_stats(include_store: bool = True) -> dict[str, dict[str, int]]:
    """Hit/miss/size counters per cache, for diagnostics.

    When a memo store is active (and ``include_store`` is true) the result
    gains a ``"memo_store"`` entry with this process's store counters
    (``hits``/``misses``/``puts``/``errors``/``objects``).  For a view
    aggregated over worker processes, use
    ``get_store().aggregated_stats()``.
    """
    stats = {
        name: {"hits": c.hits, "misses": c.misses, "size": len(c)}
        for name, c in (
            ("cv_splits", _SPLIT_CACHE),
            ("feature_moments", _MOMENTS_CACHE),
            ("feature_presort", _PRESORT_CACHE),
            ("feature_bins", _BINS_CACHE),
            ("candidate_eval", _CANDIDATE_CACHE),
        )
    }
    if include_store:
        store = _store.get_store()
        if store is not None:
            stats["memo_store"] = store.stats()
    return stats
