"""Distributed ``ParallelMap`` executor over repro's own wire protocol.

This module closes the one remaining gap in the PR 3 executor registry: a
``cluster`` backend that fans task batches out to worker processes on any
number of machines with **zero new dependencies** — the same stdlib
length-prefixed frame contract (:mod:`repro.parallel.wire`) that already
carries the memo service and the serve service.

Topology
--------
The *run* hosts the dispatcher; workers dial in and pull work:

* :class:`ClusterDispatcher` — a :class:`~repro.parallel.wire.FrameService`
  embedded in the submitting process.  ``REPRO_EXECUTOR=cluster`` plus
  ``REPRO_CLUSTER_URL=cluster://host:port`` makes every existing
  ``ParallelMap`` call site — searches, CV, forests, committees,
  ``run_model_comparison``, the CLI ``--jobs`` paths — bind it lazily on
  first use and fan batches through it, without touching the call sites.
* :class:`ClusterWorker` / ``repro-chem cluster-work --dispatcher
  cluster://host:port`` — the worker agent: a poll loop that pulls one
  task at a time, runs it, and pushes the result back.  Workers started
  before the dispatcher exists simply retry until it appears, and survive
  dispatcher restarts between runs (each run binds the same URL).
* Shared state rides the ``memo://`` service: point the run *and* every
  worker at one ``memo://host:port`` store (``--memo-dir`` /
  ``REPRO_MEMO_DIR``) and candidate evaluations, CV results and finished
  sweep combinations are shared across the whole fleet, exactly as they
  are across local pool workers.

Wire contract
-------------
Tasks ride the wire as the same magic-prefixed, versioned pickle payloads
the memo store uses.  The dispatcher never unpickles anything a worker
sends: task blobs are sealed client-side by :class:`ClusterExecutor`,
result blobs are passed back opaque and only unpickled by the executor in
the submitting process — the process that created the tasks in the first
place.  Workers unpickle task payloads by design (they execute the run's
own functions; a cluster worker is as trusted as a local pool worker).

Scheduling and failure model
----------------------------
* **Pull-based dispatch** — idle workers poll; the dispatcher hands out
  the submission order (heaviest first, same as the process pool).
  Results return **in task order** regardless of completion order.
* **Heartbeat-based dead-worker detection** — polling *is* the heartbeat
  while idle; a background thread beats during long task execution.  A
  worker silent past ``heartbeat_timeout`` is presumed dead: its in-flight
  tasks are re-queued for the survivors.
* **Straggler re-dispatch** — once the queue drains, a task assigned
  longer than ``straggler_after`` is handed to an idle worker as a
  duplicate; the first result wins and late duplicates are discarded
  (tasks are pure functions of their payload, so either copy is
  bit-identical).
* **Degradation to serial** — an unbindable dispatcher URL or a batch
  with no reachable worker raises
  :class:`~repro.parallel.executors.ExecutorUnavailableError`, and
  ``ParallelMap`` recomputes the batch on the bit-identical serial path,
  exactly like a broken process pool.  Worker *task* exceptions, by
  contrast, propagate to the caller unchanged.

Determinism: tasks carry their own seeds (the ``ParallelMap`` contract),
so a cluster run is **byte-identical** to a cold serial run for the same
seed — pinned by ``tests/parallel/test_cluster.py`` and the ``cluster``
CI job (real dispatcher + worker processes, worker killed mid-sweep).
"""

from __future__ import annotations

import itertools
import json
import os
import pickle
import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Optional, Sequence

from repro.obs import trace as obs_trace
from repro.parallel.executors import (
    Executor,
    ExecutorUnavailableError,
    register_executor,
)
from repro.parallel.resilience import RetryPolicy, policy_rng
from repro.parallel.store import _MAGIC
from repro.parallel.wire import (
    DEFAULT_MAX_CONNECTIONS,
    DEFAULT_TIMEOUT,
    FrameService,
    ProtocolError,
    negotiate_caps,
    pack_str,
    parse_hostport_url,
    read_frame,
    unpack_str,
    wrap_context,
    write_frame,
)

__all__ = [
    "CLUSTER_URL_SCHEME",
    "CLUSTER_URL_ENV",
    "CLUSTER_WAIT_ENV",
    "CLUSTER_HEARTBEAT_ENV",
    "CLUSTER_PROTOCOL_VERSION",
    "ClusterDispatcher",
    "ClusterWorker",
    "ClusterExecutor",
    "parse_cluster_url",
    "dispatcher_status",
    "ensure_dispatcher",
    "shutdown_dispatchers",
]

#: URL scheme of the cluster dispatcher (``cluster://host:port``).
CLUSTER_URL_SCHEME = "cluster://"

#: Environment variable naming the dispatcher URL the run binds.
CLUSTER_URL_ENV = "REPRO_CLUSTER_URL"

#: Environment variable: seconds a batch waits for a (first or replacement)
#: worker before degrading to the serial path.
CLUSTER_WAIT_ENV = "REPRO_CLUSTER_WAIT"

#: Environment variable: seconds of heartbeat silence after which a worker
#: is presumed dead and its in-flight tasks are re-queued.
CLUSTER_HEARTBEAT_ENV = "REPRO_CLUSTER_HEARTBEAT"

CLUSTER_PROTOCOL_VERSION = 1

# Request opcodes (worker -> dispatcher).
_OP_HELLO = b"W"     # register; returns the assigned worker id
_OP_BEAT = b"B"      # heartbeat (also implicit in every poll)
_OP_POLL = b"T"      # ask for a task
_OP_RESULT = b"R"    # deliver a task result
_OP_STATS = b"S"     # observer: stats() as a JSON body
_OP_PING = b"?"

# Response statuses.
_ST_OK = b"+"
_ST_IDLE = b"-"      # poll: nothing to do right now
_ST_ERR = b"!"

_PING_BANNER = f"repro-cluster/{CLUSTER_PROTOCOL_VERSION}".encode("ascii")

# Result payload statuses (inside an _OP_RESULT frame).
_RESULT_OK = b"+"
_RESULT_EXC = b"!"
_RESULT_BAD = b"?"   # payload arrived unusable (wire rot): not a task failure

#: A task whose payload reads as unusable this many times stops being
#: re-queued: its result slot poisons to an unreadable blob, which the
#: executor maps to :class:`ExecutorUnavailableError` — the run degrades
#: to the bit-identical serial path instead of crashing or livelocking.
_BAD_PAYLOAD_LIMIT = 3

_DEFAULT_WORKER_WAIT = 10.0
_DEFAULT_HEARTBEAT_TIMEOUT = 10.0


def parse_cluster_url(url: str, *, allow_ephemeral: bool = False) -> tuple[str, int]:
    """``cluster://host:port`` -> ``(host, port)``; raises ``ValueError`` on junk.

    A malformed URL is a configuration typo and must fail loudly — unlike a
    dispatcher that cannot bind or a fleet with no live workers, which
    degrade to the serial path per the executor contract.  With
    ``allow_ephemeral``, port ``0`` is accepted (bind an ephemeral port —
    what in-process tests do; a worker can never *dial* port 0).
    """
    if allow_ephemeral and url.startswith(CLUSTER_URL_SCHEME):
        rest = url[len(CLUSTER_URL_SCHEME):].rstrip("/")
        host, sep, port_s = rest.rpartition(":")
        if sep and host and port_s == "0":
            return host, 0
    return parse_hostport_url(url, CLUSTER_URL_SCHEME)


def _env_seconds(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number of seconds, got {raw!r}") from None
    return max(0.0, value)


def _seal_task(fn: Callable[[Any], Any], task: Any) -> bytes:
    """Seal one ``(fn, task)`` pair as a versioned pickle payload."""
    return _MAGIC + pickle.dumps((fn, task), protocol=pickle.HIGHEST_PROTOCOL)


def _seal_value(value: Any) -> bytes:
    return _MAGIC + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def _open_payload(blob: bytes) -> Any:
    """Unpickle a versioned payload; raises ``ProtocolError`` on bad framing."""
    if not blob.startswith(_MAGIC):
        raise ProtocolError("payload does not carry the expected version magic")
    return pickle.loads(blob[len(_MAGIC):])


def _seal_exception(exc: BaseException) -> bytes:
    """Seal a task exception so it survives the wire (picklable or not)."""
    try:
        blob = _seal_value(exc)
        pickle.loads(blob[len(_MAGIC):])  # must round-trip worker-side
        return blob
    except Exception:
        return _seal_value(RuntimeError(f"{type(exc).__name__}: {exc}"))


# --------------------------------------------------------------- dispatcher


class _WorkerRecord:
    """Dispatcher-side view of one registered worker."""

    __slots__ = ("worker_id", "last_seen", "tasks_done")

    def __init__(self, worker_id: str, now: float) -> None:
        self.worker_id = worker_id
        self.last_seen = now
        self.tasks_done = 0


class ClusterDispatcher(FrameService):
    """Fan ``ParallelMap`` batches out to pull-based worker agents.

    One dispatcher serves the whole run: batches are submitted one at a
    time (``ParallelMap`` regions are sequential by construction; a lock
    enforces it regardless), workers stay connected across batches, and a
    generation counter stamped into every task token makes results from a
    previous — possibly aborted — batch impossible to misfile.
    """

    scheme = CLUSTER_URL_SCHEME

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        heartbeat_timeout: Optional[float] = None,
        straggler_after: Optional[float] = None,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        max_connections: Optional[int] = DEFAULT_MAX_CONNECTIONS,
    ) -> None:
        super().__init__(
            host=host, port=port, timeout=timeout, max_connections=max_connections
        )
        if heartbeat_timeout is None:
            heartbeat_timeout = _env_seconds(
                CLUSTER_HEARTBEAT_ENV, _DEFAULT_HEARTBEAT_TIMEOUT
            )
        self.heartbeat_timeout = max(0.1, float(heartbeat_timeout))
        # Stragglers are re-dispatched well after a dead worker would have
        # been reaped: duplicates are for *stuck* workers, not normal skew.
        self.straggler_after = (
            float(straggler_after)
            if straggler_after is not None
            else 6.0 * self.heartbeat_timeout
        )
        self._state = threading.Condition(threading.Lock())
        self._workers: dict[str, _WorkerRecord] = {}
        self._worker_seq = itertools.count(1)
        self._generation = 0
        self._batch_active = False
        self._blobs: list[bytes] = []
        self._queue: deque[int] = deque()
        self._assigned: dict[int, list[tuple[str, float]]] = {}
        self._results: dict[int, tuple[bool, bytes]] = {}
        self._bad_payloads: dict[int, int] = {}
        # PR 10: scheduling counters live on the typed metrics registry
        # (created by FrameService.__init__ above) so the telemetry opcode
        # sees them; they are still only mutated under self._state.
        self._c_batches_done = self.metrics.counter("cluster.batches_done")
        self._c_tasks_redispatched = self.metrics.counter(
            "cluster.tasks_redispatched"
        )
        self._c_payloads_rejected = self.metrics.counter(
            "cluster.payloads_rejected"
        )
        # Serialises whole batches (submit-to-collect), not frame handling.
        self._batch_lock = threading.Lock()

    def __enter__(self) -> "ClusterDispatcher":
        self.start()
        return self

    # ------------------------------------------------------------ batch API

    def run_batch(
        self,
        payloads: Sequence[bytes],
        order: Sequence[int],
        *,
        worker_wait: float,
        poll_interval: float = 0.05,
    ) -> list[tuple[bool, bytes]]:
        """Dispatch sealed payloads to the fleet; collect results in order.

        Returns one ``(ok, blob)`` per task, index-aligned with
        ``payloads``.  Raises :class:`ExecutorUnavailableError` when no
        worker is reachable for ``worker_wait`` seconds — at batch start
        (empty fleet) or mid-batch (every worker died); the pending batch
        is withdrawn first, so a late worker cannot run half of an
        abandoned batch.
        """
        with self._batch_lock:
            with self._state:
                self._generation += 1
                self._blobs = list(payloads)
                self._queue = deque(order)
                self._assigned = {}
                self._results = {}
                self._bad_payloads = {}
                self._batch_active = True
            try:
                return self._collect(len(payloads), worker_wait, poll_interval)
            finally:
                with self._state:
                    self._batch_active = False
                    self._blobs = []
                    self._queue.clear()
                    self._assigned.clear()
                    self._results = {}

    def _collect(
        self, n_tasks: int, worker_wait: float, poll_interval: float
    ) -> list[tuple[bool, bytes]]:
        no_worker_deadline = time.monotonic() + worker_wait
        with self._state:
            while True:
                if len(self._results) == n_tasks:
                    self._c_batches_done.inc()
                    return [self._results[idx] for idx in range(n_tasks)]
                now = time.monotonic()
                self._reap_dead_workers(now)
                if self._workers:
                    no_worker_deadline = now + worker_wait
                elif now >= no_worker_deadline:
                    raise ExecutorUnavailableError(
                        f"no cluster worker reachable at {self.url} "
                        f"within {worker_wait:.1f}s"
                    )
                self._state.wait(timeout=poll_interval)

    def _reap_dead_workers(self, now: float) -> None:
        """Drop heartbeat-silent workers and re-queue their in-flight tasks."""
        dead = [
            record.worker_id
            for record in self._workers.values()
            if now - record.last_seen > self.heartbeat_timeout
        ]
        for worker_id in dead:
            del self._workers[worker_id]
        if not dead:
            return
        for idx, assignees in list(self._assigned.items()):
            if idx in self._results:
                continue
            live = [(wid, at) for wid, at in assignees if wid in self._workers]
            if live:
                self._assigned[idx] = live
            else:
                # Every copy of this task died with its worker: put it at
                # the front so survivors pick it up before fresh work.
                del self._assigned[idx]
                self._queue.appendleft(idx)
                self._c_tasks_redispatched.inc()

    # ------------------------------------------------------------- dispatch

    def _handle_frame(self, request: bytes) -> bytes:
        try:
            status, body = self._dispatch(request)
        except ProtocolError:
            status, body = _ST_ERR, b"malformed request"
        except Exception:
            status, body = _ST_ERR, b"internal error"
        return status + body

    def _internal_error_frame(self) -> bytes:
        return _ST_ERR + b"internal error"

    def _dispatch(self, request: bytes) -> tuple[bytes, bytes]:
        op = request[:1]
        if op == _OP_HELLO:
            return self._handle_hello(request)
        if op == _OP_BEAT:
            return self._handle_beat(request)
        if op == _OP_POLL:
            return self._handle_poll(request)
        if op == _OP_RESULT:
            return self._handle_result(request)
        if op == _OP_STATS:
            # Observer endpoint (repro-chem cluster-status): counters only,
            # no worker registration and no effect on scheduling state.
            return _ST_OK, json.dumps(self.stats()).encode("utf-8")
        if op == _OP_PING:
            return _ST_OK, _PING_BANNER
        raise ProtocolError(f"unknown opcode {op!r}")

    def _handle_hello(self, request: bytes) -> tuple[bytes, bytes]:
        name, offset = unpack_str(request, 1)
        if offset != len(request):
            raise ProtocolError("trailing bytes after HELLO fields")
        base = name.strip() or "worker"
        with self._state:
            worker_id = f"{base}#{next(self._worker_seq)}"
            self._workers[worker_id] = _WorkerRecord(worker_id, time.monotonic())
            self._state.notify_all()
        return _ST_OK, pack_str(worker_id)

    def _touch(self, worker_id: str) -> Optional[_WorkerRecord]:
        record = self._workers.get(worker_id)
        if record is not None:
            record.last_seen = time.monotonic()
        return record

    def _handle_beat(self, request: bytes) -> tuple[bytes, bytes]:
        worker_id, offset = unpack_str(request, 1)
        if offset != len(request):
            raise ProtocolError("trailing bytes after BEAT fields")
        with self._state:
            if self._touch(worker_id) is None:
                # Reaped as dead (or the dispatcher restarted): the worker
                # must re-register before its beats count again.
                return _ST_ERR, b"unknown worker"
            self._state.notify_all()
        return _ST_OK, b""

    def _handle_poll(self, request: bytes) -> tuple[bytes, bytes]:
        worker_id, offset = unpack_str(request, 1)
        if offset != len(request):
            raise ProtocolError("trailing bytes after POLL fields")
        with self._state:
            if self._touch(worker_id) is None:
                return _ST_ERR, b"unknown worker"
            self._state.notify_all()
            if not self._batch_active:
                return _ST_IDLE, b""
            now = time.monotonic()
            if self._queue:
                idx = self._queue.popleft()
            else:
                idx = self._pick_straggler(worker_id, now)
                if idx is None:
                    return _ST_IDLE, b""
                self._c_tasks_redispatched.inc()
            self._assigned.setdefault(idx, []).append((worker_id, now))
            token = f"{self._generation}:{idx}"
            return _ST_OK, pack_str(token) + self._blobs[idx]

    def _pick_straggler(self, worker_id: str, now: float) -> Optional[int]:
        """Oldest unacknowledged task worth duplicating onto ``worker_id``."""
        best_idx, best_age = None, self.straggler_after
        for idx, assignees in self._assigned.items():
            if idx in self._results:
                continue
            if any(wid == worker_id for wid, _ in assignees):
                continue
            age = now - min(at for _, at in assignees)
            if age > best_age:
                best_idx, best_age = idx, age
        return best_idx

    def _handle_result(self, request: bytes) -> tuple[bytes, bytes]:
        worker_id, offset = unpack_str(request, 1)
        token, offset = unpack_str(request, offset)
        status = request[offset:offset + 1]
        if status not in (_RESULT_OK, _RESULT_EXC, _RESULT_BAD):
            raise ProtocolError("bad result status")
        blob = request[offset + 1:]
        generation_s, sep, idx_s = token.partition(":")
        if not sep or not generation_s.isdigit() or not idx_s.isdigit():
            raise ProtocolError("bad task token")
        generation, idx = int(generation_s), int(idx_s)
        with self._state:
            record = self._touch(worker_id)
            stale = (
                generation != self._generation
                or not self._batch_active
                or idx >= len(self._blobs)
                or idx in self._results
            )
            if not stale and status == _RESULT_BAD:
                # The payload arrived unusable at the worker: wire rot on
                # the dispatcher->worker leg, not a task failure.  Re-queue
                # the task (a re-send re-reads the pristine blob) up to
                # _BAD_PAYLOAD_LIMIT times, then poison the result slot so
                # the executor degrades the batch to the serial path.
                self._c_payloads_rejected.inc()
                count = self._bad_payloads.get(idx, 0) + 1
                self._bad_payloads[idx] = count
                self._assigned.pop(idx, None)
                if count <= _BAD_PAYLOAD_LIMIT:
                    if idx not in self._queue:
                        self._queue.appendleft(idx)
                        self._c_tasks_redispatched.inc()
                else:
                    self._results[idx] = (True, b"")  # unreadable on purpose
                self._state.notify_all()
                return _ST_OK, b""
            if not stale:
                # First result wins; duplicates from straggler re-dispatch
                # are discarded above, bit-identical anyway.
                self._results[idx] = (status == _RESULT_OK, blob)
                if record is not None:
                    record.tasks_done += 1
            self._state.notify_all()
        return _ST_OK, b""

    # ---------------------------------------------------------- introspection

    def stats(self) -> dict[str, Any]:
        """Fleet and scheduling counters (for logs and debugging)."""
        with self._state:
            return {
                "workers": sorted(self._workers),
                "batch_active": self._batch_active,
                "tasks_pending": len(self._queue),
                "tasks_assigned": len(self._assigned),
                "tasks_done": len(self._results),
                "batches_done": self._c_batches_done.value,
                "tasks_redispatched": self._c_tasks_redispatched.value,
                "payloads_rejected": self._c_payloads_rejected.value,
                "connections_shed": self.connections_shed,
            }


def dispatcher_status(
    url: str,
    *,
    timeout: float = 5.0,
    retries: int = 0,
    retry_delay: float = 0.5,
    retry_seed: object = None,
) -> dict[str, Any]:
    """One-shot :meth:`ClusterDispatcher.stats` fetch from outside the run.

    Dials ``cluster://host:port``, sends the observer STATS opcode and
    returns the counters dict.  Raises ``ConnectionError`` when no
    dispatcher answers (dead run, wrong URL) and
    :class:`~repro.parallel.wire.ProtocolError` when something else is
    listening there — ``repro-chem cluster-status`` maps both onto a clean
    non-zero exit.  ``retries`` re-dials an unreachable dispatcher under
    the shared jittered backoff policy (default 0: one shot, exactly the
    old behaviour).
    """
    host, port = parse_cluster_url(url)
    policy = RetryPolicy(
        retries=retries, base_delay=retry_delay, max_delay=30.0, jitter=0.5
    )
    state = policy.start(policy_rng(retry_seed))
    while True:
        try:
            with socket.create_connection((host, port), timeout=timeout) as sock:
                sock.settimeout(timeout)
                with sock.makefile("rb") as rfile, sock.makefile("wb") as wfile:
                    write_frame(wfile, _OP_STATS)
                    response = read_frame(rfile)
            break
        except OSError as exc:
            delay = state.note_failure()
            if delay is None:
                raise ConnectionError(
                    f"no cluster dispatcher reachable at {url}: {exc}"
                )
            time.sleep(delay)
    if response[:1] != _ST_OK:
        raise ProtocolError(
            f"dispatcher at {url} refused STATS: "
            f"{response[1:].decode('utf-8', 'replace')!r}"
        )
    try:
        stats = json.loads(response[1:])
    except ValueError:
        raise ProtocolError(f"service at {url} is not a cluster dispatcher")
    if not isinstance(stats, dict):
        raise ProtocolError(f"service at {url} is not a cluster dispatcher")
    return stats


# ------------------------------------------------------------------- worker


class ClusterWorker:
    """The worker agent: poll the dispatcher, run tasks, push results.

    One persistent connection, serialised by a lock; a background thread
    heartbeats through it while the main loop is busy executing a task, so
    long fits do not read as death.  A lost connection is retried (with a
    fresh HELLO — the dispatcher hands out a new id) until the dispatcher
    has been unreachable for ``reconnect_window`` seconds, at which point
    :meth:`run` returns; ``repro-chem cluster-work`` exposes the window as
    ``--idle-exit`` so fleets drain themselves after the run ends.

    Task payloads are the run's own pickled ``(fn, task)`` pairs; the
    worker executes them exactly like a local pool worker — including the
    per-task memo-store statistics flush — and ships back either the
    pickled value or the pickled exception.
    """

    def __init__(
        self,
        url: str,
        *,
        name: Optional[str] = None,
        timeout: float = 5.0,
        poll_interval: float = 0.05,
        heartbeat_interval: float = 2.0,
        reconnect_window: float = 10.0,
        max_tasks: Optional[int] = None,
        retry_seed: object = None,
    ) -> None:
        self.host, self.port = parse_cluster_url(url)
        self.url = f"{CLUSTER_URL_SCHEME}{self.host}:{self.port}"
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        self.reconnect_window = reconnect_window
        self.max_tasks = max_tasks
        self._rng = policy_rng(retry_seed)
        #: Redial cadence while the dispatcher is away: jittered, doubling
        #: from the poll interval up to 2s, deadline = reconnect_window —
        #: the same policy engine every other wire client uses.
        self._redial = RetryPolicy(
            retries=None,
            base_delay=max(poll_interval, 0.05),
            max_delay=2.0,
            jitter=0.5,
            deadline=reconnect_window,
        )
        self.tasks_done = 0
        self._io_lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._worker_id: Optional[str] = None
        # Dispatcher wire capabilities (None = not yet probed on this
        # connection); probed lazily and only when tracing is active, so
        # tracing-off wire behaviour is byte-identical to before.
        self._caps: Optional[frozenset] = None
        self._stop = threading.Event()

    # ---------------------------------------------------------- connection

    def stop(self) -> None:
        """Ask the loop to exit after the in-flight task (thread-safe)."""
        self._stop.set()

    def _teardown(self) -> None:
        for closer in (self._rfile, self._wfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = self._rfile = self._wfile = None
        self._worker_id = None
        self._caps = None

    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        write_frame(self._wfile, _OP_HELLO + pack_str(self.name))
        response = read_frame(self._rfile)
        if response[:1] != _ST_OK:
            raise ProtocolError("dispatcher refused registration")
        self._worker_id, _ = unpack_str(response, 1)

    def _request(self, build: Callable[[str], bytes]) -> Optional[tuple[bytes, bytes]]:
        """One round trip (connecting + registering first if needed).

        ``build`` maps the current worker id to the request frame — the id
        is only known post-HELLO, which happens inside the lock on a fresh
        connection.  Returns ``None`` on any transport failure, after
        tearing the connection down so the next call redials.
        """
        with self._io_lock:
            try:
                self._ensure_connected()
                payload = build(self._worker_id)
                context = obs_trace.wire_context()
                if context is not None:
                    if self._caps is None:
                        self._caps = negotiate_caps(self._rfile, self._wfile)
                    if "context" in self._caps:
                        payload = wrap_context(payload, context)
                write_frame(self._wfile, payload)
                response = read_frame(self._rfile)
                return response[:1], response[1:]
            except (OSError, ProtocolError):
                self._teardown()
                return None

    # ---------------------------------------------------------------- loop

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            # Only beat over an existing connection: the main loop owns
            # redialing, so a dead dispatcher costs one connect attempt per
            # poll, not two.
            if self._sock is not None:
                self._request(lambda wid: _OP_BEAT + pack_str(wid))

    def run(self) -> int:
        """Serve until stopped or the dispatcher stays away; returns tasks run."""
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="cluster-heartbeat", daemon=True
        )
        heartbeat.start()
        redial = None
        try:
            while not self._stop.is_set():
                if self.max_tasks is not None and self.tasks_done >= self.max_tasks:
                    break
                response = self._request(lambda wid: _OP_POLL + pack_str(wid))
                if response is None:
                    # Dispatcher away: back off under the shared redial
                    # policy; note_failure() goes None once the window
                    # (the policy deadline) has elapsed without contact.
                    if redial is None:
                        redial = self._redial.start(self._rng)
                    delay = redial.note_failure()
                    if delay is None:
                        break
                    self._stop.wait(delay)
                    continue
                redial = None
                status, body = response
                if status == _ST_OK:
                    try:
                        token, offset = unpack_str(body, 0)
                    except ProtocolError:
                        # A garbled poll frame must not kill the worker:
                        # drop the connection and redial — the dispatcher
                        # will re-queue the task it thinks we took.
                        with self._io_lock:
                            self._teardown()
                        continue
                    self._run_and_report(token, body[offset:])
                elif status == _ST_ERR:
                    # "unknown worker": we were presumed dead — re-register.
                    self._teardown()
                else:
                    self._stop.wait(self.poll_interval)
        finally:
            self._stop.set()
            with self._io_lock:
                self._teardown()
        return self.tasks_done

    def _run_and_report(self, token: str, blob: bytes) -> None:
        from repro.parallel.backend import _call_task

        try:
            fn, task = _open_payload(blob)
        except Exception as exc:
            # An unusable payload is wire rot, not a task failure: report
            # it as BAD so the dispatcher re-queues the pristine blob
            # instead of surfacing a bogus exception to the run.
            self._request(
                lambda wid: _OP_RESULT
                + pack_str(wid)
                + pack_str(token)
                + _RESULT_BAD
                + repr(exc).encode("utf-8", "replace")
            )
            return
        else:
            with obs_trace.span(
                "cluster.task", tags={"token": token, "worker": self.name}
            ) as task_span:
                try:
                    value = _call_task(fn, task)
                except Exception as exc:
                    status, payload = _RESULT_EXC, _seal_exception(exc)
                else:
                    try:
                        status, payload = _RESULT_OK, _seal_value(value)
                    except Exception as exc:
                        status, payload = _RESULT_EXC, _seal_exception(
                            RuntimeError(f"task result does not pickle: {exc!r}")
                        )
                task_span.set_tag("ok", status == _RESULT_OK)
                self.tasks_done += 1
                # Report from inside the span so the result frame carries
                # its context: the dispatcher's frame span links back to
                # the worker's task span.
                self._request(
                    lambda wid: _OP_RESULT
                    + pack_str(wid)
                    + pack_str(token)
                    + status
                    + payload
                )


# ------------------------------------------------ dispatcher registry


_DISPATCHERS: dict[str, ClusterDispatcher] = {}
_DISPATCHERS_LOCK = threading.Lock()


def ensure_dispatcher(url: str, **kwargs: Any) -> ClusterDispatcher:
    """The process-wide dispatcher bound at ``url`` (started on first use).

    One dispatcher per URL per process: repeated ``ParallelMap`` regions
    reuse it, so workers stay connected across batches.  ``port=0`` binds
    an ephemeral port and registers the dispatcher under its *bound* URL —
    tests create it this way, then point ``REPRO_CLUSTER_URL`` at
    ``dispatcher.url``.  Extra ``kwargs`` reach the constructor only when
    a new dispatcher is actually created.
    """
    host, port = parse_cluster_url(url, allow_ephemeral=True)
    key = f"{CLUSTER_URL_SCHEME}{host}:{port}"
    with _DISPATCHERS_LOCK:
        if port != 0 and key in _DISPATCHERS:
            return _DISPATCHERS[key]
        dispatcher = ClusterDispatcher(host=host, port=port, **kwargs)
        dispatcher.start()
        _DISPATCHERS[dispatcher.url] = dispatcher
        return dispatcher


def shutdown_dispatchers() -> None:
    """Shut down and forget every process-wide dispatcher (test teardown)."""
    with _DISPATCHERS_LOCK:
        dispatchers = list(_DISPATCHERS.values())
        _DISPATCHERS.clear()
    for dispatcher in dispatchers:
        dispatcher.shutdown()


# ----------------------------------------------------------------- executor


@register_executor
class ClusterExecutor(Executor):
    """``ParallelMap`` backend that fans batches over the cluster wire.

    Selected like any registered executor — ``REPRO_EXECUTOR=cluster`` or
    ``executor="cluster"`` — with the dispatcher address taken from
    ``REPRO_CLUSTER_URL`` (or the ``url`` argument).  A missing or
    malformed URL is a configuration error and fails loudly; a URL that
    cannot be bound, or a fleet with no reachable worker, degrades to the
    bit-identical serial path via :class:`ExecutorUnavailableError`.
    """

    name = "cluster"

    def __init__(
        self, url: Optional[str] = None, *, worker_wait: Optional[float] = None
    ) -> None:
        self.url = url
        self.worker_wait = worker_wait

    def supports(self, fn: Callable[[Any], Any], tasks: list[Any]) -> bool:
        """Same pre-flight pickling check as the process pool.

        One representative task is checked (a fan-out's tasks are
        structurally homogeneous); an un-picklable batch routes to the
        serial path instead of failing on the wire.
        """
        try:
            pickle.dumps(fn)
            pickle.dumps(tasks[0])
        except Exception:
            return False
        return True

    def _resolve_url(self) -> str:
        url = self.url or os.environ.get(CLUSTER_URL_ENV, "").strip()
        if not url:
            raise ValueError(
                f"The cluster executor needs a dispatcher URL: set "
                f"{CLUSTER_URL_ENV}=cluster://host:port (the address this run "
                f"binds and workers dial) or pass ClusterExecutor(url=...)."
            )
        return url

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: list[Any],
        *,
        order: Sequence[int],
        n_workers: int,
    ) -> list[Any]:
        url = self._resolve_url()
        parse_cluster_url(url, allow_ephemeral=True)  # typos fail loudly early
        try:
            dispatcher = ensure_dispatcher(url)
        except OSError as exc:
            raise ExecutorUnavailableError(
                f"cannot bind cluster dispatcher at {url}: {exc}"
            ) from exc
        payloads = [_seal_task(fn, task) for task in tasks]
        worker_wait = (
            self.worker_wait
            if self.worker_wait is not None
            else _env_seconds(CLUSTER_WAIT_ENV, _DEFAULT_WORKER_WAIT)
        )
        raw = dispatcher.run_batch(payloads, order, worker_wait=worker_wait)
        results: list[Any] = [None] * len(tasks)
        failure: Optional[BaseException] = None
        for idx, (ok, blob) in enumerate(raw):
            try:
                value = _open_payload(blob)
            except Exception as exc:
                # A result that does not even unpickle is wire/worker rot,
                # not a task failure: recompute the batch serially.
                raise ExecutorUnavailableError(
                    f"cluster result for task {idx} is unreadable"
                ) from exc
            if ok:
                results[idx] = value
            elif failure is None:
                if not isinstance(value, BaseException):
                    raise ExecutorUnavailableError(
                        f"cluster error result for task {idx} is not an exception"
                    )
                failure = value
        if failure is not None:
            # The first failing task in task order, exactly like the
            # process pool's futures loop.
            raise failure
        return results
