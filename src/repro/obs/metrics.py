"""Typed metrics for the whole stack — counters, gauges, histograms.

Every stats producer in the distributed layers (micro-batcher, serve
server, model registry, memo store, cluster dispatcher) grew its own
ad-hoc counter dict between PRs 5 and 9.  This module gives them one
typed substrate — Prometheus-shaped, zero dependencies — so the
``telemetry`` wire opcode can expose a uniform, versioned snapshot and
the legacy ``stats()`` dicts become *views* over the registry instead of
parallel bookkeeping.

Design points:

* **Per-instance registries.**  A :class:`MetricsRegistry` belongs to the
  object that owns the counters (one per :class:`ServeServer`, one per
  dispatcher, ...), not to the process: in-process tests routinely run
  several servers side by side and must not see each other's traffic.
* **Fixed log-spaced latency buckets.**  Every latency histogram shares
  :data:`LATENCY_BUCKETS_S` (powers of √2 from 100 µs up), so quantiles
  derived server-side — :meth:`Histogram.quantile` — are comparable
  across services and across processes, and two snapshots can be summed
  bucket-by-bucket without resampling.
* **Thread safety.**  Instruments take a per-instrument lock on update;
  the registry locks only on create/snapshot.  Updates on the hot path
  are a dict-free increment.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
]

#: Shared latency bucket upper bounds, in seconds: √2-spaced from 100 µs
#: to ~105 s (41 finite buckets + implicit +inf overflow).  √2 spacing
#: bounds the relative error of a derived quantile by ~41 % worst-case,
#: typically far less with the log-linear interpolation below.
LATENCY_BUCKETS_S: tuple[float, ...] = tuple(
    1e-4 * math.sqrt(2.0) ** i for i in range(41)
)


class Counter:
    """A monotonically increasing count (requests, errors, rows...)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter can only increase.")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (queue depth, in-flight requests)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with server-side quantile derivation.

    Buckets are upper bounds; an observation lands in the first bucket
    whose bound is >= the value, or the overflow slot past the last
    bound.  ``quantile`` interpolates log-linearly inside the winning
    bucket — with log-spaced bounds that is linear interpolation in the
    exponent, the natural choice for latency distributions.
    """

    __slots__ = ("name", "_lock", "_bounds", "_counts", "_count", "_sum", "_max")

    def __init__(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_S
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= 0 for b in bounds) or list(bounds) != sorted(
            set(bounds)
        ):
            raise ValueError("buckets must be positive, strictly increasing.")
        self.name = name
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow past the last bound
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0.0 or value != value:  # negative or NaN: clamp, never throw
            value = 0.0
        idx = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Returns 0.0 for an empty histogram.  The estimate is exact to
        within one bucket's width — with √2-spaced buckets, a relative
        error bounded by √2 and usually much smaller.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1].")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            observed_max = self._max
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0.0
        for idx, n in enumerate(counts):
            if n == 0:
                continue
            if seen + n >= rank:
                frac = min(1.0, max(0.0, (rank - seen) / n))
                hi = self._bounds[idx] if idx < len(self._bounds) else observed_max
                lo = self._bounds[idx - 1] if idx > 0 else hi / math.sqrt(2.0)
                if hi <= lo:
                    return hi
                # Log-linear interpolation: linear in the exponent.
                return lo * (hi / lo) ** frac
            seen += n
        return observed_max

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            return {
                "count": self._count,
                "sum": self._sum,
                "max": self._max,
                "bounds": list(self._bounds),
                "counts": counts,
            }


class MetricsRegistry:
    """Get-or-create home for one component's instruments.

    Names follow ``dotted.name`` convention with optional label suffixes
    rendered as ``name{k=v,...}`` — the snapshot key.  Re-requesting the
    same name (and labels) returns the same instrument, so producers can
    call :meth:`counter` on the hot path without holding references.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Any] = {}

    @staticmethod
    def _key(name: str, labels: dict[str, str]) -> str:
        if not labels:
            return name
        inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        return f"{name}{{{inner}}}"

    def _get_or_create(self, cls: type, name: str, labels: dict[str, str], **kwargs):
        key = self._key(name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(key, **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {key!r} already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}"
                )
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        **labels: str,
    ) -> Histogram:
        kwargs = {} if buckets is None else {"buckets": tuple(buckets)}
        return self._get_or_create(Histogram, name, labels, **kwargs)

    def snapshot(self) -> dict[str, Any]:
        """One JSON-able dict of every instrument, typed by section.

        Histograms carry their bucket counts plus derived p50/p95/p99 so
        a scraper never needs the bucket math client-side.
        """
        with self._lock:
            instruments = list(self._instruments.values())
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, Any]] = {}
        for instrument in instruments:
            if isinstance(instrument, Counter):
                counters[instrument.name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[instrument.name] = instrument.value
            elif isinstance(instrument, Histogram):
                doc = instrument.snapshot()
                doc["p50"] = instrument.quantile(0.50)
                doc["p95"] = instrument.quantile(0.95)
                doc["p99"] = instrument.quantile(0.99)
                histograms[instrument.name] = doc
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
