"""Dapper-style request tracing over repro's own wire.

A *trace* is one logical request as it crosses processes: the CLI verb
or ``ServeClient`` call that starts it, the serve replica that answers,
the registry load or ``memo://`` fetch the answer needed.  Each hop is a
*span* — ``(trace_id, span_id, parent_id)`` plus a wall-clock start, a
duration, and a ``hops`` breakdown of where the time went (client wait,
queue/coalesce wait, batch traversal, registry load, memo fetch,
retry/backoff sleeps).

The contract mirrors the resilience layer's determinism discipline:

* **Tracing changes no answered byte.**  Spans are observed time, never
  control flow; the wire context rides a separate envelope
  (:mod:`repro.parallel.wire`) that old peers ignore, and is only sent
  when tracing is enabled — tracing *off* is wire-identical to PR 9.
* **Seeded ids replay.**  Trace/span ids come from a dedicated RNG
  seeded exactly like retry jitter (explicit seed > ``REPRO_TRACE_SEED``
  > OS entropy), so a seeded chaos run reproduces the same trace tree.
* **Bounded everywhere.**  Finished spans land in a fixed-size
  in-process ring (the ``telemetry`` opcode serves it) and, only when a
  trace dir is configured (``--trace-dir`` / ``REPRO_TRACE_DIR``), in an
  append-only JSONL file per process.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import random
import threading
import time
from collections import deque
from typing import Any, Iterator, Optional

__all__ = [
    "TRACE_DIR_ENV",
    "TRACE_SEED_ENV",
    "Span",
    "annotate",
    "configure_tracing",
    "current_span",
    "new_trace_id",
    "parent_from_wire",
    "recent_spans",
    "reset_tracing",
    "span",
    "tracing_enabled",
    "trace_dir",
    "wire_context",
]

#: Environment variable: directory for per-process JSONL span sinks.
#: Setting it both enables tracing and selects the sink location.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Environment variable seeding trace/span id generation (same precedence
#: model as ``REPRO_RETRY_SEED``: explicit seed > env > OS entropy).
TRACE_SEED_ENV = "REPRO_TRACE_SEED"

#: Finished spans kept in process for the telemetry opcode.
RING_SIZE = 512

_lock = threading.Lock()
_enabled: Optional[bool] = None          # None: derive from the trace dir
_trace_dir_override: Optional[str] = None
_rng: Optional[random.Random] = None
_ring: deque = deque(maxlen=RING_SIZE)
_sink_file = None
_sink_path: Optional[str] = None

_current: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


# ------------------------------------------------------------- configuration


def configure_tracing(
    *,
    enabled: Optional[bool] = None,
    trace_dir: Optional[str] = None,
    seed: object = None,
) -> None:
    """Set process-wide tracing state (CLI knobs and tests call this).

    ``enabled`` forces tracing on/off regardless of the trace dir;
    ``trace_dir`` selects the JSONL sink (and enables tracing unless
    ``enabled=False`` is forced); ``seed`` reseeds the id generator.
    """
    global _enabled, _trace_dir_override, _rng, _sink_file, _sink_path
    with _lock:
        if enabled is not None:
            _enabled = bool(enabled)
        if trace_dir is not None:
            _trace_dir_override = str(trace_dir) or None
            if _sink_file is not None:
                try:
                    _sink_file.close()
                except OSError:
                    pass
            _sink_file = None
            _sink_path = None
        if seed is not None:
            _rng = random.Random(str(seed))


def reset_tracing() -> None:
    """Back to ambient-env defaults; drops the ring and sink (tests)."""
    global _enabled, _trace_dir_override, _rng, _sink_file, _sink_path
    with _lock:
        _enabled = None
        _trace_dir_override = None
        _rng = None
        _ring.clear()
        if _sink_file is not None:
            try:
                _sink_file.close()
            except OSError:
                pass
        _sink_file = None
        _sink_path = None


def tracing_enabled() -> bool:
    """True when spans should be created and wire context attached."""
    with _lock:
        if _enabled is not None:
            return _enabled
        if _trace_dir_override is not None:
            return True
    return bool(os.environ.get(TRACE_DIR_ENV, "").strip())


def trace_dir() -> Optional[str]:
    """The JSONL sink directory, or None when only the ring is kept."""
    with _lock:
        if _trace_dir_override is not None:
            return _trace_dir_override
    return os.environ.get(TRACE_DIR_ENV, "").strip() or None


# ------------------------------------------------------------------ identity


def _ids_rng() -> random.Random:
    """The id generator, seeded on first use (explicit > env > entropy)."""
    global _rng
    with _lock:
        if _rng is None:
            env_seed = os.environ.get(TRACE_SEED_ENV, "").strip()
            _rng = random.Random(env_seed) if env_seed else random.Random()
        return _rng


def _new_id() -> str:
    rng = _ids_rng()
    with _lock:
        return f"{rng.getrandbits(64):016x}"


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id (deterministic under a seed)."""
    return _new_id()


# --------------------------------------------------------------------- spans


class Span:
    """One timed hop of a trace; finished spans are immutable records."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "tags",
        "hops",
        "t_wall",
        "_t0",
        "duration_s",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        tags: Optional[dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.tags: dict[str, Any] = dict(tags) if tags else {}
        self.hops: dict[str, float] = {}
        self.t_wall = time.time()
        self._t0 = time.perf_counter()
        self.duration_s: Optional[float] = None

    def annotate(self, key: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the ``key`` hop (clamped >= 0)."""
        self.hops[key] = self.hops.get(key, 0.0) + max(0.0, float(seconds))

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def finish(self) -> None:
        if self.duration_s is None:
            self.duration_s = max(0.0, time.perf_counter() - self._t0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t_wall": self.t_wall,
            "duration_s": self.duration_s,
            "hops": dict(self.hops),
            "tags": dict(self.tags),
        }


class _NullSpan:
    """No-op stand-in when tracing is off: every method swallows."""

    __slots__ = ()

    trace_id = span_id = parent_id = None

    def annotate(self, key: str, seconds: float) -> None:
        pass

    def set_tag(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


def current_span() -> Optional[Span]:
    """The live span of this thread/context, or None."""
    return _current.get()


def annotate(key: str, seconds: float) -> None:
    """Add ``seconds`` to the ``key`` hop of the current span, if any.

    The one-line hook instrumented code calls: retry backoff sleeps,
    queue waits, memo fetches.  Free (one contextvar read) when no span
    is live.
    """
    live = _current.get()
    if live is not None:
        live.annotate(key, seconds)


@contextlib.contextmanager
def span(
    name: str,
    *,
    parent: Optional[dict[str, Any]] = None,
    tags: Optional[dict[str, Any]] = None,
    force: bool = False,
) -> Iterator[Any]:
    """Context manager producing one span (or a no-op when tracing is off).

    ``parent`` is an inbound wire context (``{"trace_id", "span_id"}``);
    without one, the parent is the context's current span.  ``force``
    records the span even when tracing is globally off — servers use it
    for frames that *arrive* carrying a context, so a traced client gets
    server-side spans out of an otherwise untraced replica.
    """
    if parent is None and not force and not tracing_enabled():
        yield _NULL_SPAN
        return
    enclosing = _current.get()
    if parent is not None and parent.get("trace_id"):
        trace_id = str(parent["trace_id"])
        parent_id = str(parent.get("span_id") or "") or None
    elif enclosing is not None:
        trace_id = enclosing.trace_id
        parent_id = enclosing.span_id
    else:
        trace_id = _new_id()
        parent_id = None
    record = Span(
        name,
        trace_id=trace_id,
        span_id=_new_id(),
        parent_id=parent_id,
        tags=tags,
    )
    token = _current.set(record)
    try:
        yield record
    finally:
        _current.reset(token)
        record.finish()
        _emit(record)


# ------------------------------------------------------------- wire context


def wire_context() -> Optional[str]:
    """The current span as a wire-ready JSON context, or None.

    None both when tracing is off and when no span is live — callers can
    use it directly as the optional-envelope argument.
    """
    live = _current.get()
    if live is None or not tracing_enabled():
        return None
    return json.dumps(
        {"trace_id": live.trace_id, "span_id": live.span_id},
        separators=(",", ":"),
    )


def parent_from_wire(ctx: Optional[str]) -> Optional[dict[str, Any]]:
    """Decode an inbound wire context; junk decodes to None, never raises."""
    if not ctx:
        return None
    try:
        doc = json.loads(ctx)
    except ValueError:
        return None
    if not isinstance(doc, dict) or not doc.get("trace_id"):
        return None
    return {
        "trace_id": str(doc["trace_id"]),
        "span_id": str(doc.get("span_id") or "") or None,
    }


# ------------------------------------------------------------ ring and sink


def recent_spans(limit: int = 100) -> list[dict[str, Any]]:
    """The newest finished spans (oldest first), up to ``limit``."""
    with _lock:
        spans = list(_ring)
    if limit is not None and limit >= 0:
        spans = spans[-limit:]
    return spans


def _emit(record: Span) -> None:
    doc = record.to_dict()
    with _lock:
        _ring.append(doc)
    directory = trace_dir()
    if directory:
        _write_jsonl(directory, doc)


def _write_jsonl(directory: str, doc: dict[str, Any]) -> None:
    """Append one span to this process's sink; sink failure never raises.

    The handle is keyed by path+pid so a forked worker writes its own
    file instead of interleaving with its parent's.
    """
    global _sink_file, _sink_path
    path = os.path.join(directory, f"trace-{os.getpid()}.jsonl")
    line = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    with _lock:
        try:
            if _sink_file is None or _sink_path != path:
                if _sink_file is not None:
                    try:
                        _sink_file.close()
                    except OSError:
                        pass
                os.makedirs(directory, exist_ok=True)
                _sink_file = open(path, "a", encoding="utf-8")
                _sink_path = path
            _sink_file.write(line + "\n")
            _sink_file.flush()
        except OSError:
            _sink_file = None
            _sink_path = None
