"""``repro.obs`` — zero-dependency observability for the whole stack.

Three layers, built on nothing but the stdlib and repro's own wire:

* :mod:`repro.obs.trace` — per-request trace contexts propagated through
  every wire protocol, span records with a per-hop timing breakdown, a
  bounded in-process ring and an optional JSONL sink.
* :mod:`repro.obs.metrics` — typed ``Counter`` / ``Gauge`` /
  ``Histogram`` instruments on a per-component registry; the legacy
  ``stats()`` dicts are views over it.
* the ``telemetry`` wire opcode (:mod:`repro.parallel.wire`) — a
  versioned JSON snapshot of both, scrapeable from outside the process
  (``repro-chem query fleet-stats``, ``repro-chem trace show/top``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.obs.trace import (
    TRACE_DIR_ENV,
    TRACE_SEED_ENV,
    Span,
    annotate,
    configure_tracing,
    current_span,
    new_trace_id,
    parent_from_wire,
    recent_spans,
    reset_tracing,
    span,
    trace_dir,
    tracing_enabled,
    wire_context,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "TRACE_DIR_ENV",
    "TRACE_SEED_ENV",
    "Span",
    "annotate",
    "configure_tracing",
    "current_span",
    "new_trace_id",
    "parent_from_wire",
    "recent_spans",
    "reset_tracing",
    "span",
    "trace_dir",
    "tracing_enabled",
    "wire_context",
]
