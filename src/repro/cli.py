"""Command-line interface: ``repro-chem``.

Sub-commands
------------
``generate-data``
    Simulate a paper-sized CCSD performance dataset and write it to CSV.
``simulate``
    Run a single CCSD-iteration experiment for one configuration.
``ask``
    Train a runtime model and answer the shortest-time or budget question
    for a problem size.
``compare-models``
    Run the nine-model / three-search comparison (Figures 1–2).
``active-learn``
    Run an active-learning campaign (Figures 3–6).
``memo-serve``
    Serve a disk memo store over TCP so multiple processes/hosts share one
    memo (point runs at it with ``--memo-dir memo://host:port``).
``cluster-work``
    Run a cluster worker agent: dial a run's ``cluster://host:port``
    dispatcher and execute its ``ParallelMap`` task batches (the run sets
    ``REPRO_EXECUTOR=cluster`` and ``REPRO_CLUSTER_URL``).
``cluster-status``
    Print a running dispatcher's scheduling counters as JSON, from outside
    the run (observer endpoint; no worker registration).
``serve``
    Keep fitted runtime models hot behind a socket and answer
    prediction/advisor queries online (micro-batched packed prediction;
    warm-loads from / publishes to a model registry; registry aliases
    route lazily with an LRU cap, overload sheds past ``--max-inflight``,
    and packed arenas are shared per host through POSIX shared memory).
``query``
    Fire predict/stq/bq/health/stats/fleet-stats queries at a running
    ``serve`` process — or a fleet of them (repeat ``--url``; requests
    consistent-hash across replicas with failover).  ``fleet-stats``
    scrapes every replica's versioned telemetry snapshot over the wire.
``trace``
    Inspect recorded trace spans: ``trace top`` ranks the slowest traces,
    ``trace show`` reconstructs one trace's span tree with per-hop
    timings.  Spans come from ``--trace-dir`` JSONL sinks (written by
    servers/workers started with tracing on) and/or live replica
    telemetry (``--url``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

import numpy as np

from repro._version import __version__

__all__ = ["main", "build_parser"]


def _jobs_spec(value: str) -> int:
    n = int(value)
    if n == 0:
        raise argparse.ArgumentTypeError("--jobs must not be 0 (use 1 for serial, -1 for all CPUs).")
    return n


def _add_memo_dir_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memo-dir",
        default=os.environ.get("REPRO_MEMO_DIR") or None,
        help=(
            "Cross-process memo store: a directory ('~' is expanded) or a "
            "memo://host:port service URL (default: $REPRO_MEMO_DIR). Workers "
            "and successive runs share candidate evaluations through it, and "
            "interrupted sweeps resume; results are identical with or without it."
        ),
    )


def _activate_memo_store(args: argparse.Namespace) -> Optional[dict]:
    """Activate the memo store and return its baseline counters.

    The store's stats snapshots persist across runs (that is what makes
    them aggregate across a pool); the baseline lets the end-of-run
    summary report *this run's* activity rather than store-lifetime
    totals.
    """
    if not getattr(args, "memo_dir", None):
        return None
    from repro.parallel.store import configure_store

    store = configure_store(args.memo_dir)
    agg = store.aggregated_stats()
    return {"store": dict(agg["store"]), "fits": agg["fits"]}


def _print_memo_summary(baseline: Optional[dict]) -> None:
    from repro.parallel.store import get_store

    store = get_store()
    if store is None:
        return
    agg = store.aggregated_stats()
    base = baseline or {"store": {}, "fits": 0}
    delta = {
        name: max(0, agg["store"][name] - base["store"].get(name, 0))
        for name in ("hits", "misses", "puts")
    }
    fits = max(0, agg["fits"] - base["fits"])
    print(
        f"[memo] dir={store.location} hits={delta['hits']} misses={delta['misses']} "
        f"puts={delta['puts']} objects={agg['store']['objects']} fits={fits} (this run)"
    )


def _add_trace_dir_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-dir",
        default=os.environ.get("REPRO_TRACE_DIR") or None,
        metavar="DIR",
        help=(
            "Enable request tracing and append finished spans to "
            "DIR/trace-<pid>.jsonl (default: $REPRO_TRACE_DIR; unset "
            "disables tracing). Tracing never changes answered bytes; "
            "seed trace ids with $REPRO_TRACE_SEED for reproducible runs."
        ),
    )


def _configure_tracing(args: argparse.Namespace) -> None:
    if getattr(args, "trace_dir", None):
        from repro.obs.trace import configure_tracing

        configure_tracing(trace_dir=args.trace_dir)


def _add_wire_robustness_options(parser: argparse.ArgumentParser) -> None:
    """The frame-scaffolding knobs every framed server exposes."""
    parser.add_argument(
        "--conn-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "Per-connection socket timeout: a client that stays silent or "
            "stalls mid-frame this long is disconnected and its handler "
            "thread reclaimed (default: 300; 0 disables). Healthy idle "
            "clients transparently reconnect on their next operation."
        ),
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=None,
        metavar="N",
        help=(
            "Cap on concurrently open client connections; arrivals past the "
            "cap are shed (closed immediately) instead of queueing handler "
            "threads unboundedly (default: 128; 0 disables)."
        ),
    )


def _wire_kwargs(args: argparse.Namespace) -> dict:
    """Map the CLI robustness flags onto FrameService keyword arguments."""
    kwargs = {}
    if args.conn_timeout is not None:
        kwargs["timeout"] = args.conn_timeout
    if args.max_connections is not None:
        kwargs["max_connections"] = args.max_connections
    return kwargs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chem",
        description="ML-guided estimation of computational resources for CCSD computations.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate-data", help="Generate a CCSD performance dataset CSV.")
    p_gen.add_argument("--machine", choices=["aurora", "frontier"], default="aurora")
    p_gen.add_argument("--output", required=True, help="Output CSV path.")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--rows", type=int, default=None, help="Dataset size (default: paper size).")

    p_sim = sub.add_parser("simulate", help="Simulate one CCSD iteration.")
    p_sim.add_argument("--machine", choices=["aurora", "frontier"], default="aurora")
    p_sim.add_argument("-O", "--occupied", type=int, required=True)
    p_sim.add_argument("-V", "--virtual", type=int, required=True)
    p_sim.add_argument("--nodes", type=int, required=True)
    p_sim.add_argument("--tile", type=int, required=True)
    p_sim.add_argument("--seed", type=int, default=0)

    p_ask = sub.add_parser("ask", help="Answer the shortest-time or budget question.")
    p_ask.add_argument("question", choices=["stq", "bq"])
    p_ask.add_argument("--machine", choices=["aurora", "frontier"], default="aurora")
    p_ask.add_argument("-O", "--occupied", type=int, required=True)
    p_ask.add_argument("-V", "--virtual", type=int, required=True)
    p_ask.add_argument("--seed", type=int, default=0)
    p_ask.add_argument("--preset", choices=["fast", "paper"], default="fast")
    p_ask.add_argument("--top", type=int, default=5, help="Show the top-K configurations.")

    p_cmp = sub.add_parser("compare-models", help="Nine-model / three-search comparison.")
    p_cmp.add_argument("--machine", choices=["aurora", "frontier"], default="aurora")
    p_cmp.add_argument("--models", nargs="*", default=None, help="Subset of model keys.")
    p_cmp.add_argument("--scale", choices=["fast", "paper"], default="fast")
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--max-train", type=int, default=600)
    p_cmp.add_argument(
        "--tree-method",
        choices=["exact", "hist"],
        default="exact",
        help="Split-search engine for the tree-based models (DT/GB).",
    )
    p_cmp.add_argument(
        "--jobs",
        type=_jobs_spec,
        default=1,
        help="Worker processes (1=serial, -1=all CPUs); results are identical for any value.",
    )
    _add_memo_dir_option(p_cmp)

    p_al = sub.add_parser("active-learn", help="Run an active-learning campaign.")
    p_al.add_argument("--machine", choices=["aurora", "frontier"], default="aurora")
    p_al.add_argument("--strategy", choices=["rs", "us", "qc"], default="us")
    p_al.add_argument("--goal", choices=["none", "stq", "bq"], default="none")
    p_al.add_argument("--n-initial", type=int, default=50)
    p_al.add_argument("--query-size", type=int, default=50)
    p_al.add_argument("--n-queries", type=int, default=10)
    p_al.add_argument("--seed", type=int, default=0)
    p_al.add_argument(
        "--jobs",
        type=_jobs_spec,
        default=1,
        help="Worker processes for committee fits (1=serial, -1=all CPUs).",
    )
    _add_memo_dir_option(p_al)

    p_srv = sub.add_parser(
        "memo-serve",
        help="Serve a disk memo store over TCP (memo:// protocol) to remote runs.",
    )
    p_srv.add_argument(
        "--memo-dir",
        required=True,
        help="Disk store directory to serve ('~' expanded, created if missing).",
    )
    p_srv.add_argument("--host", default="127.0.0.1", help="Interface to bind.")
    p_srv.add_argument(
        "--port",
        type=int,
        default=7501,
        help="TCP port to listen on (0 picks a free port; printed at startup).",
    )
    _add_wire_robustness_options(p_srv)
    _add_trace_dir_option(p_srv)

    p_work = sub.add_parser(
        "cluster-work",
        help="Run a cluster worker agent against a run's cluster:// dispatcher.",
        description=(
            "Dial the dispatcher a run hosts (REPRO_EXECUTOR=cluster + "
            "REPRO_CLUSTER_URL=cluster://host:port on the run side) and execute "
            "its ParallelMap task batches. Point --memo-dir at the same "
            "memo://host:port store as the run so the fleet shares candidate "
            "evaluations. Workers may start before the dispatcher exists; they "
            "retry until it appears, and exit once it has been unreachable for "
            "--idle-exit seconds."
        ),
    )
    p_work.add_argument(
        "--dispatcher",
        required=True,
        metavar="cluster://HOST:PORT",
        help="Dispatcher URL of the run to serve (its REPRO_CLUSTER_URL).",
    )
    p_work.add_argument(
        "--name",
        default=None,
        help="Worker name prefix shown in dispatcher stats (default: host-pid).",
    )
    p_work.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="Delay between polls while the dispatcher has no work.",
    )
    p_work.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help=(
            "Heartbeat period while busy; must stay well under the run's "
            "REPRO_CLUSTER_HEARTBEAT dead-worker threshold (default 10)."
        ),
    )
    p_work.add_argument(
        "--idle-exit",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help=(
            "Exit after the dispatcher has been unreachable this long "
            "(lets a fleet drain itself after the run ends)."
        ),
    )
    p_work.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="Exit after running this many tasks (mostly for tests).",
    )
    _add_memo_dir_option(p_work)
    _add_trace_dir_option(p_work)

    p_serve = sub.add_parser(
        "serve",
        help="Serve a fitted runtime model online (micro-batched packed prediction).",
    )
    p_serve.add_argument("--machine", choices=["aurora", "frontier"], default="aurora")
    p_serve.add_argument("--preset", choices=["fast", "paper"], default="fast")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--rows", type=int, default=None, help="Dataset size for the fit (default: paper size)."
    )
    p_serve.add_argument(
        "--trees", type=int, default=None, help="Override GB n_estimators (default: preset)."
    )
    p_serve.add_argument(
        "--depth", type=int, default=None, help="Override GB max_depth (default: preset)."
    )
    p_serve.add_argument(
        "--tree-method",
        choices=["exact", "hist"],
        default="exact",
        help="Split-search engine for the GB fit (hist cuts cold-start fit time).",
    )
    p_serve.add_argument(
        "--registry",
        default=os.environ.get("REPRO_MODEL_REGISTRY") or None,
        help=(
            "Model registry directory (default: $REPRO_MODEL_REGISTRY). When set, "
            "the server warm-loads the named artifact instead of refitting, and "
            "publishes fresh fits back, so restarts skip the fit entirely."
        ),
    )
    p_serve.add_argument(
        "--model-name",
        default=None,
        help="Registry alias to serve (default: derived from machine/preset/seed).",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="Interface to bind.")
    p_serve.add_argument(
        "--port",
        type=int,
        default=7601,
        help="TCP port to listen on (0 picks a free port; printed at startup).",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=1024,
        help="Micro-batcher cap on rows per packed traversal.",
    )
    p_serve.add_argument(
        "--single-flight",
        action="store_true",
        help="Disable micro-batching: one model call per request (benchmark baseline).",
    )
    p_serve.add_argument(
        "--max-models",
        type=int,
        default=None,
        metavar="N",
        help=(
            "LRU cap on registry-routed resident models (the explicitly "
            "served model is pinned and never evicted); evicted aliases "
            "reload on their next request. Default: unlimited."
        ),
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help=(
            "Bound on concurrently processing predict/ask requests; past "
            "it, requests are shed with a retryable 'overloaded' error "
            "instead of queueing unboundedly. Default: unbounded."
        ),
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help=(
            "Bound on a model batcher's pending rows (submitted, not yet "
            "answered); predicts arriving past it are shed with a "
            "retryable 'overloaded' error. Queue-pressure companion to "
            "--max-inflight. Default: unbounded."
        ),
    )
    p_serve.add_argument(
        "--private-arenas",
        action="store_true",
        help=(
            "Keep each model's packed arena process-private instead of "
            "sharing one copy per host through POSIX shared memory "
            "(sharing requires a registry and falls back to private "
            "automatically on any failure)."
        ),
    )
    p_serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "Log one structured line (trace id + per-hop breakdown, JSON, "
            "stderr) for every request slower than MS milliseconds, "
            "rate-limited to one line per second. Default: off."
        ),
    )
    _add_wire_robustness_options(p_serve)
    _add_trace_dir_option(p_serve)

    p_query = sub.add_parser(
        "query", help="Query a running `repro-chem serve` server."
    )
    p_query.add_argument(
        "action",
        choices=["predict", "stq", "bq", "health", "stats", "fleet-stats", "ping"],
    )
    p_query.add_argument(
        "--url",
        action="append",
        default=None,
        help=(
            "Server URL; repeat the flag (or comma-separate) for a fleet of "
            "replicas — requests consistent-hash across them with failover "
            "(default: $REPRO_SERVE_URL or serve://127.0.0.1:7601)."
        ),
    )
    p_query.add_argument("--model", default="default", help="Served model name.")
    p_query.add_argument(
        "--features",
        action="append",
        default=None,
        metavar="O,V,NODES,TILE",
        help="One feature row per flag (repeatable); required for predict.",
    )
    p_query.add_argument("-O", "--occupied", type=int, default=None)
    p_query.add_argument("-V", "--virtual", type=int, default=None)
    p_query.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="Per-socket-operation timeout in seconds (default: 10).",
    )
    p_query.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help=(
            "Extra fleet-wide retry rounds (jittered backoff) when every "
            "replica is unreachable or overloaded; seed the jitter with "
            "$REPRO_RETRY_SEED for reproducible timing. Default: 1."
        ),
    )

    p_cstat = sub.add_parser(
        "cluster-status",
        help="Print a running cluster dispatcher's scheduling counters.",
        description=(
            "Dial a run's cluster://host:port dispatcher as an observer and "
            "print its stats (workers, queue depths, batches, redispatches) "
            "as JSON — from outside the run, without registering as a worker."
        ),
    )
    p_cstat.add_argument(
        "--dispatcher",
        default=os.environ.get("REPRO_CLUSTER_URL") or None,
        metavar="cluster://HOST:PORT",
        help="Dispatcher URL (default: $REPRO_CLUSTER_URL).",
    )
    p_cstat.add_argument("--timeout", type=float, default=5.0)
    p_cstat.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "Extra re-dials (jittered backoff) when the dispatcher is "
            "unreachable. Default: 0 (one shot)."
        ),
    )

    p_trace = sub.add_parser(
        "trace",
        help="Inspect recorded trace spans (span trees, slowest traces).",
        description=(
            "Read finished spans from a trace directory's JSONL sinks "
            "(written by servers started with --trace-dir / "
            "$REPRO_TRACE_DIR) and/or from live replica telemetry "
            "(--url), then reconstruct traces. 'top' ranks the slowest "
            "traces; 'show' prints one trace's span tree with per-hop "
            "timing breakdowns."
        ),
    )
    p_trace.add_argument("action", choices=["show", "top"])
    p_trace.add_argument(
        "trace_id",
        nargs="?",
        default=None,
        help="Trace id for 'show' (default: the slowest recorded trace).",
    )
    p_trace.add_argument(
        "--trace-dir",
        default=os.environ.get("REPRO_TRACE_DIR") or None,
        metavar="DIR",
        help="Directory holding trace-<pid>.jsonl sinks (default: $REPRO_TRACE_DIR).",
    )
    p_trace.add_argument(
        "--url",
        action="append",
        default=None,
        help=(
            "Also scrape the recent-span ring of a live serve replica's "
            "telemetry endpoint; repeatable."
        ),
    )
    p_trace.add_argument(
        "-n",
        "--limit",
        type=int,
        default=3,
        metavar="N",
        help="How many traces 'top' lists (default: 3).",
    )
    p_trace.add_argument("--timeout", type=float, default=5.0)

    return parser


def _cmd_generate_data(args: argparse.Namespace) -> int:
    from repro.data.datasets import build_dataset
    from repro.data.io import write_csv

    dataset = build_dataset(args.machine, seed=args.seed, n_total=args.rows)
    path = write_csv(dataset.table, args.output)
    print(f"Wrote {dataset.n_rows} rows ({dataset.n_train} train / {dataset.n_test} test) to {path}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulator import run_ccsd_iteration
    from repro.tamm.runtime import InfeasibleConfigurationError

    try:
        exp = run_ccsd_iteration(
            args.machine, args.occupied, args.virtual, args.nodes, args.tile, rng=args.seed
        )
    except InfeasibleConfigurationError as exc:
        print(f"Infeasible configuration: {exc}", file=sys.stderr)
        return 1
    b = exp.breakdown
    print(
        f"machine={exp.machine} O={exp.n_occupied} V={exp.n_virtual} "
        f"nodes={exp.n_nodes} tile={exp.tile_size}"
    )
    print(f"runtime: {exp.runtime_s:.2f} s   node-hours: {exp.node_hours:.3f}")
    print(
        "breakdown: "
        f"compute={b.compute_time:.2f}s comm={b.comm_time:.2f}s overhead={b.overhead_time:.2f}s "
        f"imbalance={b.imbalance_time:.2f}s fixed={b.fixed_time:.2f}s tasks={b.n_tasks}"
    )
    return 0


def _cmd_ask(args: argparse.Namespace) -> int:
    from repro.core.advisor import ResourceAdvisor
    from repro.data.datasets import build_dataset

    print(f"Building {args.machine} dataset and training the runtime model...", flush=True)
    dataset = build_dataset(args.machine, seed=args.seed)
    advisor = ResourceAdvisor.from_dataset(dataset, preset=args.preset)
    answer = advisor.answer(args.question, args.occupied, args.virtual)
    objective = "runtime" if args.question == "stq" else "node_hours"
    print(
        f"{args.question.upper()} answer for (O={args.occupied}, V={args.virtual}) on {args.machine}: "
        f"nodes={answer.n_nodes}, tile={answer.tile_size}, "
        f"predicted runtime={answer.predicted_runtime_s:.2f} s, "
        f"predicted node-hours={answer.predicted_node_hours:.3f}"
    )
    table = advisor.ranked_configurations(
        args.occupied, args.virtual, objective=objective, top_k=args.top
    )
    print("Top configurations:")
    for rec in table.to_records():
        print(
            f"  nodes={int(rec['n_nodes']):4d} tile={int(rec['tile_size']):4d} "
            f"runtime={rec['predicted_runtime_s']:.2f}s node-hours={rec['predicted_node_hours']:.3f}"
        )
    return 0


def _cmd_compare_models(args: argparse.Namespace) -> int:
    from repro.core.hyperopt import run_model_comparison
    from repro.core.reporting import format_model_comparison
    from repro.data.datasets import build_dataset

    memo_baseline = _activate_memo_store(args)
    dataset = build_dataset(args.machine, seed=args.seed)
    results = run_model_comparison(
        dataset,
        models=args.models,
        scale=args.scale,
        seed=args.seed,
        max_train_samples=args.max_train,
        n_jobs=args.jobs,
        tree_method=args.tree_method,
    )
    print(format_model_comparison(results))
    best = max(results, key=lambda r: r.r2)
    print(f"\nBest: {best.model} via {best.search} (R2={best.r2:.4f}, MAPE={best.mape:.4f})")
    _print_memo_summary(memo_baseline)
    return 0


def _cmd_active_learn(args: argparse.Namespace) -> int:
    from repro.core.active_learning import ActiveLearningConfig, run_active_learning
    from repro.core.reporting import format_active_learning_curves
    from repro.data.datasets import build_dataset

    memo_baseline = _activate_memo_store(args)
    dataset = build_dataset(args.machine, seed=args.seed)
    goal = None if args.goal == "none" else args.goal
    config = ActiveLearningConfig(
        n_initial=args.n_initial,
        query_size=args.query_size,
        n_queries=args.n_queries,
        random_state=args.seed,
        goal=goal,
        n_jobs=args.jobs,
    )
    result = run_active_learning(
        dataset.X_train,
        dataset.y_train,
        args.strategy,
        config,
        X_test=dataset.X_test,
        y_test=dataset.y_test,
    )
    print(format_active_learning_curves([result], metric="mape", use_goal=goal is not None))
    final = result.final_metrics()
    print("\nFinal:", ", ".join(f"{k}={v:.4f}" if isinstance(v, float) else f"{k}={v}" for k, v in final.items()))
    _print_memo_summary(memo_baseline)
    return 0


def _cmd_cluster_work(args: argparse.Namespace) -> int:
    from repro.parallel.backend import mark_worker_process
    from repro.parallel.cluster import ClusterWorker
    from repro.parallel.store import configure_store

    # A cluster worker is a worker process: tasks that internally fan out
    # (forest fits, CV loops) must run their inner regions serially instead
    # of recursing into a pool or back into the cluster.
    mark_worker_process()
    configure_store(args.memo_dir)
    _configure_tracing(args)
    worker = ClusterWorker(
        args.dispatcher,
        name=args.name,
        poll_interval=args.poll_interval,
        heartbeat_interval=args.heartbeat_interval,
        reconnect_window=args.idle_exit,
        max_tasks=args.max_tasks,
    )
    # The exact "serving <url>" line is the startup handshake scripts wait
    # for — same convention as memo-serve/serve (no ephemeral port to parse
    # here; the worker dials out).
    print(
        f"cluster-work: worker={worker.name} serving {worker.url} "
        f"(memo={args.memo_dir or 'off'})",
        flush=True,
    )
    try:
        tasks_done = worker.run()
    except KeyboardInterrupt:
        worker.stop()
        tasks_done = worker.tasks_done
        print("cluster-work: interrupted, shutting down", flush=True)
    print(f"cluster-work: exiting after {tasks_done} tasks", flush=True)
    return 0


def _cmd_memo_serve(args: argparse.Namespace) -> int:
    from repro.parallel.service import MemoServer

    _configure_tracing(args)
    server = MemoServer(
        args.memo_dir, host=args.host, port=args.port, **_wire_kwargs(args)
    )
    # The exact "listening on memo://host:port" line is the startup handshake
    # scripts wait for (and parse the ephemeral port from, with --port 0).
    print(
        f"memo-serve: dir={server.store.location} listening on {server.url}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("memo-serve: interrupted, shutting down", flush=True)
    finally:
        server.shutdown()
    return 0


def _serve_model_name(args: argparse.Namespace) -> str:
    """Default registry alias: the fit is a pure function of these knobs."""
    if args.model_name:
        return args.model_name
    name = f"{args.machine}-{args.preset}-seed{args.seed}"
    if args.trees is not None or args.depth is not None:
        name += f"-gb{args.trees or 'p'}x{args.depth or 'p'}"
    if args.rows is not None:
        name += f"-rows{args.rows}"
    if getattr(args, "tree_method", "exact") != "exact":
        # Hist-fitted trees are not guaranteed byte-identical to exact ones,
        # so the artifacts get distinct registry aliases.
        name += f"-{args.tree_method}"
    return name


def _serve_fit_advisor(args: argparse.Namespace):
    """Fit the advisor the ``serve`` subcommand hosts (no registry involved)."""
    from repro.core.advisor import ResourceAdvisor
    from repro.core.estimator import (
        FAST_GB_PARAMS,
        PAPER_GB_PARAMS,
        ResourceEstimator,
    )
    from repro.data.datasets import build_dataset

    dataset = build_dataset(args.machine, seed=args.seed, n_total=args.rows)
    estimator = None
    # Scripted callers (tests, CI snippets) build bare Namespaces; missing
    # knobs mean the exact-engine default.
    tree_method = getattr(args, "tree_method", "exact")
    if args.trees is not None or args.depth is not None or tree_method != "exact":
        from repro.ml.gradient_boosting import GradientBoostingRegressor

        params = dict(PAPER_GB_PARAMS if args.preset == "paper" else FAST_GB_PARAMS)
        if args.trees is not None:
            params["n_estimators"] = args.trees
        if args.depth is not None:
            params["max_depth"] = args.depth
        if tree_method != "exact":
            params["tree_method"] = tree_method
        # random_state=0 matches what ResourceEstimator builds by default,
        # so a --trees/--depth fit is reproducible from its name alone.
        estimator = ResourceEstimator(
            model=GradientBoostingRegressor(random_state=0, **params)
        )
    return ResourceAdvisor.from_dataset(
        dataset, estimator=estimator, preset=args.preset
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ModelRegistry, ServeServer

    _configure_tracing(args)
    name = _serve_model_name(args)
    registry = ModelRegistry(args.registry) if args.registry else None
    advisor = None
    digest = None
    if registry is not None:
        # warm=False: the server warms after the (optional) shared-arena
        # swap, so traversal tables build on the host-shared arrays.
        loaded = registry.load_with_digest(name, warm=False)
        if loaded is not None:
            digest, advisor = loaded
            print(
                f"serve: warm-loaded model={name} digest={digest[:12]} "
                f"from {registry.location}",
                flush=True,
            )
    if advisor is None:
        print(
            f"serve: fitting model={name} (machine={args.machine}, preset={args.preset})...",
            flush=True,
        )
        advisor = _serve_fit_advisor(args)
        if registry is not None:
            digest = registry.publish(
                advisor,
                name=name,
                meta={
                    "machine": args.machine,
                    "preset": args.preset,
                    "seed": args.seed,
                    "rows": args.rows,
                    "trees": args.trees,
                    "depth": args.depth,
                    "tree_method": args.tree_method,
                },
            )
            print(
                f"serve: published model={name} digest={digest[:12]} "
                f"to {registry.location}",
                flush=True,
            )
    server = ServeServer(
        {name: advisor, "default": advisor},
        host=args.host,
        port=args.port,
        micro_batch=not args.single_flight,
        max_batch_rows=args.max_batch,
        registry=registry,
        max_models=args.max_models,
        max_inflight=args.max_inflight,
        max_pending=args.max_pending,
        shared_arenas=False if args.private_arenas else None,
        model_digests=(
            {name: digest, "default": digest} if digest is not None else None
        ),
        slow_ms=args.slow_ms,
        **_wire_kwargs(args),
    )
    mode = "single-flight" if args.single_flight else f"micro-batch(max {args.max_batch} rows)"
    hosted = server.models.get(name)
    if hosted is not None and hosted.arena is not None:
        print(
            f"serve: arena={hosted.arena.name} "
            f"({'created' if hosted.arena.created else 'attached'}, "
            f"{hosted.arena.nbytes} bytes shared)",
            flush=True,
        )
    # The exact "listening on serve://host:port" line is the startup
    # handshake scripts wait for (and parse the ephemeral port from, with
    # --port 0) — same convention as memo-serve.
    print(
        f"serve: model={name} mode={mode} listening on {server.url}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("serve: interrupted, shutting down", flush=True)
    finally:
        server.shutdown()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient, ServeError

    urls = args.url or [
        os.environ.get("REPRO_SERVE_URL") or "serve://127.0.0.1:7601"
    ]
    try:
        client = ServeClient(
            ",".join(urls), timeout=args.timeout, retries=max(0, args.retries)
        )
    except ValueError as exc:
        # A malformed URL is a configuration typo: same clean one-line
        # contract as an unreachable server, not a traceback.
        print(f"query: {exc}", file=sys.stderr)
        return 2
    fleet = ",".join(client.urls)
    try:
        if args.action == "fleet-stats":
            docs = client.fleet_telemetry(timeout=args.timeout)
            report = {}
            dead = []
            for url, doc in docs.items():
                if isinstance(doc, dict) and "schema_version" in doc:
                    # The full snapshot minus the span ring: counters and
                    # histograms are the fleet-stats payload; spans belong
                    # to `repro-chem trace`.
                    report[url] = {k: v for k, v in doc.items() if k != "spans"}
                else:
                    dead.append(f"{url}: {doc.get('error', 'unreachable')}")
            if report:
                print(json.dumps(report, indent=2, sort_keys=True))
            if dead:
                # Dead or pre-observability replicas: clean one-line
                # report and a non-zero exit, never a traceback — the
                # reachable replicas' stats still printed above.
                print(f"query: fleet-stats: {'; '.join(dead)}", file=sys.stderr)
                return 1
            return 0
        if args.action == "ping":
            ok = client.ping()
            print(f"{fleet}: {'ok' if ok else 'no response'}")
            return 0 if ok else 1
        if args.action in ("health", "stats"):
            doc = client.health() if args.action == "health" else client.stats()
            print(json.dumps(doc, indent=2))
            return 0
        if args.action == "predict":
            if not args.features:
                print(
                    "query predict needs at least one --features O,V,NODES,TILE",
                    file=sys.stderr,
                )
                return 2
            try:
                rows = [[float(x) for x in spec.split(",")] for spec in args.features]
            except ValueError:
                print(
                    f"could not parse --features {args.features!r} as numeric rows",
                    file=sys.stderr,
                )
                return 2
            if len({len(row) for row in rows}) > 1:
                print(
                    "every --features row must have the same number of values",
                    file=sys.stderr,
                )
                return 2
            y = client.predict(rows, model=args.model)
            for spec, pred in zip(args.features, y):
                print(f"predict({spec}) = {pred} s")
            return 0
        # stq / bq
        if args.occupied is None or args.virtual is None:
            print(f"query {args.action} needs -O and -V", file=sys.stderr)
            return 2
        answer = client.ask(args.action, args.occupied, args.virtual, model=args.model)
        print(
            f"{args.action.upper()} answer for (O={args.occupied}, V={args.virtual}): "
            f"nodes={answer['n_nodes']}, tile={answer['tile_size']}, "
            f"predicted runtime={answer['predicted_runtime_s']:.2f} s, "
            f"predicted node-hours={answer['predicted_node_hours']:.3f}"
        )
        return 0
    except ServeError as exc:
        # Dead server, protocol failure or request error: the contract is a
        # clean message and a non-zero exit, never a traceback or a hang.
        print(f"query: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    from repro.parallel.cluster import dispatcher_status
    from repro.parallel.wire import ProtocolError

    if not args.dispatcher:
        print(
            "cluster-status needs --dispatcher cluster://HOST:PORT "
            "(or $REPRO_CLUSTER_URL)",
            file=sys.stderr,
        )
        return 2
    try:
        stats = dispatcher_status(
            args.dispatcher, timeout=args.timeout, retries=max(0, args.retries)
        )
    except (OSError, ProtocolError, ValueError) as exc:
        # Dead run, typo'd URL or a non-dispatcher service: clean message
        # and non-zero exit, never a traceback.
        print(f"cluster-status: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(stats, indent=2))
    return 0


def _load_trace_spans(
    trace_dir: Optional[str], urls: Optional[Sequence[str]], timeout: float
) -> list[dict]:
    """Collect span dicts from JSONL sinks and/or live replica telemetry.

    Torn tail lines (a sink killed mid-write) and junk files read as no
    spans, never as a crash; duplicate spans (a span present both in a
    sink and a replica's ring) are dropped by span id.
    """
    spans: list[dict] = []
    if trace_dir:
        import glob

        for path in sorted(glob.glob(os.path.join(trace_dir, "trace-*.jsonl"))):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    lines = fh.readlines()
            except OSError:
                continue
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue
                if isinstance(doc, dict) and doc.get("trace_id"):
                    spans.append(doc)
    for url in urls or []:
        from repro.parallel.wire import fetch_telemetry, parse_hostport_url
        from repro.serve.server import SERVE_URL_SCHEME

        host, port = parse_hostport_url(url, SERVE_URL_SCHEME)
        doc = fetch_telemetry(host, port, timeout=timeout)
        for span in doc.get("spans", []):
            if isinstance(span, dict) and span.get("trace_id"):
                spans.append(span)
    seen: set = set()
    unique = []
    for span in spans:
        key = (span.get("trace_id"), span.get("span_id"))
        if key in seen:
            continue
        seen.add(key)
        unique.append(span)
    return unique


def _trace_duration_ms(trace_spans: list[dict]) -> float:
    """A trace's wall time: its slowest span (the root, when present)."""
    return max(
        (1000.0 * (s.get("duration_s") or 0.0) for s in trace_spans), default=0.0
    )


def _format_span_line(span: dict, depth: int) -> str:
    duration = span.get("duration_s")
    line = "  " * depth + f"{span.get('name', '?')}"
    if duration is not None:
        line += f"  {1000.0 * duration:.3f}ms"
    hops = span.get("hops") or {}
    if hops:
        line += "  hops: " + " ".join(
            f"{key}={1000.0 * value:.3f}ms" for key, value in sorted(hops.items())
        )
    tags = span.get("tags") or {}
    if tags:
        line += "  [" + " ".join(f"{k}={v}" for k, v in sorted(tags.items())) + "]"
    return line


def _print_span_tree(trace_spans: list[dict]) -> None:
    by_parent: dict = {}
    ids = {s.get("span_id") for s in trace_spans}
    for span in trace_spans:
        parent = span.get("parent_id")
        # A span whose parent was never recorded (a peer without a sink)
        # roots its own subtree rather than vanishing.
        key = parent if parent in ids else None
        by_parent.setdefault(key, []).append(span)

    def walk(parent_key, depth: int) -> None:
        for span in sorted(
            by_parent.get(parent_key, []), key=lambda s: s.get("t_wall") or 0.0
        ):
            print(_format_span_line(span, depth))
            walk(span.get("span_id"), depth + 1)

    walk(None, 1)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.parallel.wire import ProtocolError

    if not args.trace_dir and not args.url:
        print(
            "trace needs --trace-dir DIR (or $REPRO_TRACE_DIR) and/or --url "
            "serve://HOST:PORT",
            file=sys.stderr,
        )
        return 2
    try:
        spans = _load_trace_spans(args.trace_dir, args.url, args.timeout)
    except (OSError, ProtocolError, ValueError) as exc:
        # Dead replica or typo'd URL: clean one-line non-zero exit.
        print(f"trace: {exc}", file=sys.stderr)
        return 1
    traces: dict[str, list[dict]] = {}
    for span in spans:
        traces.setdefault(span["trace_id"], []).append(span)
    if not traces:
        print("trace: no recorded spans found", file=sys.stderr)
        return 1
    ranked = sorted(
        traces.items(), key=lambda item: _trace_duration_ms(item[1]), reverse=True
    )
    if args.action == "top":
        for trace_id, trace_spans in ranked[: max(1, args.limit)]:
            roots = [s for s in trace_spans if not s.get("parent_id")]
            root_name = (roots or trace_spans)[0].get("name", "?")
            print(
                f"trace {trace_id}  {_trace_duration_ms(trace_spans):.3f}ms  "
                f"spans={len(trace_spans)}  root={root_name}"
            )
        return 0
    # show
    trace_id = args.trace_id or ranked[0][0]
    if trace_id not in traces:
        print(f"trace: no spans recorded for trace id {trace_id!r}", file=sys.stderr)
        return 1
    print(f"trace {trace_id}  ({len(traces[trace_id])} spans)")
    _print_span_tree(traces[trace_id])
    return 0


_DISPATCH = {
    "generate-data": _cmd_generate_data,
    "simulate": _cmd_simulate,
    "ask": _cmd_ask,
    "compare-models": _cmd_compare_models,
    "active-learn": _cmd_active_learn,
    "memo-serve": _cmd_memo_serve,
    "cluster-work": _cmd_cluster_work,
    "cluster-status": _cmd_cluster_status,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "trace": _cmd_trace,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.obs import trace as obs_trace

    np.set_printoptions(precision=4, suppress=True)
    parser = build_parser()
    args = parser.parse_args(argv)
    # The root span of everything this invocation does: a no-op unless
    # tracing is enabled ($REPRO_TRACE_DIR, --trace-dir, or a test's
    # configure_tracing call).
    with obs_trace.span(f"cli.{args.command}"):
        return _DISPATCH[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
