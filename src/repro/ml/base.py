"""Estimator protocol shared by every model in :mod:`repro.ml`.

The protocol intentionally mirrors scikit-learn's: constructor arguments are
hyper-parameters, ``get_params``/``set_params`` expose them, :func:`clone`
produces an unfitted copy, and fitted attributes end with an underscore.  The
hyper-parameter searches, committees and active-learning loops in
:mod:`repro.core` rely only on this protocol, so any estimator implementing it
can be plugged in.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any, Dict, Iterable, Mapping

import numpy as np

__all__ = [
    "BaseEstimator",
    "RegressorMixin",
    "clone",
    "check_X_y",
    "check_array",
    "check_random_state",
]


def check_array(X: Any, *, ensure_2d: bool = True, dtype: type = np.float64) -> np.ndarray:
    """Validate an input array and return it as a contiguous float ndarray.

    Parameters
    ----------
    X:
        Array-like input.
    ensure_2d:
        When true (default), a 1-D input is rejected so that callers never
        silently treat a feature vector as a column of samples.
    dtype:
        Target dtype of the returned array.
    """
    arr = np.asarray(X, dtype=dtype)
    if arr.size == 0:
        raise ValueError("Empty input array.")
    if ensure_2d:
        if arr.ndim == 1:
            raise ValueError(
                "Expected a 2D array, got a 1D array. Reshape your data with "
                ".reshape(-1, 1) for a single feature or .reshape(1, -1) for a "
                "single sample."
            )
        if arr.ndim != 2:
            raise ValueError(f"Expected a 2D array, got {arr.ndim}D.")
    if not np.all(np.isfinite(arr)):
        raise ValueError("Input contains NaN or infinity.")
    return np.ascontiguousarray(arr)


def check_X_y(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and target vector of consistent length."""
    X = check_array(X, ensure_2d=True)
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        y = y.ravel()
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X and y have inconsistent numbers of samples: {X.shape[0]} != {y.shape[0]}"
        )
    if not np.all(np.isfinite(y)):
        raise ValueError("Target contains NaN or infinity.")
    return X, y


def check_random_state(seed: Any) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator` instance."""
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.RandomState):  # pragma: no cover - legacy path
        return np.random.default_rng(seed.randint(0, 2**31 - 1))
    raise ValueError(f"Cannot use {seed!r} to seed a Generator.")


class BaseEstimator:
    """Base class providing hyper-parameter introspection.

    Subclasses must list every hyper-parameter as an explicit keyword argument
    of ``__init__`` and store it under the same attribute name; that convention
    is what makes :meth:`get_params`, :meth:`set_params` and :func:`clone`
    work without per-class boilerplate.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        init = cls.__init__
        if init is object.__init__:
            return []
        sig = inspect.signature(init)
        names = [
            name
            for name, p in sig.parameters.items()
            if name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]
        return sorted(names)

    def get_params(self, deep: bool = True) -> Dict[str, Any]:
        """Return hyper-parameters as a dictionary.

        When ``deep`` is true, parameters of nested estimators are included
        using the ``nested__param`` convention.
        """
        params: Dict[str, Any] = {}
        for name in self._param_names():
            value = getattr(self, name)
            params[name] = value
            if deep and hasattr(value, "get_params") and not isinstance(value, type):
                for sub_name, sub_value in value.get_params(deep=True).items():
                    params[f"{name}__{sub_name}"] = sub_value
        return params

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyper-parameters, supporting the ``nested__param`` convention."""
        if not params:
            return self
        valid = set(self._param_names())
        nested: Dict[str, Dict[str, Any]] = {}
        for key, value in params.items():
            if "__" in key:
                outer, inner = key.split("__", 1)
                if outer not in valid:
                    raise ValueError(f"Invalid parameter {outer!r} for {type(self).__name__}")
                nested.setdefault(outer, {})[inner] = value
            else:
                if key not in valid:
                    raise ValueError(f"Invalid parameter {key!r} for {type(self).__name__}")
                setattr(self, key, value)
        for outer, sub_params in nested.items():
            getattr(self, outer).set_params(**sub_params)
        return self

    def _is_fitted(self) -> bool:
        return any(
            attr.endswith("_") and not attr.startswith("_") for attr in vars(self)
        )

    def _check_is_fitted(self) -> None:
        if not self._is_fitted():
            raise RuntimeError(
                f"This {type(self).__name__} instance is not fitted yet. "
                "Call 'fit' before using this estimator."
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params(deep=False).items())
        return f"{type(self).__name__}({params})"


class RegressorMixin:
    """Mixin adding the default :meth:`score` (R²) to regressors."""

    def score(self, X: Any, y: Any) -> float:
        """Return the coefficient of determination R² of the prediction."""
        from repro.ml.metrics import r2_score

        return float(r2_score(y, self.predict(X)))


def clone(estimator: Any) -> Any:
    """Return an unfitted copy of ``estimator`` with identical hyper-parameters."""
    if isinstance(estimator, (list, tuple)):
        return type(estimator)(clone(e) for e in estimator)
    if not hasattr(estimator, "get_params"):
        raise TypeError(f"Cannot clone object {estimator!r}: it does not implement get_params.")
    params = estimator.get_params(deep=False)
    cloned_params = {
        key: clone(value) if hasattr(value, "get_params") and not isinstance(value, type) else copy.deepcopy(value)
        for key, value in params.items()
    }
    return type(estimator)(**cloned_params)


def _as_param_mapping(params: Mapping[str, Iterable[Any]]) -> Dict[str, list]:
    """Normalise a parameter-grid mapping to concrete lists."""
    out: Dict[str, list] = {}
    for key, values in params.items():
        if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
            out[key] = [values]
        else:
            out[key] = list(values)
        if len(out[key]) == 0:
            raise ValueError(f"Parameter grid for {key!r} is empty.")
    return out
