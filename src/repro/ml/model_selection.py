"""Data splitting and cross-validation utilities.

The paper trains with a fixed train/test split (Table 1) and uses K-fold
cross validation inside the hyper-parameter searches of Figures 1 and 2.

``cross_validate``, ``cross_val_score`` and ``cross_val_predict`` accept
``n_jobs`` and fan the independent fold fits out over
:func:`repro.parallel.parallel_map`; folds are enumerated and seeded before
the fan-out, so serial and parallel runs return identical scores.

When a cross-process memo store is active (``--memo-dir`` /
``REPRO_MEMO_DIR``, see :mod:`repro.parallel.store`), ``cross_validate``
memoises its whole result for seeded estimators with primitive parameters
and a named scorer, keyed on the content of ``(estimator config, X, y,
splits, scoring)``.  Scores of a store hit are byte-identical to a fresh
run; the ``fit_time``/``score_time`` fields replay the *original* run's
timings, and the returned arrays are read-only (copy before mutating).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, Optional, Sequence

import numpy as np

from repro.ml.base import check_random_state, clone
from repro.ml import metrics as _metrics

__all__ = [
    "train_test_split",
    "KFold",
    "cross_val_score",
    "cross_validate",
    "cross_val_predict",
    "get_scorer",
]

_SCORERS: dict[str, Callable[[Any, Any], float]] = {
    "r2": _metrics.r2_score,
    "neg_mean_absolute_error": lambda yt, yp: -_metrics.mean_absolute_error(yt, yp),
    "neg_mean_absolute_percentage_error": lambda yt, yp: -_metrics.mean_absolute_percentage_error(yt, yp),
    "neg_mean_squared_error": lambda yt, yp: -_metrics.mean_squared_error(yt, yp),
    "neg_root_mean_squared_error": lambda yt, yp: -_metrics.root_mean_squared_error(yt, yp),
    "mae": _metrics.mean_absolute_error,
    "mape": _metrics.mean_absolute_percentage_error,
}


def get_scorer(scoring: Any) -> Callable[[Any, Any], float]:
    """Resolve a scoring spec into a ``score(y_true, y_pred)`` callable.

    Named scorers follow the scikit-learn convention that *greater is better*
    (error metrics are negated).
    """
    if callable(scoring):
        return scoring
    if scoring in _SCORERS:
        return _SCORERS[scoring]
    raise ValueError(f"Unknown scoring {scoring!r}. Available: {sorted(_SCORERS)}")


def train_test_split(
    *arrays: Any,
    test_size: float | int = 0.25,
    random_state: Any = None,
    shuffle: bool = True,
) -> list[np.ndarray]:
    """Split arrays into random train and test subsets.

    Returns ``[a_train, a_test, b_train, b_test, ...]`` for each input array.
    """
    if not arrays:
        raise ValueError("At least one array is required.")
    n_samples = len(np.asarray(arrays[0]))
    for arr in arrays[1:]:
        if len(np.asarray(arr)) != n_samples:
            raise ValueError("All input arrays must have the same number of samples.")

    if isinstance(test_size, float):
        if not 0.0 < test_size < 1.0:
            raise ValueError("test_size as a float must be in (0, 1).")
        n_test = int(np.ceil(n_samples * test_size))
    else:
        n_test = int(test_size)
    if not 0 < n_test < n_samples:
        raise ValueError(f"test_size={test_size} leaves an empty train or test set.")

    indices = np.arange(n_samples)
    if shuffle:
        rng = check_random_state(random_state)
        rng.shuffle(indices)
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]

    out: list[np.ndarray] = []
    for arr in arrays:
        arr = np.asarray(arr)
        out.append(arr[train_idx])
        out.append(arr[test_idx])
    return out


class KFold:
    """K-fold cross-validation iterator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state: Any = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2.")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X: Any, y: Any = None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` for each fold."""
        n_samples = len(np.asarray(X))
        if self.n_splits > n_samples:
            raise ValueError(
                f"Cannot have n_splits={self.n_splits} greater than n_samples={n_samples}."
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = check_random_state(self.random_state)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=int)
        fold_sizes[: n_samples % self.n_splits] += 1
        current = 0
        for fold_size in fold_sizes:
            test_idx = indices[current : current + fold_size]
            train_idx = np.concatenate([indices[:current], indices[current + fold_size :]])
            yield train_idx, test_idx
            current += fold_size

    def get_n_splits(self, X: Any = None, y: Any = None) -> int:
        return self.n_splits


def _resolve_cv(cv: Any) -> KFold:
    if isinstance(cv, KFold):
        return cv
    if cv is None:
        return KFold(n_splits=5)
    if isinstance(cv, int):
        return KFold(n_splits=cv)
    raise ValueError(f"Unsupported cv specification: {cv!r}")


def _cv_memo_key(
    estimator: Any, X: np.ndarray, y: np.ndarray, splits: list, scoring: Any, return_train_score: bool
) -> Optional[tuple]:
    """Store key for a whole ``cross_validate`` call, or ``None`` if uncacheable."""
    from repro.parallel.cache import array_token, estimator_token, splits_token

    if not isinstance(scoring, str):
        return None
    est_token = estimator_token(estimator)
    if est_token is None:
        return None
    return (
        est_token,
        array_token(X),
        array_token(y),
        splits_token(splits),
        scoring,
        bool(return_train_score),
    )


def _cross_validate_fold(task: tuple) -> tuple[float, float, float, Optional[float]]:
    """Fit/score a single fold: ``(test_score, fit_time, score_time, train_score)``."""
    from repro.parallel.store import record_fit

    estimator, X, y, train_idx, test_idx, scoring, return_train_score = task
    scorer = get_scorer(scoring)
    model = clone(estimator)
    t0 = time.perf_counter()
    record_fit()
    model.fit(X[train_idx], y[train_idx])
    fit_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    test_score = scorer(y[test_idx], model.predict(X[test_idx]))
    score_time = time.perf_counter() - t0
    train_score = (
        scorer(y[train_idx], model.predict(X[train_idx])) if return_train_score else None
    )
    return test_score, fit_time, score_time, train_score


def cross_validate(
    estimator: Any,
    X: Any,
    y: Any,
    *,
    cv: Any = 5,
    scoring: Any = "r2",
    return_train_score: bool = False,
    n_jobs: Optional[int] = 1,
) -> dict[str, np.ndarray]:
    """Fit/score an estimator over CV folds, returning per-fold diagnostics.

    ``n_jobs`` distributes the fold fits over worker processes; fold order
    and scores are identical to the serial run.
    """
    from repro.parallel.backend import parallel_map
    from repro.parallel.cache import cv_splits
    from repro.parallel.store import get_store

    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    get_scorer(scoring)  # fail fast on unknown scoring specs
    splits = cv_splits(X, y, cv=cv)

    store = get_store()
    memo_key = (
        _cv_memo_key(estimator, X, y, splits, scoring, return_train_score)
        if store is not None
        else None
    )
    if memo_key is not None:
        cached = store.get("cross_validate", memo_key)
        if cached is not None:
            return dict(cached)

    tasks = [
        (estimator, X, y, train_idx, test_idx, scoring, return_train_score)
        for train_idx, test_idx in splits
    ]
    folds = parallel_map(_cross_validate_fold, tasks, n_jobs=n_jobs)

    out = {
        "test_score": np.asarray([f[0] for f in folds]),
        "fit_time": np.asarray([f[1] for f in folds]),
        "score_time": np.asarray([f[2] for f in folds]),
    }
    if return_train_score:
        out["train_score"] = np.asarray([f[3] for f in folds])
    if memo_key is not None:
        # Freeze before publishing so first and later callers get the same
        # read-only contract for memoised results.
        for arr in out.values():
            arr.setflags(write=False)
        store.put("cross_validate", memo_key, out)
    return out


def cross_val_score(
    estimator: Any,
    X: Any,
    y: Any,
    *,
    cv: Any = 5,
    scoring: Any = "r2",
    n_jobs: Optional[int] = 1,
) -> np.ndarray:
    """Per-fold test scores of ``estimator`` under K-fold cross validation."""
    return cross_validate(estimator, X, y, cv=cv, scoring=scoring, n_jobs=n_jobs)["test_score"]


def _cross_val_predict_fold(task: tuple) -> np.ndarray:
    from repro.parallel.store import record_fit

    estimator, X, y, train_idx, test_idx = task
    model = clone(estimator)
    record_fit()
    model.fit(X[train_idx], y[train_idx])
    return model.predict(X[test_idx])


def cross_val_predict(
    estimator: Any,
    X: Any,
    y: Any,
    *,
    cv: Any = 5,
    n_jobs: Optional[int] = 1,
) -> np.ndarray:
    """Out-of-fold predictions for every sample."""
    from repro.parallel.backend import parallel_map
    from repro.parallel.cache import cv_splits

    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    splits = cv_splits(X, y, cv=cv)
    tasks = [(estimator, X, y, train_idx, test_idx) for train_idx, test_idx in splits]
    fold_preds = parallel_map(_cross_val_predict_fold, tasks, n_jobs=n_jobs)
    preds = np.empty_like(y)
    for (train_idx, test_idx), fold_pred in zip(splits, fold_preds):
        preds[test_idx] = fold_pred
    return preds
