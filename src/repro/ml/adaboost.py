"""AdaBoost.R2 regression (the paper's "AB" model).

Implements Drucker's AdaBoost.R2: each boosting round fits a base tree on a
weighted bootstrap of the data, computes a loss-dependent confidence, updates
the sample weights so poorly predicted points receive more attention, and the
final prediction is the weighted *median* of the base predictions.

When every base estimator is a :class:`~repro.ml.tree.DecisionTreeRegressor`
(the default), the per-round prediction matrix comes from the packed
flat-array engine (:mod:`repro.ml.packed`) in one batched traversal, and the
arena is the pickle form of the fitted ensemble; the weighted-median
aggregation is unchanged, so predictions are byte-identical to the per-tree
object path.  Arbitrary base estimators keep the historical per-member loop.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_random_state,
    check_X_y,
    clone,
)
from repro.ml.packed import PackedTreesMixin
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["AdaBoostRegressor"]


class AdaBoostRegressor(PackedTreesMixin, BaseEstimator, RegressorMixin):
    """AdaBoost.R2 with configurable base estimator (default: depth-3 CART)."""

    def __init__(
        self,
        estimator: Any = None,
        n_estimators: int = 50,
        learning_rate: float = 1.0,
        loss: str = "linear",
        random_state: Any = None,
    ) -> None:
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.loss = loss
        self.random_state = random_state

    def _loss(self, error: np.ndarray) -> np.ndarray:
        max_err = error.max()
        if max_err <= 0:
            return np.zeros_like(error)
        normalized = error / max_err
        if self.loss == "linear":
            return normalized
        if self.loss == "square":
            return normalized**2
        if self.loss == "exponential":
            return 1.0 - np.exp(-normalized)
        raise ValueError(f"Unknown loss {self.loss!r}.")

    def fit(self, X: Any, y: Any) -> "AdaBoostRegressor":
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1.")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        base = self.estimator if self.estimator is not None else DecisionTreeRegressor(max_depth=3)

        weights = np.full(n_samples, 1.0 / n_samples)
        self.estimators_: list[Any] = []
        self._packed = None  # drop any arena from a previous fit
        self.estimator_weights_: list[float] = []
        self.estimator_errors_: list[float] = []

        for _ in range(self.n_estimators):
            model = clone(base)
            if hasattr(model, "random_state"):
                model.set_params(random_state=int(rng.integers(0, 2**31 - 1)))
            # Weighted bootstrap keeps the base-estimator interface simple
            # (no sample_weight requirement) and matches Drucker's formulation.
            idx = rng.choice(n_samples, size=n_samples, replace=True, p=weights)
            model.fit(X[idx], y[idx])
            pred = model.predict(X)
            error = np.abs(y - pred)
            loss = self._loss(error)
            avg_loss = float(np.sum(weights * loss))
            if avg_loss >= 0.5:
                # Worse than chance: stop (keep at least one estimator).
                if not self.estimators_:
                    self.estimators_.append(model)
                    self.estimator_weights_.append(1.0)
                    self.estimator_errors_.append(avg_loss)
                break
            beta = avg_loss / (1.0 - avg_loss)
            self.estimators_.append(model)
            weight = self.learning_rate * np.log(1.0 / max(beta, 1e-12))
            self.estimator_weights_.append(float(weight))
            self.estimator_errors_.append(avg_loss)
            if avg_loss <= 0:
                break
            weights *= np.power(beta, self.learning_rate * (1.0 - loss))
            total = weights.sum()
            if total <= 0:  # pragma: no cover - numerical safety
                weights = np.full(n_samples, 1.0 / n_samples)
            else:
                weights /= total

        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X: Any) -> np.ndarray:
        """Weighted median of the base predictions (AdaBoost.R2 aggregation)."""
        self._check_is_fitted()
        X = check_array(X)
        packed = self._packed_ensemble()
        if packed is not None:
            preds = packed.leaf_values(X)
        else:
            preds = np.column_stack([m.predict(X) for m in self.estimators_])
        weights = np.asarray(self.estimator_weights_)
        if np.all(weights <= 0):
            return preds.mean(axis=1)

        order = np.argsort(preds, axis=1)
        sorted_preds = np.take_along_axis(preds, order, axis=1)
        sorted_weights = weights[order]
        cum = np.cumsum(sorted_weights, axis=1)
        threshold = 0.5 * cum[:, -1][:, None]
        median_idx = np.argmax(cum >= threshold, axis=1)
        return sorted_preds[np.arange(X.shape[0]), median_idx]
