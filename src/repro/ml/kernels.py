"""Kernel functions shared by kernel ridge regression, Gaussian processes and
support vector regression.

Kernels support a small algebra (sum, product, scaling) and expose their
hyper-parameters in log-space through ``theta`` so the Gaussian-process
marginal-likelihood optimiser can tune them generically.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.spatial.distance import cdist

__all__ = [
    "Kernel",
    "RBF",
    "ConstantKernel",
    "WhiteKernel",
    "PolynomialKernel",
    "LinearKernel",
    "RationalQuadratic",
    "Sum",
    "Product",
    "pairwise_kernel",
]


class Kernel:
    """Base class for covariance functions."""

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        raise NotImplementedError

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.diag(self(X, X))

    # --- hyper-parameter plumbing (log-space) -------------------------------
    @property
    def theta(self) -> np.ndarray:
        return np.array([])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        if len(value) != 0:
            raise ValueError("This kernel has no tunable hyper-parameters.")

    @property
    def bounds(self) -> np.ndarray:
        return np.empty((0, 2))

    def clone_with_theta(self, theta: np.ndarray) -> "Kernel":
        import copy

        new = copy.deepcopy(self)
        new.theta = np.asarray(theta, dtype=float)
        return new

    # --- algebra -------------------------------------------------------------
    def __add__(self, other: Any) -> "Kernel":
        if not isinstance(other, Kernel):
            other = ConstantKernel(float(other))
        return Sum(self, other)

    def __radd__(self, other: Any) -> "Kernel":
        return self.__add__(other)

    def __mul__(self, other: Any) -> "Kernel":
        if not isinstance(other, Kernel):
            other = ConstantKernel(float(other))
        return Product(self, other)

    def __rmul__(self, other: Any) -> "Kernel":
        return self.__mul__(other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ConstantKernel(Kernel):
    """Constant covariance ``k(x, y) = constant_value``."""

    def __init__(self, constant_value: float = 1.0, bounds: tuple[float, float] = (1e-5, 1e5)) -> None:
        if constant_value <= 0:
            raise ValueError("constant_value must be positive.")
        self.constant_value = float(constant_value)
        self._bounds = bounds

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        Y = X if Y is None else Y
        return np.full((X.shape[0], Y.shape[0]), self.constant_value)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(X.shape[0], self.constant_value)

    @property
    def theta(self) -> np.ndarray:
        return np.array([np.log(self.constant_value)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.constant_value = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.array([self._bounds]))


class WhiteKernel(Kernel):
    """White noise: adds ``noise_level`` on the diagonal of K(X, X)."""

    def __init__(self, noise_level: float = 1.0, bounds: tuple[float, float] = (1e-10, 1e3)) -> None:
        if noise_level <= 0:
            raise ValueError("noise_level must be positive.")
        self.noise_level = float(noise_level)
        self._bounds = bounds

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        if Y is None or Y is X:
            return self.noise_level * np.eye(X.shape[0])
        return np.zeros((X.shape[0], Y.shape[0]))

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(X.shape[0], self.noise_level)

    @property
    def theta(self) -> np.ndarray:
        return np.array([np.log(self.noise_level)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.noise_level = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.array([self._bounds]))


class RBF(Kernel):
    """Squared-exponential kernel with (optionally anisotropic) length scale."""

    def __init__(self, length_scale: float | np.ndarray = 1.0, bounds: tuple[float, float] = (1e-3, 1e4)) -> None:
        self.length_scale = np.atleast_1d(np.asarray(length_scale, dtype=float))
        if np.any(self.length_scale <= 0):
            raise ValueError("length_scale must be positive.")
        self._bounds = bounds

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        Y = X if Y is None else Y
        Xs = X / self.length_scale
        Ys = Y / self.length_scale
        d2 = cdist(Xs, Ys, metric="sqeuclidean")
        return np.exp(-0.5 * d2)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.ones(X.shape[0])

    @property
    def theta(self) -> np.ndarray:
        return np.log(self.length_scale)

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.length_scale = np.exp(np.asarray(value, dtype=float))

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.tile(np.array([self._bounds]), (len(self.length_scale), 1)))


class RationalQuadratic(Kernel):
    """Rational quadratic kernel — a scale mixture of RBF kernels."""

    def __init__(self, length_scale: float = 1.0, alpha: float = 1.0,
                 bounds: tuple[float, float] = (1e-3, 1e4)) -> None:
        if length_scale <= 0 or alpha <= 0:
            raise ValueError("length_scale and alpha must be positive.")
        self.length_scale = float(length_scale)
        self.alpha = float(alpha)
        self._bounds = bounds

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        Y = X if Y is None else Y
        d2 = cdist(X, Y, metric="sqeuclidean")
        return (1.0 + d2 / (2.0 * self.alpha * self.length_scale**2)) ** (-self.alpha)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.ones(X.shape[0])

    @property
    def theta(self) -> np.ndarray:
        return np.log(np.array([self.length_scale, self.alpha]))

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.length_scale = float(np.exp(value[0]))
        self.alpha = float(np.exp(value[1]))

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.tile(np.array([self._bounds]), (2, 1)))


class PolynomialKernel(Kernel):
    """Polynomial kernel ``(gamma <x, y> + coef0)^degree`` (no tunable theta)."""

    def __init__(self, degree: int = 3, gamma: float = 1.0, coef0: float = 1.0) -> None:
        self.degree = int(degree)
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        Y = X if Y is None else Y
        return (self.gamma * (X @ Y.T) + self.coef0) ** self.degree

    def diag(self, X: np.ndarray) -> np.ndarray:
        return (self.gamma * np.sum(X * X, axis=1) + self.coef0) ** self.degree


class LinearKernel(Kernel):
    """Linear (dot-product) kernel."""

    def __init__(self, coef0: float = 0.0) -> None:
        self.coef0 = float(coef0)

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        Y = X if Y is None else Y
        return X @ Y.T + self.coef0

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.sum(X * X, axis=1) + self.coef0


class _Binary(Kernel):
    def __init__(self, k1: Kernel, k2: Kernel) -> None:
        self.k1 = k1
        self.k2 = k2

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.k1.theta, self.k2.theta])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        n1 = len(self.k1.theta)
        self.k1.theta = value[:n1]
        self.k2.theta = value[n1:]

    @property
    def bounds(self) -> np.ndarray:
        b1, b2 = self.k1.bounds, self.k2.bounds
        if b1.size == 0:
            return b2
        if b2.size == 0:
            return b1
        return np.vstack([b1, b2])


class Sum(_Binary):
    """Pointwise sum of two kernels."""

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        return self.k1(X, Y) + self.k2(X, Y)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.k1.diag(X) + self.k2.diag(X)


class Product(_Binary):
    """Pointwise product of two kernels."""

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        return self.k1(X, Y) * self.k2(X, Y)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.k1.diag(X) * self.k2.diag(X)


def pairwise_kernel(
    X: np.ndarray,
    Y: np.ndarray | None,
    kernel: str,
    *,
    gamma: float | None = None,
    degree: int = 3,
    coef0: float = 1.0,
) -> np.ndarray:
    """Compute a named kernel matrix (used by :class:`~repro.ml.kernel_ridge.KernelRidge`
    and :class:`~repro.ml.svr.SVR`)."""
    X = np.asarray(X, dtype=float)
    Y = X if Y is None else np.asarray(Y, dtype=float)
    if gamma is None:
        gamma = 1.0 / X.shape[1]
    if kernel == "rbf":
        return np.exp(-gamma * cdist(X, Y, metric="sqeuclidean"))
    if kernel == "linear":
        return X @ Y.T
    if kernel == "poly":
        return (gamma * (X @ Y.T) + coef0) ** degree
    if kernel == "laplacian":
        return np.exp(-gamma * cdist(X, Y, metric="cityblock"))
    raise ValueError(f"Unknown kernel {kernel!r}. Expected 'rbf', 'linear', 'poly' or 'laplacian'.")
