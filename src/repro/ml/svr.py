"""Support vector regression (the paper's "SVR" model).

Kernelised epsilon-insensitive regression solved in the representer form:
``f(x) = sum_i beta_i k(x_i, x) + b`` with the smoothed primal objective

    C * sum_i huberised_eps(y_i - f(x_i)) + 0.5 * beta^T K beta

minimised with L-BFGS-B.  The epsilon-insensitive loss is smoothed with a
small quadratic region so the objective is differentiable; for the tabular
regression problems in this work the solution is indistinguishable from the
exact QP dual while being far simpler and faster.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.optimize

from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y
from repro.ml.kernels import pairwise_kernel
from repro.ml.preprocessing import StandardScaler

__all__ = ["SVR"]


class SVR(BaseEstimator, RegressorMixin):
    """Epsilon-insensitive support vector regression with RBF/linear/poly kernels."""

    def __init__(
        self,
        kernel: str = "rbf",
        C: float = 1.0,
        epsilon: float = 0.1,
        gamma: float | None = None,
        degree: int = 3,
        coef0: float = 1.0,
        max_iter: int = 500,
        smoothing: float = 1e-3,
        normalize_y: bool = True,
    ) -> None:
        self.kernel = kernel
        self.C = C
        self.epsilon = epsilon
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.max_iter = max_iter
        self.smoothing = smoothing
        self.normalize_y = normalize_y

    def _loss_grad(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Smoothed epsilon-insensitive loss and its derivative w.r.t. r."""
        eps, h = self.epsilon, self.smoothing
        excess = np.abs(r) - eps
        loss = np.zeros_like(r)
        grad = np.zeros_like(r)
        quad = (excess > 0) & (excess <= h)
        lin = excess > h
        loss[quad] = 0.5 * excess[quad] ** 2 / h
        loss[lin] = excess[lin] - 0.5 * h
        grad[quad] = (excess[quad] / h) * np.sign(r[quad])
        grad[lin] = np.sign(r[lin])
        return loss, grad

    def fit(self, X: Any, y: Any) -> "SVR":
        if self.C <= 0:
            raise ValueError("C must be positive.")
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative.")
        X, y = check_X_y(X, y)
        self.scaler_ = StandardScaler().fit(X)
        Xt = self.scaler_.transform(X)
        if self.normalize_y:
            self.y_mean_ = float(np.mean(y))
            self.y_scale_ = float(np.std(y)) or 1.0
        else:
            self.y_mean_, self.y_scale_ = 0.0, 1.0
        yt = (y - self.y_mean_) / self.y_scale_

        K = pairwise_kernel(
            Xt, None, self.kernel, gamma=self.gamma, degree=self.degree, coef0=self.coef0
        )
        n = K.shape[0]

        def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
            beta, b = params[:n], params[n]
            f = K @ beta + b
            r = yt - f
            loss, dloss_dr = self._loss_grad(r)
            reg = 0.5 * float(beta @ (K @ beta))
            obj = self.C * float(loss.sum()) + reg
            # d obj / d f = -C * dloss_dr ; chain through f = K beta + b.
            df = -self.C * dloss_dr
            grad_beta = K @ df + K @ beta
            grad_b = float(df.sum())
            return obj, np.concatenate([grad_beta, [grad_b]])

        x0 = np.zeros(n + 1)
        res = scipy.optimize.minimize(
            objective, x0, jac=True, method="L-BFGS-B", options={"maxiter": self.max_iter}
        )
        self.dual_coef_ = res.x[:n]
        self.intercept_ = float(res.x[n])
        self.X_fit_ = Xt
        self.n_features_in_ = X.shape[1]
        self.n_support_ = int(np.sum(np.abs(self.dual_coef_) > 1e-8))
        self.optimization_result_ = res
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        X = check_array(X)
        Xt = self.scaler_.transform(X)
        K = pairwise_kernel(
            Xt, self.X_fit_, self.kernel, gamma=self.gamma, degree=self.degree, coef0=self.coef0
        )
        f = K @ self.dual_coef_ + self.intercept_
        return f * self.y_scale_ + self.y_mean_
