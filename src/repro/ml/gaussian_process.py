"""Gaussian process regression (the paper's "GP" model and the uncertainty
estimator behind the uncertainty-sampling active-learning strategy).

Standard Cholesky-based exact GP regression (Rasmussen & Williams, Algorithm
2.1) with optional maximisation of the log marginal likelihood over the kernel
hyper-parameters via multi-restart L-BFGS-B.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np
import scipy.linalg
import scipy.optimize

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_random_state,
    check_X_y,
)
from repro.ml.kernels import RBF, ConstantKernel, Kernel, WhiteKernel
from repro.ml.preprocessing import StandardScaler

__all__ = ["GaussianProcessRegressor"]


class GaussianProcessRegressor(BaseEstimator, RegressorMixin):
    """Exact GP regression with predictive mean and standard deviation.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to ``ConstantKernel() * RBF()``.
    alpha:
        Value added to the kernel diagonal (observation noise / jitter).
    n_restarts_optimizer:
        Number of random restarts for the marginal-likelihood optimisation;
        0 keeps the initial hyper-parameters when ``optimize=False``.
    normalize_y:
        Centre/scale the targets before fitting (recommended for runtimes that
        span orders of magnitude).
    standardize_X:
        Standardise features; keeps a single RBF length scale meaningful when
        feature ranges differ wildly (orbitals vs nodes vs tile sizes).
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        alpha: float = 1e-8,
        optimizer: Optional[str] = "L-BFGS-B",
        n_restarts_optimizer: int = 2,
        normalize_y: bool = True,
        standardize_X: bool = True,
        random_state: Any = None,
    ) -> None:
        self.kernel = kernel
        self.alpha = alpha
        self.optimizer = optimizer
        self.n_restarts_optimizer = n_restarts_optimizer
        self.normalize_y = normalize_y
        self.standardize_X = standardize_X
        self.random_state = random_state

    # ------------------------------------------------------------------ utils
    def _default_kernel(self) -> Kernel:
        return ConstantKernel(1.0) * RBF(1.0) + WhiteKernel(1e-2)

    def _log_marginal_likelihood(self, kernel: Kernel, X: np.ndarray, y: np.ndarray) -> float:
        K = kernel(X) + self.alpha * np.eye(X.shape[0])
        try:
            L = scipy.linalg.cholesky(K, lower=True, check_finite=False)
        except np.linalg.LinAlgError:
            return -np.inf
        alpha_vec = scipy.linalg.cho_solve((L, True), y, check_finite=False)
        lml = -0.5 * float(y @ alpha_vec)
        lml -= float(np.sum(np.log(np.diag(L))))
        lml -= 0.5 * X.shape[0] * np.log(2.0 * np.pi)
        return lml

    # ------------------------------------------------------------------ fit
    def fit(self, X: Any, y: Any) -> "GaussianProcessRegressor":
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative.")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)

        if self.standardize_X:
            self.x_scaler_ = StandardScaler().fit(X)
            Xt = self.x_scaler_.transform(X)
        else:
            self.x_scaler_ = None
            Xt = X

        if self.normalize_y:
            self.y_mean_ = float(np.mean(y))
            self.y_std_ = float(np.std(y)) or 1.0
        else:
            self.y_mean_, self.y_std_ = 0.0, 1.0
        yt = (y - self.y_mean_) / self.y_std_

        kernel = self.kernel if self.kernel is not None else self._default_kernel()
        kernel = kernel.clone_with_theta(kernel.theta)

        if self.optimizer is not None and len(kernel.theta) > 0:
            bounds = kernel.bounds

            def neg_lml(theta: np.ndarray) -> float:
                return -self._log_marginal_likelihood(kernel.clone_with_theta(theta), Xt, yt)

            candidates = [kernel.theta]
            for _ in range(self.n_restarts_optimizer):
                candidates.append(rng.uniform(bounds[:, 0], bounds[:, 1]))

            best_theta, best_val = kernel.theta, np.inf
            for theta0 in candidates:
                res = scipy.optimize.minimize(
                    neg_lml, theta0, method="L-BFGS-B", bounds=bounds,
                    options={"maxiter": 200},
                )
                if res.fun < best_val and np.all(np.isfinite(res.x)):
                    best_val, best_theta = float(res.fun), res.x
            kernel = kernel.clone_with_theta(best_theta)

        self.kernel_ = kernel
        K = kernel(Xt) + self.alpha * np.eye(Xt.shape[0])
        try:
            self.L_ = scipy.linalg.cholesky(K, lower=True, check_finite=False)
        except np.linalg.LinAlgError:
            # Add progressively more jitter until the Cholesky succeeds.
            jitter = max(self.alpha, 1e-10)
            for _ in range(8):
                jitter *= 10.0
                try:
                    self.L_ = scipy.linalg.cholesky(
                        K + jitter * np.eye(Xt.shape[0]), lower=True, check_finite=False
                    )
                    break
                except np.linalg.LinAlgError:
                    continue
            else:  # pragma: no cover - pathological kernels only
                raise
        self.alpha_vec_ = scipy.linalg.cho_solve((self.L_, True), yt, check_finite=False)
        self.X_train_ = Xt
        self.y_train_ = yt
        self.log_marginal_likelihood_ = self._log_marginal_likelihood(kernel, Xt, yt)
        self.n_features_in_ = X.shape[1]
        return self

    # ------------------------------------------------------------------ predict
    def predict(self, X: Any, return_std: bool = False):
        self._check_is_fitted()
        X = check_array(X)
        Xt = self.x_scaler_.transform(X) if self.x_scaler_ is not None else X
        K_star = self.kernel_(Xt, self.X_train_)
        mean = K_star @ self.alpha_vec_
        mean = mean * self.y_std_ + self.y_mean_
        if not return_std:
            return mean
        v = scipy.linalg.solve_triangular(self.L_, K_star.T, lower=True, check_finite=False)
        var = self.kernel_.diag(Xt) + self.alpha - np.sum(v * v, axis=0)
        var = np.maximum(var, 1e-12)
        std = np.sqrt(var) * self.y_std_
        return mean, std

    def sample_y(self, X: Any, n_samples: int = 1, random_state: Any = None) -> np.ndarray:
        """Draw samples from the posterior predictive at ``X``.

        Returns an array of shape ``(len(X), n_samples)``.
        """
        self._check_is_fitted()
        rng = check_random_state(random_state)
        X = check_array(X)
        Xt = self.x_scaler_.transform(X) if self.x_scaler_ is not None else X
        K_star = self.kernel_(Xt, self.X_train_)
        mean = (K_star @ self.alpha_vec_) * self.y_std_ + self.y_mean_
        v = scipy.linalg.solve_triangular(self.L_, K_star.T, lower=True, check_finite=False)
        cov = self.kernel_(Xt) + self.alpha * np.eye(Xt.shape[0]) - v.T @ v
        cov = cov * self.y_std_**2
        cov = 0.5 * (cov + cov.T) + 1e-10 * np.eye(cov.shape[0])
        return rng.multivariate_normal(mean, cov, size=n_samples, method="cholesky").T
