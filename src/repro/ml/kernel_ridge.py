"""Kernel ridge regression (the paper's "KR" model).

Kernel ridge combines ridge regression with the kernel trick: it solves
``(K + alpha * I) dual_coef = y`` and predicts with ``K(X*, X) @ dual_coef``.
Features are standardised internally because the RBF/laplacian kernels are
scale sensitive and the CCSD features span very different ranges
(orbital counts vs node counts vs tile sizes).
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.linalg

from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y
from repro.ml.kernels import pairwise_kernel
from repro.ml.preprocessing import StandardScaler

__all__ = ["KernelRidge"]


class KernelRidge(BaseEstimator, RegressorMixin):
    """Kernel ridge regression with RBF, polynomial, laplacian or linear kernels."""

    def __init__(
        self,
        alpha: float = 1.0,
        kernel: str = "rbf",
        gamma: float | None = None,
        degree: int = 3,
        coef0: float = 1.0,
        standardize: bool = True,
    ) -> None:
        self.alpha = alpha
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.standardize = standardize

    def _prepare(self, X: np.ndarray) -> np.ndarray:
        if self.standardize:
            return self.scaler_.transform(X)
        return X

    def fit(self, X: Any, y: Any) -> "KernelRidge":
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative.")
        X, y = check_X_y(X, y)
        self.scaler_ = StandardScaler().fit(X)
        Xt = self._prepare(X)
        K = pairwise_kernel(
            Xt, None, self.kernel, gamma=self.gamma, degree=self.degree, coef0=self.coef0
        )
        n = K.shape[0]
        # Solve with Cholesky; fall back to least squares if the regularised
        # kernel matrix is numerically singular (tiny alpha, duplicate rows).
        A = K + self.alpha * np.eye(n)
        try:
            cho = scipy.linalg.cho_factor(A, lower=True, check_finite=False)
            self.dual_coef_ = scipy.linalg.cho_solve(cho, y, check_finite=False)
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate input
            self.dual_coef_, *_ = np.linalg.lstsq(A, y, rcond=None)
        self.X_fit_ = Xt
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        X = check_array(X)
        Xt = self._prepare(X)
        K = pairwise_kernel(
            Xt, self.X_fit_, self.kernel, gamma=self.gamma, degree=self.degree, coef0=self.coef0
        )
        return K @ self.dual_coef_
