"""CART regression trees with two split-search builders.

The split criterion is weighted sum-of-squared-errors reduction, served by
one of two builders selected with ``tree_method``:

* ``"exact"`` (:class:`_TreeBuilder`, the default) finds the best split with
  prefix sums over *presorted* feature columns: one stable argsort per
  feature at the root (served by the content-addressed
  :func:`repro.parallel.cache.feature_presort` cache, so repeated fits on the
  same matrix — e.g. every boosting stage — reuse a single sort), with the
  sorted index lists partitioned down the tree instead of re-sorted at every
  node.  All features are scanned in one vectorised pass per node.  This is
  exactly equivalent to per-node stable argsorts, so fitted trees are
  bit-identical to the historical implementation, only faster.

* ``"hist"`` (:class:`_HistTreeBuilder`) is the LightGBM-style histogram
  builder: every feature is quantised once per dataset into at most
  ``max_bins`` (≤255) bins (served by the content-addressed
  :func:`repro.parallel.cache.feature_bins` cache), each node accumulates a
  per-bin ``(count, Σw, Σwy)`` histogram with one ``bincount`` over the
  node's ``uint8`` codes, and the split scan walks bin boundaries instead of
  sample positions.  Each split computes only the smaller child's histogram
  directly — the sibling is ``parent − child`` (histogram subtraction) — so a
  level costs at most half the node's samples.  When every feature has at
  most ``max_bins`` distinct values the candidate thresholds coincide with
  the exact builder's midpoints and fitted trees are bit-identical to
  ``"exact"``; otherwise accuracy is tolerance-bounded (see the ROADMAP
  ``tree_method="hist"`` contract).  One carve-out to bit-parity: two
  splits whose weighted-SSE gains are *exactly* equal (identical induced
  partitions) may tie-break differently — the engines accumulate the gain
  terms in different summation orders, and on an exact tie that float
  noise picks the winner; both trees are equally optimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_random_state,
    check_X_y,
)
from repro.parallel.cache import FeatureBins, compute_feature_bins, feature_bins, feature_presort

__all__ = ["DecisionTreeRegressor"]

_TREE_UNDEFINED = -2
_TREE_LEAF = -1


@dataclass
class _Split:
    feature: int
    threshold: float
    gain: float
    left_mask: np.ndarray


class _TreeBuilder:
    """Grows a tree depth-first, storing nodes in parallel arrays."""

    def __init__(
        self,
        max_depth: Optional[int],
        min_samples_split: int,
        min_samples_leaf: int,
        min_impurity_decrease: float,
        max_features: Optional[int],
        rng: np.random.Generator,
    ) -> None:
        self.max_depth = max_depth if max_depth is not None else np.inf
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.rng = rng
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.children_left: list[int] = []
        self.children_right: list[int] = []
        self.value: list[float] = []
        self.n_node_samples: list[int] = []

    def _new_node(self, value: float, n_samples: int) -> int:
        idx = len(self.feature)
        self.feature.append(_TREE_UNDEFINED)
        self.threshold.append(np.nan)
        self.children_left.append(_TREE_LEAF)
        self.children_right.append(_TREE_LEAF)
        self.value.append(value)
        self.n_node_samples.append(n_samples)
        return idx

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray, idx: np.ndarray, sorted_rows: np.ndarray
    ) -> Optional[_Split]:
        """Best split of the node holding rows ``idx`` of the full matrix.

        ``sorted_rows`` has shape ``(n_features, n_node)``: row ``f`` lists
        the node's sample rows in ascending order of feature ``f`` (ties by
        row index), maintained by partitioning the root presort down the
        tree.  The scan is equivalent to a per-node stable argsort per
        feature — same candidate order, same tie-breaking, same floats.
        """
        n_samples = len(idx)
        n_features = X.shape[1]
        if n_samples < self.min_samples_split or n_samples < 2 * self.min_samples_leaf:
            return None

        wi = w[idx]
        yi = y[idx]
        w_total = wi.sum()
        wy_total = float(wi @ yi)

        if self.max_features is not None and self.max_features < n_features:
            features = self.rng.choice(n_features, size=self.max_features, replace=False)
            rows = sorted_rows[features]
        else:
            features = np.arange(n_features)
            rows = sorted_rows

        # One vectorised pass over every candidate feature: (k, n_node)
        # matrices of the node's values in sorted order per feature.
        xs = X[rows, features[:, None]]
        ys = y[rows]
        ws = w[rows]

        # Cumulative weighted statistics of the left partition for a split
        # placed after position i (0-based, i+1 samples go left).
        cw = np.cumsum(ws, axis=1)[:, :-1]
        cwy = np.cumsum(ws * ys, axis=1)[:, :-1]
        rw = w_total - cw
        rwy = wy_total - cwy

        # Splits are only valid where the feature value actually changes
        # and both children keep at least min_samples_leaf samples.
        positions = np.arange(1, n_samples)
        valid = xs[:, 1:] > xs[:, :-1]
        valid &= positions >= self.min_samples_leaf
        valid &= (n_samples - positions) >= self.min_samples_leaf
        feature_has_valid = np.any(valid, axis=1)

        with np.errstate(divide="ignore", invalid="ignore"):
            gain = cwy**2 / cw + rwy**2 / rw - wy_total**2 / w_total
        # Zero-weight runs make ``cw`` or ``rw`` zero and the gain NaN; a NaN
        # wins np.argmax, silently discarding the feature's real best split,
        # so non-finite gains are masked along with invalid positions.
        gain = np.where(valid & np.isfinite(gain), gain, -np.inf)
        best_positions = np.argmax(gain, axis=1)

        best: Optional[_Split] = None
        best_gain = 0.0
        for row, f in enumerate(features):
            if not feature_has_valid[row]:
                continue
            best_pos = int(best_positions[row])
            g = float(gain[row, best_pos])
            if g > best_gain + 1e-12:
                threshold = 0.5 * (xs[row, best_pos] + xs[row, best_pos + 1])
                left_mask = X[idx, f] <= threshold
                # Guard against degenerate thresholds produced by ties.
                n_left = int(left_mask.sum())
                if n_left < self.min_samples_leaf or n_samples - n_left < self.min_samples_leaf:
                    continue
                best_gain = g
                best = _Split(feature=int(f), threshold=float(threshold), gain=g, left_mask=left_mask)

        return self._finalize_split(best)

    def _finalize_split(self, best: Optional[_Split]) -> Optional[_Split]:
        """Single accept/reject guard shared by both builders.

        A split must strictly reduce the weighted SSE *and* clear
        ``min_impurity_decrease`` — there is no node-impurity escape hatch
        (the historical ``node_sse <= 0`` branch accepted positive-gain
        splits without consulting ``min_impurity_decrease``).
        """
        if best is None or best.gain <= 0.0 or best.gain < self.min_impurity_decrease:
            return None
        return best

    def build(
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray, presort: Optional[np.ndarray] = None
    ) -> None:
        n_samples, n_features = X.shape
        if presort is None:
            presort = np.argsort(X, axis=0, kind="stable")
        # Feature-major sorted row lists, partitioned down the tree.
        sorted_rows = np.ascontiguousarray(presort.T)

        # (y * w).sum() / w.sum() is np.average's exact computation (same
        # float-op order, so bit-identical) without its dispatch overhead.
        root_value = float((y * w).sum() / w.sum())
        root = self._new_node(root_value, len(y))
        stack: list[tuple[np.ndarray, np.ndarray, int, int]] = [
            (np.arange(n_samples), sorted_rows, root, 0)
        ]
        # Epoch-stamped membership marker: lets each split route the sorted
        # row lists to the children in O(n_node) without clearing an array.
        marker = np.zeros(n_samples, dtype=np.int64)
        epoch = 0

        while stack:
            idx, rows, node, depth = stack.pop()
            yi = y[idx]
            if depth >= self.max_depth or len(idx) < self.min_samples_split or np.all(yi == yi[0]):
                continue
            split = self._best_split(X, y, w, idx, rows)
            if split is None:
                continue
            left_idx = idx[split.left_mask]
            right_idx = idx[~split.left_mask]
            # Stable partition of each feature's sorted list preserves the
            # "ascending value, ties by row index" invariant in both children.
            epoch += 1
            marker[left_idx] = epoch
            goes_left = marker[rows] == epoch
            rows_left = rows[goes_left].reshape(n_features, len(left_idx))
            rows_right = rows[~goes_left].reshape(n_features, len(right_idx))
            wl, wr = w[left_idx], w[right_idx]
            left = self._new_node(float((y[left_idx] * wl).sum() / wl.sum()), len(left_idx))
            right = self._new_node(float((y[right_idx] * wr).sum() / wr.sum()), len(right_idx))
            self.feature[node] = split.feature
            self.threshold[node] = split.threshold
            self.children_left[node] = left
            self.children_right[node] = right
            stack.append((left_idx, rows_left, left, depth + 1))
            stack.append((right_idx, rows_right, right, depth + 1))


class _HistTreeBuilder(_TreeBuilder):
    """Histogram-binned split search (the ``tree_method="hist"`` builder).

    Works on pre-binned ``uint8`` feature codes (:class:`FeatureBins`) and
    grows the tree **level by level**: every node of a level accumulates a
    ``(count, Σw, Σwy)`` per-bin histogram in one shared ``bincount`` over
    slot-offset flattened codes, and one vectorised scan walks the ≤254 bin
    boundaries of every (node, feature) pair at once — instead of the exact
    builder's per-node pass over ``n_node`` sample positions.  After a split
    only the smaller child's histogram is accumulated directly; the sibling's
    is the parent's minus it (histogram subtraction — counts stay exact
    integers in float64, the weighted sums pick up at most subtraction-level
    rounding, which only matters on gain ties far below the accept margin).

    Thresholds are placed with the exact builder's arithmetic — the midpoint
    ``0.5 * (a + c)`` of the node's last occupied bin at or below the
    boundary (dataset upper value ``a``) and first occupied bin above it
    (dataset lower value ``c``).  With one bin per distinct value these are
    the node's own adjacent values, so fitted trees match ``"exact"`` bit for
    bit; node and leaf statistics are always computed from the node's sample
    rows with the exact builder's float-op order, never from the histogram,
    and nodes are renumbered to the exact builder's depth-first order after
    growth so the fitted arrays are directly comparable.

    The one documented divergence: with ``max_features`` subsampling, the
    per-node ``rng.choice`` draws happen in level order rather than the exact
    builder's depth-first order, so the two methods draw different (equally
    seeded and reproducible) feature subsets.
    """

    def __init__(self, *, bins: FeatureBins, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.bins = bins
        self.n_hist_bins = int(bins.n_bins.max()) if bins.n_bins.size else 0
        # Static per-(feature, boundary) validity — a boundary must lie
        # inside the feature's own bin range.  Same for every node.
        if self.n_hist_bins >= 2:
            self._range_ok = np.arange(1, self.n_hist_bins) <= (bins.n_bins[:, None] - 1)
        else:
            self._range_ok = np.zeros((len(bins.n_bins), 0), dtype=bool)

    def _histograms(
        self,
        base: np.ndarray,
        idx_list: list[np.ndarray],
        w: np.ndarray,
        wy: np.ndarray,
        unit_w: bool,
    ) -> np.ndarray:
        """``(k, 3, F, B)`` per-bin ``(count, Σw, Σwy)`` for ``k`` nodes at once.

        ``base`` is the dataset's pre-offset flat code matrix
        (``codes + f*B``); each node's rows get an additional ``slot*F*B``
        offset so one ``bincount`` accumulates every node of the level.
        Accumulation visits samples in ascending-row order per node — the
        same order a per-node bincount would use, so batching changes no
        floats.  With unit weights ``Σw == count`` exactly, and the second
        weighted bincount is skipped.
        """
        k = len(idx_list)
        n_features = base.shape[1]
        length = k * n_features * self.n_hist_bins
        shape = (k, n_features, self.n_hist_bins)
        lengths = np.fromiter((len(ix) for ix in idx_list), count=k, dtype=np.int64)
        rows = np.concatenate(idx_list)
        slot = np.repeat(np.arange(k, dtype=np.int64) * (n_features * self.n_hist_bins), lengths)
        flat = (base[rows] + slot[:, None]).ravel()
        hists = np.empty((k, 3, n_features, self.n_hist_bins))
        cnt = np.bincount(flat, minlength=length).reshape(shape)
        hists[:, 0] = cnt
        if unit_w:
            hists[:, 1] = cnt
        else:
            hists[:, 1] = np.bincount(
                flat, weights=np.repeat(w[rows], n_features), minlength=length
            ).reshape(shape)
        hists[:, 2] = np.bincount(
            flat, weights=np.repeat(wy[rows], n_features), minlength=length
        ).reshape(shape)
        return hists

    def _scan_level(
        self,
        X: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        level: list[tuple[np.ndarray, int]],
        hists: np.ndarray,
        unit_w: bool,
    ) -> list[Optional[_Split]]:
        """Best split per node of a level — one vectorised scan over all of them."""
        m = len(level)
        n_features = X.shape[1]
        n_bins = self.n_hist_bins
        if n_bins < 2:
            return [None] * m

        n_node = np.fromiter((len(idx) for idx, _ in level), count=m, dtype=np.int64)
        # Node totals come from the histograms — every feature's bins
        # partition the node, so feature 0's column sums are the node's
        # totals (with unit weights the count histogram is exact integers,
        # so ``w_tot`` matches the exact builder's ``w.sum()`` bit for bit).
        w_tot = hists[:, 1, 0, :].sum(axis=1)
        wy_tot = hists[:, 2, 0, :].sum(axis=1)

        cnt = hists[:, 0]
        # Cumulative per-bin statistics of the left partition for a split
        # placed after bin b (boundary b, bins 0..b go left), for every
        # (node, feature) pair of the level at once — one cumsum covers all
        # three statistics.
        cum = np.cumsum(hists, axis=3)[:, :, :, :-1]
        ccnt = cum[:, 0]
        cw = cum[:, 1]
        cwy = cum[:, 2]
        rw = w_tot[:, None, None] - cw
        rwy = wy_tot[:, None, None] - cwy

        # A boundary is valid when it lies inside the feature's bin range and
        # both children keep at least min_samples_leaf samples.
        valid = self._range_ok & (ccnt >= self.min_samples_leaf)
        valid &= (n_node[:, None, None] - ccnt) >= self.min_samples_leaf

        # In-place arithmetic on the cumulative views — they are not read
        # again after the gain is formed.
        with np.errstate(divide="ignore", invalid="ignore"):
            np.multiply(cwy, cwy, out=cwy)
            cwy /= cw
            np.multiply(rwy, rwy, out=rwy)
            rwy /= rw
            gain = cwy
            gain += rwy
            gain -= (wy_tot**2 / w_tot)[:, None, None]
        if unit_w:
            # Unit weights cannot produce a zero denominator at a valid
            # boundary (both children hold >= 1 sample), so no NaN to mask.
            gain = np.where(valid, gain, -np.inf)
        else:
            # The same zero-weight guard as the exact scan: an all-zero-weight
            # prefix makes cw zero and the gain NaN — masked, never argmax'd.
            gain = np.where(valid & np.isfinite(gain), gain, -np.inf)
        best_boundaries = np.argmax(gain, axis=2)
        # -inf marks features with no valid boundary at all.
        flat_index = np.arange(m * n_features) * (n_bins - 1) + best_boundaries.ravel()
        best_gain_f = gain.ravel()[flat_index].reshape(m, n_features)

        # Candidate thresholds for every (node, feature) pair at once: the
        # midpoint of the node's occupied bins flanking the chosen boundary
        # (empty bins inside a gap share the same gain; argmax lands on the
        # first, the flanks give the threshold — the node's own adjacent
        # values when bins are one-per-distinct-value).  The flank indices
        # are running extrema of the occupied-bin index, gathered at the
        # boundary.  Entries without both flanks are garbage but carry a
        # -inf gain, so they are never read.
        bin_index = np.arange(n_bins)
        occ_index = np.where(cnt > 0, bin_index, -1)
        last_below = np.maximum.accumulate(occ_index, axis=2)
        occ_index = np.where(cnt > 0, bin_index, n_bins)
        first_at_or_above = np.minimum.accumulate(occ_index[:, :, ::-1], axis=2)[:, :, ::-1]
        flat_bins = np.arange(m * n_features) * n_bins
        a_idx = last_below.ravel()[flat_bins + best_boundaries.ravel()]
        c_idx = first_at_or_above.ravel()[flat_bins + best_boundaries.ravel() + 1]
        feats = np.tile(np.arange(n_features), m)
        a = self.bins.upper[feats, np.maximum(a_idx, 0)].reshape(m, n_features)
        c = self.bins.lower[feats, np.minimum(c_idx, n_bins - 1)].reshape(m, n_features)
        thresholds = 0.5 * (a + c)
        # The midpoint always lands in [a, c]; the partition therefore
        # matches the histogram boundary exactly — whose child counts are
        # already >= min_samples_leaf by construction — unless rounding
        # pushed it all the way up to c, where the c-bin's samples would
        # leak left.  Only those rare entries need the degenerate-threshold
        # count check the exact builder runs on every candidate.
        risky = thresholds >= c

        # The accept loop is plain scalars — all numpy work happened above.
        # It keeps the exact builder's sequential semantics: features in
        # order, a challenger must beat the incumbent by 1e-12, degenerate
        # thresholds are skipped without unseating the incumbent.
        gain_rows = best_gain_f.tolist()
        threshold_rows = thresholds.tolist()
        risky_rows = risky.tolist()
        min_leaf = self.min_samples_leaf
        subset = self.max_features is not None and self.max_features < n_features
        splits: list[Optional[_Split]] = []
        for i, (idx, _) in enumerate(level):
            n_samples = len(idx)
            if n_samples < self.min_samples_split or n_samples < 2 * min_leaf:
                splits.append(None)
                continue
            if subset:
                features = self.rng.choice(n_features, size=self.max_features, replace=False).tolist()
            else:
                features = range(n_features)
            row_gain = gain_rows[i]
            row_threshold = threshold_rows[i]
            row_risky = risky_rows[i]
            best_f = -1
            best_gain = 0.0
            for f in features:
                g = row_gain[f]
                if g > best_gain + 1e-12:
                    if row_risky[f]:
                        # Guard against degenerate thresholds produced by
                        # value-adjacent bins whose midpoint rounds onto c.
                        n_left = int((X[idx, f] <= row_threshold[f]).sum())
                        if n_left < min_leaf or n_samples - n_left < min_leaf:
                            continue
                    best_gain = g
                    best_f = f
            if best_f < 0:
                splits.append(None)
                continue
            threshold = row_threshold[best_f]
            best = _Split(
                feature=best_f,
                threshold=threshold,
                gain=best_gain,
                left_mask=X[idx, best_f] <= threshold,
            )
            splits.append(self._finalize_split(best))
        return splits

    def build(  # type: ignore[override]
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray, codes: Optional[np.ndarray] = None
    ) -> None:
        n_samples, n_features = X.shape
        if codes is None:
            codes = self.bins.codes
        # With unit weights (every ensemble fit path) w*y is bitwise y,
        # Σw == count exactly, and node values reduce to plain means with
        # the exact builder's floats (x*1.0 is bitwise x; ones sum to the
        # exact integer count) — so the weighted work can be skipped.
        unit_w = bool(np.all(w == 1.0))
        wy = y if unit_w else w * y
        # Pre-offset flat codes: column f's codes live in [f*B, f*B + n_bins).
        base = codes.astype(np.int64)
        base += np.arange(n_features, dtype=np.int64) * self.n_hist_bins

        root_value = float((y * w).sum() / w.sum())
        root = self._new_node(root_value, len(y))
        root_idx = np.arange(n_samples)
        # Every sample's current deepest-node value; after growth each entry
        # is its leaf's value — bitwise what ``predict`` would return on the
        # training matrix, captured for free from the partition (ensemble
        # fits use it to skip a full traversal per stage).
        self.train_prediction = np.full(n_samples, root_value)

        def splittable(idx: np.ndarray, depth: int) -> bool:
            if depth >= self.max_depth or len(idx) < self.min_samples_split:
                return False
            yi = y[idx]
            return not bool(np.all(yi == yi[0]))

        if not splittable(root_idx, 0):
            return
        level: list[tuple[np.ndarray, int]] = [(root_idx, root)]
        hists = self._histograms(base, [root_idx], w, wy, unit_w)
        depth = 0
        feature_out = self.feature
        threshold_out = self.threshold
        children_left_out = self.children_left
        children_right_out = self.children_right
        min_split = self.min_samples_split
        while level:
            splits = self._scan_level(X, y, w, level, hists, unit_w)
            # Create the whole level's children in bulk: ids are assigned
            # arithmetically and the node arrays are extended once, instead
            # of six list appends per node.
            base_id = len(feature_out)
            new_values: list[float] = []
            new_counts: list[int] = []
            kids: list[tuple[int, np.ndarray, np.ndarray, int, int]] = []
            for i, ((idx, node), split) in enumerate(zip(level, splits)):
                if split is None:
                    continue
                left_idx = idx[split.left_mask]
                right_idx = idx[~split.left_mask]
                n_left, n_right = len(left_idx), len(right_idx)
                if unit_w:
                    new_values.append(float(y[left_idx].sum()) / n_left)
                    new_values.append(float(y[right_idx].sum()) / n_right)
                else:
                    wl, wr = w[left_idx], w[right_idx]
                    new_values.append(float((y[left_idx] * wl).sum() / wl.sum()))
                    new_values.append(float((y[right_idx] * wr).sum() / wr.sum()))
                new_counts.append(n_left)
                new_counts.append(n_right)
                self.train_prediction[left_idx] = new_values[-2]
                self.train_prediction[right_idx] = new_values[-1]
                left = base_id + len(new_counts) - 2
                feature_out[node] = split.feature
                threshold_out[node] = split.threshold
                children_left_out[node] = left
                children_right_out[node] = left + 1
                kids.append((i, left_idx, right_idx, left, left + 1))
            n_new = len(new_counts)
            feature_out.extend([_TREE_UNDEFINED] * n_new)
            threshold_out.extend([float("nan")] * n_new)
            children_left_out.extend([_TREE_LEAF] * n_new)
            children_right_out.extend([_TREE_LEAF] * n_new)
            self.value.extend(new_values)
            self.n_node_samples.extend(new_counts)

            if not kids or depth + 1 >= self.max_depth:
                break
            # Batched splittability for the whole level's children: cheap
            # depth/size gates inline, then one reduceat pair (segment
            # min == max, exact for any float order) replaces a per-child
            # purity pass.
            candidates: list[tuple[int, bool, np.ndarray]] = []
            for j, (i, left_idx, right_idx, left, right) in enumerate(kids):
                if len(left_idx) >= min_split:
                    candidates.append((j, True, left_idx))
                if len(right_idx) >= min_split:
                    candidates.append((j, False, right_idx))
            if not candidates:
                break
            seg_rows = np.concatenate([c[2] for c in candidates])
            seg_lengths = np.fromiter(
                (len(c[2]) for c in candidates), count=len(candidates), dtype=np.int64
            )
            starts = np.concatenate(([0], np.cumsum(seg_lengths[:-1])))
            y_rows = y[seg_rows]
            impure = np.minimum.reduceat(y_rows, starts) != np.maximum.reduceat(y_rows, starts)
            need = [[False, False] for _ in kids]
            for (j, is_left, _), imp in zip(candidates, impure):
                need[j][0 if is_left else 1] = bool(imp)

            # One batched bincount accumulates the smaller sibling of every
            # pair that still grows; the larger is parent − smaller, computed
            # in one vectorised subtraction.  Two fancy assignments then
            # assemble the next level's histogram block.
            next_level: list[tuple[np.ndarray, int]] = []
            small_list: list[np.ndarray] = []
            parent_of_pair: list[int] = []
            sources: list[tuple[int, bool]] = []  # (pair, is-the-small-sibling)
            for j, (i, left_idx, right_idx, left, right) in enumerate(kids):
                need_left, need_right = need[j]
                if not (need_left or need_right):
                    continue
                pair = len(small_list)
                left_is_small = len(left_idx) <= len(right_idx)
                small_list.append(left_idx if left_is_small else right_idx)
                parent_of_pair.append(i)
                if need_left:
                    next_level.append((left_idx, left))
                    sources.append((pair, left_is_small))
                if need_right:
                    next_level.append((right_idx, right))
                    sources.append((pair, not left_is_small))
            if not small_list:
                break
            small_hists = self._histograms(base, small_list, w, wy, unit_w)
            big_hists = hists[np.asarray(parent_of_pair, dtype=np.int64)] - small_hists
            level = next_level
            k_next = len(sources)
            pair_of = np.fromiter((j for j, _ in sources), count=k_next, dtype=np.int64)
            is_small = np.fromiter((s for _, s in sources), count=k_next, dtype=bool)
            hists = np.empty((k_next, 3, n_features, self.n_hist_bins))
            hists[is_small] = small_hists[pair_of[is_small]]
            hists[~is_small] = big_hists[pair_of[~is_small]]
            depth += 1
        self._renumber_depth_first()

    def _renumber_depth_first(self) -> None:
        """Permute node storage from level order to the exact builder's
        depth-first creation order, so fitted arrays are directly comparable
        across ``tree_method`` values."""
        n_nodes = len(self.feature)
        if n_nodes <= 1:
            return
        # The traversal itself runs on plain lists (scalar indexing is far
        # cheaper than numpy element access); the permutation is vectorised.
        left_list = self.children_left
        right_list = self.children_right
        order = [0] * n_nodes  # old index -> new index
        counter = 1
        stack = [0]
        push = stack.append
        while stack:
            node = stack.pop()
            l = left_list[node]
            if l != _TREE_LEAF:
                r = right_list[node]
                order[l] = counter
                order[r] = counter + 1
                counter += 2
                push(l)
                push(r)
        order_arr = np.asarray(order, dtype=np.int64)
        inverse = np.empty(n_nodes, dtype=np.int64)
        inverse[order_arr] = np.arange(n_nodes)
        left = np.asarray(left_list, dtype=np.int64)
        right = np.asarray(right_list, dtype=np.int64)
        remap = lambda child: np.where(  # noqa: E731 — tiny local helper
            child == _TREE_LEAF, _TREE_LEAF, order_arr[np.maximum(child, 0)]
        )
        self.feature = list(np.asarray(self.feature, dtype=np.int64)[inverse])
        self.threshold = list(np.asarray(self.threshold, dtype=np.float64)[inverse])
        self.children_left = list(remap(left)[inverse])
        self.children_right = list(remap(right)[inverse])
        self.value = list(np.asarray(self.value, dtype=np.float64)[inverse])
        self.n_node_samples = list(np.asarray(self.n_node_samples, dtype=np.int64)[inverse])


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """CART regression tree (the paper's "DT" model and the base learner of
    RF, GB and AB ensembles).

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or contain
        fewer than ``min_samples_split`` samples.
    min_samples_split, min_samples_leaf:
        Pre-pruning controls.
    max_features:
        ``None`` (all), an int, a float fraction, or ``"sqrt"``/``"log2"`` —
        the number of features examined per split (used by random forests).
    min_impurity_decrease:
        Minimum weighted SSE reduction required to accept a split.
    random_state:
        Seed controlling the feature subsampling.
    tree_method:
        ``"exact"`` (default, presort-and-partition scan over every sample
        position) or ``"hist"`` (histogram-binned scan over at most
        ``max_bins`` bin boundaries per feature — much faster on deep trees
        over large nodes, bit-identical to ``"exact"`` when every feature has
        at most ``max_bins`` distinct values).
    max_bins:
        Bin budget per feature for ``tree_method="hist"`` (2–255).
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Any = None,
        min_impurity_decrease: float = 0.0,
        random_state: Any = None,
        tree_method: str = "exact",
        max_bins: int = 255,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.random_state = random_state
        self.tree_method = tree_method
        self.max_bins = max_bins

    def _resolve_max_features(self, n_features: int) -> Optional[int]:
        mf = self.max_features
        if mf is None:
            return None
        if isinstance(mf, str):
            if mf == "sqrt":
                return max(1, int(np.sqrt(n_features)))
            if mf == "log2":
                return max(1, int(np.log2(n_features)))
            raise ValueError(f"Unknown max_features string {mf!r}.")
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError("max_features as a float must be in (0, 1].")
            return max(1, int(round(mf * n_features)))
        mf = int(mf)
        if mf < 1:
            raise ValueError("max_features must be at least 1.")
        return min(mf, n_features)

    def fit(
        self,
        X: Any,
        y: Any,
        sample_weight: Any = None,
        *,
        use_presort_cache: bool = True,
        bins: Optional[FeatureBins] = None,
        capture_train_prediction: bool = False,
    ) -> "DecisionTreeRegressor":
        """Fit the tree.

        ``use_presort_cache`` gates the content-addressed dataset-artefact
        caches (the exact builder's presort, the hist builder's bins);
        callers fitting a single-use matrix pass ``False`` to avoid hashing
        and LRU churn.  ``bins`` lets ensemble callers hand the hist builder
        a pre-computed binning whose code rows align with ``X`` (e.g. a
        ``FeatureBins.take`` row subset of a once-binned dataset).
        ``capture_train_prediction`` (hist only) exposes the fitted tree's
        predictions on the training matrix as ``train_prediction_`` — the
        builder knows each sample's leaf from the partition, so this is
        ``predict(X)`` bit for bit without a traversal; ensemble callers
        consume (and delete) it to skip the per-stage predict.
        """
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2.")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1.")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError("max_depth must be at least 1 (or None).")
        if self.tree_method not in ("exact", "hist"):
            raise ValueError(
                f"Unknown tree_method {self.tree_method!r}; expected 'exact' or 'hist'."
            )
        X, y = check_X_y(X, y)
        if sample_weight is None:
            w = np.ones(len(y))
        else:
            w = np.asarray(sample_weight, dtype=np.float64).ravel()
            if w.shape[0] != len(y):
                raise ValueError("sample_weight has wrong length.")
            if np.any(w < 0) or w.sum() <= 0:
                raise ValueError("sample_weight must be non-negative and not all zero.")

        rng = check_random_state(self.random_state)
        params = dict(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_impurity_decrease=self.min_impurity_decrease,
            max_features=self._resolve_max_features(X.shape[1]),
            rng=rng,
        )
        if self.tree_method == "hist":
            if bins is None:
                # The content-addressed bins cache makes repeated fits on the
                # same matrix (boosting stages, CV candidates) bin only once.
                bins = (
                    feature_bins(X, self.max_bins)
                    if use_presort_cache
                    else compute_feature_bins(X, self.max_bins)
                )
            elif bins.codes.shape != X.shape:
                raise ValueError(
                    f"bins codes have shape {bins.codes.shape} but X has shape {X.shape}."
                )
            builder: _TreeBuilder = _HistTreeBuilder(bins=bins, **params)
            builder.build(X, y, w, bins.codes)
            if capture_train_prediction:
                self.train_prediction_ = builder.train_prediction
        else:
            builder = _TreeBuilder(**params)
            # The content-addressed presort cache makes repeated fits on the same
            # matrix (boosting stages, CV candidates on one fold) sort only once.
            # Callers fitting a single-use matrix (bootstrap/subsampled rows)
            # pass use_presort_cache=False to avoid hashing and LRU churn.
            presort = feature_presort(X) if use_presort_cache else None
            builder.build(X, y, w, presort=presort)
        self.feature_ = np.asarray(builder.feature, dtype=np.int64)
        self.threshold_ = np.asarray(builder.threshold, dtype=np.float64)
        self.children_left_ = np.asarray(builder.children_left, dtype=np.int64)
        self.children_right_ = np.asarray(builder.children_right, dtype=np.int64)
        self.value_ = np.asarray(builder.value, dtype=np.float64)
        self.n_node_samples_ = np.asarray(builder.n_node_samples, dtype=np.int64)
        self.n_features_in_ = X.shape[1]
        self.n_nodes_ = len(self.value_)
        return self

    def apply(self, X: Any) -> np.ndarray:
        """Return the leaf index reached by every sample (vectorised traversal)."""
        self._check_is_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, but the tree was fitted with {self.n_features_in_}."
            )
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature_[nodes] != _TREE_UNDEFINED
        while np.any(active):
            idx = np.flatnonzero(active)
            cur = nodes[idx]
            feat = self.feature_[cur]
            go_left = X[idx, feat] <= self.threshold_[cur]
            nodes[idx] = np.where(go_left, self.children_left_[cur], self.children_right_[cur])
            active[idx] = self.feature_[nodes[idx]] != _TREE_UNDEFINED
        return nodes

    def predict(self, X: Any) -> np.ndarray:
        return self.value_[self.apply(X)]

    def get_depth(self) -> int:
        """Depth of the fitted tree (root-only trees have depth 0).

        Level-order array passes over ``children_left_``/``children_right_``:
        each iteration replaces the frontier with all of its children, so the
        cost is one vectorised gather per level instead of a Python loop over
        every node.
        """
        self._check_is_fitted()
        frontier = np.zeros(1, dtype=np.int64)
        depth = 0
        while True:
            internal = frontier[self.feature_[frontier] != _TREE_UNDEFINED]
            if internal.size == 0:
                return depth
            frontier = np.concatenate(
                (self.children_left_[internal], self.children_right_[internal])
            )
            depth += 1

    def get_n_leaves(self) -> int:
        self._check_is_fitted()
        return int(np.sum(self.feature_ == _TREE_UNDEFINED))

    @property
    def feature_importances_(self) -> np.ndarray:
        """Number-of-samples-weighted usage frequency of each feature.

        A simple surrogate for impurity-based importance: each internal node
        contributes its sample count to the feature it splits on, normalised
        to sum to one.
        """
        self._check_is_fitted()
        importances = np.zeros(self.n_features_in_)
        internal = self.feature_ != _TREE_UNDEFINED
        np.add.at(importances, self.feature_[internal], self.n_node_samples_[internal])
        total = importances.sum()
        return importances / total if total > 0 else importances
