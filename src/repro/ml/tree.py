"""CART regression trees with a vectorised, weighted split search.

The split criterion is weighted sum-of-squared-errors reduction.  The best
split is found with prefix sums over *presorted* feature columns: the
builder takes one stable argsort per feature at the root (served by the
content-addressed :func:`repro.parallel.cache.feature_presort` cache, so
repeated fits on the same matrix — e.g. every boosting stage — reuse a
single sort) and partitions the sorted index lists down the tree instead of
re-sorting at every node.  All features are scanned in one vectorised pass
per node.  This is exactly equivalent to per-node stable argsorts, so fitted
trees are bit-identical to the historical implementation, only faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_random_state,
    check_X_y,
)
from repro.parallel.cache import feature_presort

__all__ = ["DecisionTreeRegressor"]

_TREE_UNDEFINED = -2
_TREE_LEAF = -1


@dataclass
class _Split:
    feature: int
    threshold: float
    gain: float
    left_mask: np.ndarray


class _TreeBuilder:
    """Grows a tree depth-first, storing nodes in parallel arrays."""

    def __init__(
        self,
        max_depth: Optional[int],
        min_samples_split: int,
        min_samples_leaf: int,
        min_impurity_decrease: float,
        max_features: Optional[int],
        rng: np.random.Generator,
    ) -> None:
        self.max_depth = max_depth if max_depth is not None else np.inf
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.rng = rng
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.children_left: list[int] = []
        self.children_right: list[int] = []
        self.value: list[float] = []
        self.n_node_samples: list[int] = []

    def _new_node(self, value: float, n_samples: int) -> int:
        idx = len(self.feature)
        self.feature.append(_TREE_UNDEFINED)
        self.threshold.append(np.nan)
        self.children_left.append(_TREE_LEAF)
        self.children_right.append(_TREE_LEAF)
        self.value.append(value)
        self.n_node_samples.append(n_samples)
        return idx

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray, idx: np.ndarray, sorted_rows: np.ndarray
    ) -> Optional[_Split]:
        """Best split of the node holding rows ``idx`` of the full matrix.

        ``sorted_rows`` has shape ``(n_features, n_node)``: row ``f`` lists
        the node's sample rows in ascending order of feature ``f`` (ties by
        row index), maintained by partitioning the root presort down the
        tree.  The scan is equivalent to a per-node stable argsort per
        feature — same candidate order, same tie-breaking, same floats.
        """
        n_samples = len(idx)
        n_features = X.shape[1]
        if n_samples < self.min_samples_split or n_samples < 2 * self.min_samples_leaf:
            return None

        wi = w[idx]
        yi = y[idx]
        w_total = wi.sum()
        wy_total = float(wi @ yi)
        node_sse = float(wi @ (yi * yi)) - wy_total**2 / w_total

        if self.max_features is not None and self.max_features < n_features:
            features = self.rng.choice(n_features, size=self.max_features, replace=False)
            rows = sorted_rows[features]
        else:
            features = np.arange(n_features)
            rows = sorted_rows

        # One vectorised pass over every candidate feature: (k, n_node)
        # matrices of the node's values in sorted order per feature.
        xs = X[rows, features[:, None]]
        ys = y[rows]
        ws = w[rows]

        # Cumulative weighted statistics of the left partition for a split
        # placed after position i (0-based, i+1 samples go left).
        cw = np.cumsum(ws, axis=1)[:, :-1]
        cwy = np.cumsum(ws * ys, axis=1)[:, :-1]
        rw = w_total - cw
        rwy = wy_total - cwy

        # Splits are only valid where the feature value actually changes
        # and both children keep at least min_samples_leaf samples.
        positions = np.arange(1, n_samples)
        valid = xs[:, 1:] > xs[:, :-1]
        valid &= positions >= self.min_samples_leaf
        valid &= (n_samples - positions) >= self.min_samples_leaf
        feature_has_valid = np.any(valid, axis=1)

        with np.errstate(divide="ignore", invalid="ignore"):
            gain = cwy**2 / cw + rwy**2 / rw - wy_total**2 / w_total
        gain = np.where(valid, gain, -np.inf)
        best_positions = np.argmax(gain, axis=1)

        best: Optional[_Split] = None
        best_gain = 0.0
        for row, f in enumerate(features):
            if not feature_has_valid[row]:
                continue
            best_pos = int(best_positions[row])
            g = float(gain[row, best_pos])
            if g > best_gain + 1e-12:
                threshold = 0.5 * (xs[row, best_pos] + xs[row, best_pos + 1])
                left_mask = X[idx, f] <= threshold
                # Guard against degenerate thresholds produced by ties.
                n_left = int(left_mask.sum())
                if n_left < self.min_samples_leaf or n_samples - n_left < self.min_samples_leaf:
                    continue
                best_gain = g
                best = _Split(feature=int(f), threshold=float(threshold), gain=g, left_mask=left_mask)

        if best is None or node_sse <= 0:
            return best if (best is not None and best.gain > 0) else None
        if best.gain <= 0 or best.gain < self.min_impurity_decrease:
            return None
        return best

    def build(
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray, presort: Optional[np.ndarray] = None
    ) -> None:
        n_samples, n_features = X.shape
        if presort is None:
            presort = np.argsort(X, axis=0, kind="stable")
        # Feature-major sorted row lists, partitioned down the tree.
        sorted_rows = np.ascontiguousarray(presort.T)

        # (y * w).sum() / w.sum() is np.average's exact computation (same
        # float-op order, so bit-identical) without its dispatch overhead.
        root_value = float((y * w).sum() / w.sum())
        root = self._new_node(root_value, len(y))
        stack: list[tuple[np.ndarray, np.ndarray, int, int]] = [
            (np.arange(n_samples), sorted_rows, root, 0)
        ]
        # Epoch-stamped membership marker: lets each split route the sorted
        # row lists to the children in O(n_node) without clearing an array.
        marker = np.zeros(n_samples, dtype=np.int64)
        epoch = 0

        while stack:
            idx, rows, node, depth = stack.pop()
            yi = y[idx]
            if depth >= self.max_depth or len(idx) < self.min_samples_split or np.all(yi == yi[0]):
                continue
            split = self._best_split(X, y, w, idx, rows)
            if split is None:
                continue
            left_idx = idx[split.left_mask]
            right_idx = idx[~split.left_mask]
            # Stable partition of each feature's sorted list preserves the
            # "ascending value, ties by row index" invariant in both children.
            epoch += 1
            marker[left_idx] = epoch
            goes_left = marker[rows] == epoch
            rows_left = rows[goes_left].reshape(n_features, len(left_idx))
            rows_right = rows[~goes_left].reshape(n_features, len(right_idx))
            wl, wr = w[left_idx], w[right_idx]
            left = self._new_node(float((y[left_idx] * wl).sum() / wl.sum()), len(left_idx))
            right = self._new_node(float((y[right_idx] * wr).sum() / wr.sum()), len(right_idx))
            self.feature[node] = split.feature
            self.threshold[node] = split.threshold
            self.children_left[node] = left
            self.children_right[node] = right
            stack.append((left_idx, rows_left, left, depth + 1))
            stack.append((right_idx, rows_right, right, depth + 1))


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """CART regression tree (the paper's "DT" model and the base learner of
    RF, GB and AB ensembles).

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or contain
        fewer than ``min_samples_split`` samples.
    min_samples_split, min_samples_leaf:
        Pre-pruning controls.
    max_features:
        ``None`` (all), an int, a float fraction, or ``"sqrt"``/``"log2"`` —
        the number of features examined per split (used by random forests).
    min_impurity_decrease:
        Minimum weighted SSE reduction required to accept a split.
    random_state:
        Seed controlling the feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Any = None,
        min_impurity_decrease: float = 0.0,
        random_state: Any = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.random_state = random_state

    def _resolve_max_features(self, n_features: int) -> Optional[int]:
        mf = self.max_features
        if mf is None:
            return None
        if isinstance(mf, str):
            if mf == "sqrt":
                return max(1, int(np.sqrt(n_features)))
            if mf == "log2":
                return max(1, int(np.log2(n_features)))
            raise ValueError(f"Unknown max_features string {mf!r}.")
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError("max_features as a float must be in (0, 1].")
            return max(1, int(round(mf * n_features)))
        mf = int(mf)
        if mf < 1:
            raise ValueError("max_features must be at least 1.")
        return min(mf, n_features)

    def fit(
        self,
        X: Any,
        y: Any,
        sample_weight: Any = None,
        *,
        use_presort_cache: bool = True,
    ) -> "DecisionTreeRegressor":
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2.")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1.")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError("max_depth must be at least 1 (or None).")
        X, y = check_X_y(X, y)
        if sample_weight is None:
            w = np.ones(len(y))
        else:
            w = np.asarray(sample_weight, dtype=np.float64).ravel()
            if w.shape[0] != len(y):
                raise ValueError("sample_weight has wrong length.")
            if np.any(w < 0) or w.sum() <= 0:
                raise ValueError("sample_weight must be non-negative and not all zero.")

        rng = check_random_state(self.random_state)
        builder = _TreeBuilder(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_impurity_decrease=self.min_impurity_decrease,
            max_features=self._resolve_max_features(X.shape[1]),
            rng=rng,
        )
        # The content-addressed presort cache makes repeated fits on the same
        # matrix (boosting stages, CV candidates on one fold) sort only once.
        # Callers fitting a single-use matrix (bootstrap/subsampled rows)
        # pass use_presort_cache=False to avoid hashing and LRU churn.
        presort = feature_presort(X) if use_presort_cache else None
        builder.build(X, y, w, presort=presort)
        self.feature_ = np.asarray(builder.feature, dtype=np.int64)
        self.threshold_ = np.asarray(builder.threshold, dtype=np.float64)
        self.children_left_ = np.asarray(builder.children_left, dtype=np.int64)
        self.children_right_ = np.asarray(builder.children_right, dtype=np.int64)
        self.value_ = np.asarray(builder.value, dtype=np.float64)
        self.n_node_samples_ = np.asarray(builder.n_node_samples, dtype=np.int64)
        self.n_features_in_ = X.shape[1]
        self.n_nodes_ = len(self.value_)
        return self

    def apply(self, X: Any) -> np.ndarray:
        """Return the leaf index reached by every sample (vectorised traversal)."""
        self._check_is_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, but the tree was fitted with {self.n_features_in_}."
            )
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature_[nodes] != _TREE_UNDEFINED
        while np.any(active):
            idx = np.flatnonzero(active)
            cur = nodes[idx]
            feat = self.feature_[cur]
            go_left = X[idx, feat] <= self.threshold_[cur]
            nodes[idx] = np.where(go_left, self.children_left_[cur], self.children_right_[cur])
            active[idx] = self.feature_[nodes[idx]] != _TREE_UNDEFINED
        return nodes

    def predict(self, X: Any) -> np.ndarray:
        return self.value_[self.apply(X)]

    def get_depth(self) -> int:
        """Depth of the fitted tree (root-only trees have depth 0).

        Level-order array passes over ``children_left_``/``children_right_``:
        each iteration replaces the frontier with all of its children, so the
        cost is one vectorised gather per level instead of a Python loop over
        every node.
        """
        self._check_is_fitted()
        frontier = np.zeros(1, dtype=np.int64)
        depth = 0
        while True:
            internal = frontier[self.feature_[frontier] != _TREE_UNDEFINED]
            if internal.size == 0:
                return depth
            frontier = np.concatenate(
                (self.children_left_[internal], self.children_right_[internal])
            )
            depth += 1

    def get_n_leaves(self) -> int:
        self._check_is_fitted()
        return int(np.sum(self.feature_ == _TREE_UNDEFINED))

    @property
    def feature_importances_(self) -> np.ndarray:
        """Number-of-samples-weighted usage frequency of each feature.

        A simple surrogate for impurity-based importance: each internal node
        contributes its sample count to the feature it splits on, normalised
        to sum to one.
        """
        self._check_is_fitted()
        importances = np.zeros(self.n_features_in_)
        internal = self.feature_ != _TREE_UNDEFINED
        np.add.at(importances, self.feature_[internal], self.n_node_samples_[internal])
        total = importances.sum()
        return importances / total if total > 0 else importances
