"""Random forest regression (the paper's "RF" model).

A bagging ensemble of :class:`~repro.ml.tree.DecisionTreeRegressor` grown on
bootstrap resamples with per-split feature subsampling.  Supports
out-of-bag scoring for quick generalisation estimates without a held-out set.

``n_jobs`` distributes the independent tree fits over worker processes.
Every tree's seed and bootstrap indices are drawn *sequentially* from the
forest RNG before the fan-out, so serial and parallel fits (and the
historical single-loop implementation) are bit-identical.

Prediction (including OOB scoring) runs on the packed flat-array engine
(:mod:`repro.ml.packed`): one batched traversal yields the per-tree
leaf-value matrix, which is averaged in the historical member order so
packed predictions are byte-identical to the per-tree object path.  The
arena is also the pickle form of a fitted forest (see ``__getstate__``).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_random_state,
    check_X_y,
)
from repro.ml.metrics import r2_score
from repro.ml.packed import PackedTreesMixin
from repro.ml.tree import DecisionTreeRegressor
from repro.parallel.backend import parallel_map, resolve_n_jobs

__all__ = ["RandomForestRegressor"]


def _fit_tree_chunk(task: tuple) -> list[DecisionTreeRegressor]:
    """Fit a contiguous chunk of member trees on their (pre-drawn) bootstraps.

    Chunking ships the training matrix to each worker once per chunk instead
    of once per tree, which keeps IPC cost independent of ``n_estimators``.
    """
    X, y, members = task
    # Each bootstrap matrix is unique, so the presort cache could never hit;
    # bypassing it avoids hashing every resample and churning the LRU.
    return [tree.fit(X[idx], y[idx], use_presort_cache=False) for tree, idx in members]


class RandomForestRegressor(PackedTreesMixin, BaseEstimator, RegressorMixin):
    """Averaging ensemble of CART trees on bootstrap samples."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Any = 1.0,
        bootstrap: bool = True,
        oob_score: bool = False,
        max_samples: Optional[float] = None,
        random_state: Any = None,
        n_jobs: Optional[int] = 1,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.max_samples = max_samples
        self.random_state = random_state
        self.n_jobs = n_jobs

    def fit(self, X: Any, y: Any) -> "RandomForestRegressor":
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1.")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        if self.max_samples is None:
            n_draw = n_samples
        else:
            if not 0.0 < self.max_samples <= 1.0:
                raise ValueError("max_samples must be in (0, 1].")
            n_draw = max(1, int(round(self.max_samples * n_samples)))

        # Draw every tree's seed and bootstrap sample sequentially up front:
        # the RNG consumption order matches the historical fit loop, and the
        # per-tree work becomes independent and safe to fan out.
        members = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                idx = rng.integers(0, n_samples, size=n_draw)
            else:
                idx = np.arange(n_samples)
            members.append((tree, idx))

        n_chunks = max(1, min(resolve_n_jobs(self.n_jobs), self.n_estimators))
        bounds = np.linspace(0, self.n_estimators, n_chunks + 1).astype(int)
        tasks = [
            (X, y, members[lo:hi]) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
        ]
        chunks = parallel_map(_fit_tree_chunk, tasks, n_jobs=self.n_jobs)
        self.estimators_ = [tree for chunk in chunks for tree in chunk]
        self._packed = None  # drop any arena from a previous fit

        oob_sum = np.zeros(n_samples)
        oob_count = np.zeros(n_samples)
        if self.oob_score and self.bootstrap:
            # One batched traversal over the whole forest; each tree then
            # contributes its out-of-bag column slice in member order, which
            # matches the historical per-tree masked predict loop bit for bit.
            leaves = self._packed_ensemble().leaf_values(X)
            for i, (_, idx) in enumerate(members):
                mask = np.ones(n_samples, dtype=bool)
                mask[np.unique(idx)] = False
                if np.any(mask):
                    oob_sum[mask] += leaves[mask, i]
                    oob_count[mask] += 1

        if self.oob_score and self.bootstrap:
            covered = oob_count > 0
            if np.any(covered):
                self.oob_prediction_ = np.where(covered, oob_sum / np.maximum(oob_count, 1), np.nan)
                self.oob_score_ = r2_score(y[covered], self.oob_prediction_[covered])
            else:  # pragma: no cover - only with a single tiny tree
                self.oob_score_ = float("nan")
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        X = check_array(X)
        # Batched traversal + member-order accumulation: the same float-op
        # sequence as the historical per-tree sum, bit for bit.
        preds = self._packed_ensemble().accumulate(X)
        return preds / len(self.estimators_)

    def predict_all(self, X: Any) -> np.ndarray:
        """Per-tree predictions, shape ``(n_samples, n_estimators)``.

        Useful for query-by-committee style disagreement measures.
        """
        self._check_is_fitted()
        X = check_array(X)
        return self._packed_ensemble().leaf_values(X)

    def predict_std(self, X: Any) -> np.ndarray:
        """Standard deviation of per-tree predictions (ensemble disagreement)."""
        return self.predict_all(X).std(axis=1)

    @property
    def feature_importances_(self) -> np.ndarray:
        self._check_is_fitted()
        importances = np.mean([t.feature_importances_ for t in self.estimators_], axis=0)
        total = importances.sum()
        return importances / total if total > 0 else importances
