"""Linear models: ordinary least squares, ridge, Bayesian ridge and the
polynomial-regression pipeline used as the "PR" model in the paper.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y
from repro.ml.preprocessing import PolynomialFeatures, StandardScaler

__all__ = ["LinearRegression", "Ridge", "BayesianRidge", "PolynomialRegression"]


def _add_intercept_stats(X: np.ndarray, y: np.ndarray, fit_intercept: bool):
    """Centre X and y when fitting an intercept; return offsets."""
    if fit_intercept:
        X_mean = X.mean(axis=0)
        y_mean = float(y.mean())
        return X - X_mean, y - y_mean, X_mean, y_mean
    return X, y, np.zeros(X.shape[1]), 0.0


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares via :func:`numpy.linalg.lstsq`."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept

    def fit(self, X: Any, y: Any) -> "LinearRegression":
        X, y = check_X_y(X, y)
        Xc, yc, X_mean, y_mean = _add_intercept_stats(X, y, self.fit_intercept)
        coef, _, _, _ = np.linalg.lstsq(Xc, yc, rcond=None)
        self.coef_ = coef
        self.intercept_ = y_mean - float(X_mean @ coef)
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        X = check_array(X)
        return X @ self.coef_ + self.intercept_


class Ridge(BaseEstimator, RegressorMixin):
    """Linear least squares with L2 regularisation (closed form)."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X: Any, y: Any) -> "Ridge":
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative.")
        X, y = check_X_y(X, y)
        Xc, yc, X_mean, y_mean = _add_intercept_stats(X, y, self.fit_intercept)
        n_features = X.shape[1]
        A = Xc.T @ Xc + self.alpha * np.eye(n_features)
        b = Xc.T @ yc
        self.coef_ = np.linalg.solve(A, b)
        self.intercept_ = y_mean - float(X_mean @ self.coef_)
        self.n_features_in_ = n_features
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        X = check_array(X)
        return X @ self.coef_ + self.intercept_


class BayesianRidge(BaseEstimator, RegressorMixin):
    """Bayesian ridge regression with evidence-maximisation hyper-parameter
    updates (MacKay's iterative re-estimation, as in Bishop PRML §3.5).

    ``alpha_`` is the estimated noise precision and ``lambda_`` the weight
    precision; both are re-estimated from the data rather than user-supplied.
    """

    def __init__(
        self,
        max_iter: int = 300,
        tol: float = 1e-4,
        alpha_init: float | None = None,
        lambda_init: float | None = None,
        fit_intercept: bool = True,
    ) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.alpha_init = alpha_init
        self.lambda_init = lambda_init
        self.fit_intercept = fit_intercept

    def fit(self, X: Any, y: Any) -> "BayesianRidge":
        X, y = check_X_y(X, y)
        Xc, yc, X_mean, y_mean = _add_intercept_stats(X, y, self.fit_intercept)
        n_samples, n_features = Xc.shape

        # Eigen-decomposition of X^T X lets every EM iteration reuse the same
        # spectrum instead of re-solving a linear system.
        XtX = Xc.T @ Xc
        Xty = Xc.T @ yc
        eigvals, eigvecs = np.linalg.eigh(XtX)
        eigvals = np.clip(eigvals, 0.0, None)

        alpha = self.alpha_init if self.alpha_init is not None else 1.0 / (np.var(yc) + 1e-12)
        lam = self.lambda_init if self.lambda_init is not None else 1.0

        coef = np.zeros(n_features)
        for _ in range(self.max_iter):
            coef_old = coef
            # Posterior mean in the eigenbasis.
            denom = lam + alpha * eigvals
            proj = eigvecs.T @ Xty
            coef = eigvecs @ (alpha * proj / denom)
            # Effective number of well-determined parameters.
            gamma = float(np.sum(alpha * eigvals / denom))
            resid = yc - Xc @ coef
            sse = float(resid @ resid)
            lam = gamma / (float(coef @ coef) + 1e-12)
            alpha = (n_samples - gamma) / (sse + 1e-12)
            if np.max(np.abs(coef - coef_old)) < self.tol:
                break

        self.coef_ = coef
        self.intercept_ = y_mean - float(X_mean @ coef)
        self.alpha_ = float(alpha)
        self.lambda_ = float(lam)
        denom = lam + alpha * eigvals
        self.sigma_ = eigvecs @ np.diag(1.0 / denom) @ eigvecs.T
        self.n_features_in_ = n_features
        return self

    def predict(self, X: Any, return_std: bool = False):
        self._check_is_fitted()
        X = check_array(X)
        mean = X @ self.coef_ + self.intercept_
        if not return_std:
            return mean
        var = 1.0 / self.alpha_ + np.einsum("ij,jk,ik->i", X, self.sigma_, X)
        return mean, np.sqrt(np.maximum(var, 0.0))


class PolynomialRegression(BaseEstimator, RegressorMixin):
    """Polynomial feature expansion followed by a ridge fit.

    This is the "PR" model of the paper: linear in the coefficients but
    non-linear in the original features (O, V, nodes, tile size).  Features
    are standardised before expansion so high-degree terms stay conditioned.
    """

    def __init__(
        self,
        degree: int = 3,
        alpha: float = 1e-6,
        include_bias: bool = False,
        interaction_only: bool = False,
    ) -> None:
        self.degree = degree
        self.alpha = alpha
        self.include_bias = include_bias
        self.interaction_only = interaction_only

    def fit(self, X: Any, y: Any) -> "PolynomialRegression":
        X, y = check_X_y(X, y)
        self.scaler_ = StandardScaler().fit(X)
        Xs = self.scaler_.transform(X)
        self.poly_ = PolynomialFeatures(
            degree=self.degree,
            include_bias=self.include_bias,
            interaction_only=self.interaction_only,
        ).fit(Xs)
        Xp = self.poly_.transform(Xs)
        self.regressor_ = Ridge(alpha=self.alpha).fit(Xp, y)
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        X = check_array(X)
        Xp = self.poly_.transform(self.scaler_.transform(X))
        return self.regressor_.predict(Xp)
