"""Bayesian hyper-parameter optimisation (stand-in for scikit-optimize's
``BayesSearchCV``, which the paper uses as its third search strategy).

A Gaussian-process surrogate is fitted to (encoded hyper-parameters → CV
score) observations; the next candidate is chosen by maximising expected
improvement over a random candidate pool drawn from the search space.
Categorical values are one-hot encoded, numeric values are min-max scaled
(log-scaled when spanning several orders of magnitude).
"""

from __future__ import annotations

import math
import time
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.ml.base import check_random_state, clone
from repro.ml.gaussian_process import GaussianProcessRegressor
from repro.ml.kernels import RBF, ConstantKernel, WhiteKernel
from repro.ml.search import BaseSearchCV, ParameterGrid

__all__ = ["BayesSearchCV"]


def _norm_cdf(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.vectorize(math.erf)(x / math.sqrt(2.0)))


def _norm_pdf(x: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * x * x) / math.sqrt(2.0 * math.pi)


class _SpaceEncoder:
    """Encode hyper-parameter dicts as numeric vectors for the GP surrogate."""

    def __init__(self, param_grid: Mapping[str, Sequence]) -> None:
        self.keys = sorted(param_grid)
        self.spec: dict[str, dict[str, Any]] = {}
        for key in self.keys:
            values = list(param_grid[key])
            numeric = all(isinstance(v, (int, float, np.integer, np.floating)) and not isinstance(v, bool) for v in values)
            if numeric and len(set(values)) > 1:
                lo, hi = float(min(values)), float(max(values))
                log = lo > 0 and hi / max(lo, 1e-300) >= 100.0
                self.spec[key] = {"kind": "numeric", "lo": lo, "hi": hi, "log": log}
            else:
                self.spec[key] = {"kind": "categorical", "values": values}

    def encode(self, params_list: list[dict[str, Any]]) -> np.ndarray:
        rows = []
        for params in params_list:
            row: list[float] = []
            for key in self.keys:
                spec = self.spec[key]
                value = params[key]
                if spec["kind"] == "numeric":
                    lo, hi = spec["lo"], spec["hi"]
                    if spec["log"]:
                        lo_, hi_, v_ = math.log(lo), math.log(hi), math.log(max(float(value), 1e-300))
                    else:
                        lo_, hi_, v_ = lo, hi, float(value)
                    row.append((v_ - lo_) / (hi_ - lo_) if hi_ > lo_ else 0.0)
                else:
                    for candidate in spec["values"]:
                        row.append(1.0 if candidate == value else 0.0)
            rows.append(row)
        return np.asarray(rows, dtype=float)


class BayesSearchCV(BaseSearchCV):
    """Sequential model-based hyper-parameter optimisation with a GP surrogate.

    Parameters
    ----------
    estimator, search_spaces, scoring, cv, refit:
        As in :class:`~repro.ml.search.GridSearchCV`; ``search_spaces`` maps
        parameter names to lists of candidate values.
    n_iter:
        Total number of hyper-parameter evaluations (including the random
        initial design).
    n_initial_points:
        Number of randomly chosen configurations evaluated before the GP
        surrogate starts steering the search.
    """

    def __init__(
        self,
        estimator: Any,
        search_spaces: Mapping[str, Sequence],
        *,
        n_iter: int = 20,
        n_initial_points: int = 5,
        scoring: Any = "r2",
        cv: Any = 3,
        refit: bool = True,
        random_state: Any = None,
        n_jobs: Optional[int] = 1,
    ) -> None:
        super().__init__(estimator, scoring=scoring, cv=cv, refit=refit, n_jobs=n_jobs)
        self.search_spaces = search_spaces
        self.n_iter = n_iter
        self.n_initial_points = n_initial_points
        self.random_state = random_state

    # The sequential nature of Bayesian optimisation means we override fit
    # rather than just listing candidates up front; ``n_jobs`` therefore
    # parallelises the CV folds *within* each candidate evaluation.
    def fit(self, X: Any, y: Any) -> "BayesSearchCV":
        from repro.ml.model_selection import get_scorer
        from repro.parallel.cache import cv_splits

        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        rng = check_random_state(self.random_state)
        get_scorer(self.scoring)  # fail fast on unknown scoring specs
        splits = cv_splits(X, y, cv=self.cv)
        data_token = self._data_token(X, y, splits)

        pool = list(ParameterGrid(self.search_spaces))
        if not pool:
            raise ValueError("Empty search space.")
        encoder = _SpaceEncoder({k: list(v) for k, v in self.search_spaces.items()})
        pool_encoded = encoder.encode(pool)

        n_total = min(self.n_iter, len(pool))
        n_init = min(self.n_initial_points, n_total)

        evaluated_idx: list[int] = []
        scores: list[float] = []
        stds: list[float] = []
        times: list[float] = []
        t_start = time.perf_counter()

        def evaluate(pool_index: int) -> None:
            params = pool[pool_index]
            mean, std, elapsed = self._evaluate_candidate(
                params, X, y, splits, data_token=data_token, fold_jobs=self.n_jobs
            )
            evaluated_idx.append(pool_index)
            scores.append(mean)
            stds.append(std)
            times.append(elapsed)

        # Random initial design without replacement.
        init_indices = rng.choice(len(pool), size=n_init, replace=False)
        for idx in init_indices:
            evaluate(int(idx))

        while len(evaluated_idx) < n_total:
            remaining = np.setdiff1d(np.arange(len(pool)), np.asarray(evaluated_idx))
            if remaining.size == 0:
                break
            X_obs = pool_encoded[evaluated_idx]
            y_obs = np.asarray(scores)
            try:
                gp = GaussianProcessRegressor(
                    kernel=ConstantKernel(1.0) * RBF(np.ones(X_obs.shape[1])) + WhiteKernel(1e-3),
                    alpha=1e-8,
                    n_restarts_optimizer=1,
                    random_state=int(rng.integers(0, 2**31 - 1)),
                )
                gp.fit(X_obs, y_obs)
                mu, sigma = gp.predict(pool_encoded[remaining], return_std=True)
                best = float(np.max(y_obs))
                sigma = np.maximum(sigma, 1e-9)
                z = (mu - best) / sigma
                ei = (mu - best) * _norm_cdf(z) + sigma * _norm_pdf(z)
                next_idx = int(remaining[int(np.argmax(ei))])
            except Exception:
                # Surrogate failures (degenerate kernels, singular systems)
                # fall back to random exploration rather than aborting.
                next_idx = int(rng.choice(remaining))
            evaluate(next_idx)

        self.search_time_ = time.perf_counter() - t_start
        self.cv_results_ = {
            "params": [pool[i] for i in evaluated_idx],
            "mean_test_score": np.asarray(scores),
            "std_test_score": np.asarray(stds),
            "eval_time": np.asarray(times),
        }
        best_i = int(np.argmax(self.cv_results_["mean_test_score"]))
        self.best_index_ = best_i
        self.best_params_ = self.cv_results_["params"][best_i]
        self.best_score_ = float(self.cv_results_["mean_test_score"][best_i])
        if self.refit:
            from repro.parallel.store import record_fit

            self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
            record_fit()
            self.best_estimator_.fit(X, y)
        return self

    def _candidates(self) -> list[dict[str, Any]]:  # pragma: no cover - unused
        return list(ParameterGrid(self.search_spaces))
