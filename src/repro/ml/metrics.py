"""Regression metrics used throughout the paper's evaluation.

The paper reports the coefficient of determination (R²), the mean absolute
error (MAE) and the mean absolute percentage error (MAPE).  MAPE is reported
as a *fraction* (e.g. 0.023), matching the paper's tables, not as a
percentage.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "r2_score",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "median_absolute_error",
    "max_error",
    "explained_variance_score",
    "regression_report",
]


def _validate(y_true: Any, y_pred: Any) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred have different shapes: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("Cannot compute a metric on empty arrays.")
    return y_true, y_pred


def r2_score(y_true: Any, y_pred: Any) -> float:
    """Coefficient of determination.

    ``R² = 1 - SS_res / SS_tot``.  A constant ``y_true`` with a perfect
    prediction returns 1.0; a constant ``y_true`` with any error returns 0.0
    (degenerate case, consistent with scikit-learn).
    """
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def mean_absolute_error(y_true: Any, y_pred: Any) -> float:
    """Average absolute deviation between predictions and observations."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_absolute_percentage_error(y_true: Any, y_pred: Any) -> float:
    """Mean absolute percentage error expressed as a fraction.

    Observations with magnitude below ``eps`` are clipped to ``eps`` to avoid
    division by zero, mirroring scikit-learn's behaviour.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    eps = np.finfo(np.float64).eps
    denom = np.maximum(np.abs(y_true), eps)
    return float(np.mean(np.abs(y_true - y_pred) / denom))


def mean_squared_error(y_true: Any, y_pred: Any) -> float:
    """Mean squared error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true: Any, y_pred: Any) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def median_absolute_error(y_true: Any, y_pred: Any) -> float:
    """Median absolute deviation; robust to outliers."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.median(np.abs(y_true - y_pred)))


def max_error(y_true: Any, y_pred: Any) -> float:
    """Largest absolute deviation over the evaluation set."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.max(np.abs(y_true - y_pred)))


def explained_variance_score(y_true: Any, y_pred: Any) -> float:
    """Fraction of target variance explained by the predictions."""
    y_true, y_pred = _validate(y_true, y_pred)
    var_res = float(np.var(y_true - y_pred))
    var_true = float(np.var(y_true))
    if var_true == 0.0:
        return 1.0 if var_res == 0.0 else 0.0
    return 1.0 - var_res / var_true


def regression_report(y_true: Any, y_pred: Any) -> dict[str, float]:
    """Bundle of the paper's three headline metrics plus a few extras."""
    return {
        "r2": r2_score(y_true, y_pred),
        "mae": mean_absolute_error(y_true, y_pred),
        "mape": mean_absolute_percentage_error(y_true, y_pred),
        "rmse": root_mean_squared_error(y_true, y_pred),
        "max_error": max_error(y_true, y_pred),
    }
