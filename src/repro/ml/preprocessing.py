"""Feature preprocessing: scalers and polynomial feature expansion.

Polynomial feature expansion is the basis of the paper's "Polynomial
Regression" model; the scalers are used by kernel methods (KR, GP, SVR) whose
hyper-parameters are scale sensitive.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import Any, Optional, Sequence

import numpy as np

from repro.ml.base import BaseEstimator, check_array

__all__ = ["StandardScaler", "MinMaxScaler", "PolynomialFeatures"]


class StandardScaler(BaseEstimator):
    """Standardise features to zero mean and unit variance.

    Features with zero variance are left at their centred value (the scale is
    clamped to 1) so constant columns never produce NaNs.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X: Any, y: Any = None) -> "StandardScaler":
        X = check_array(X)
        self.n_features_in_ = X.shape[1]
        if self.with_mean and self.with_std:
            # Content-addressed cache: kernel models (KR, GP, SVR) fitting
            # the same fold matrix share one moments computation.
            from repro.parallel.cache import feature_moments

            self.mean_, self.scale_ = feature_moments(X)
            return self
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, but StandardScaler was fitted with "
                f"{self.n_features_in_}."
            )
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        X = check_array(X)
        return X * self.scale_ + self.mean_

    def fit_transform(self, X: Any, y: Any = None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class MinMaxScaler(BaseEstimator):
    """Scale each feature to a given range (default ``[0, 1]``)."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        self.feature_range = feature_range

    def fit(self, X: Any, y: Any = None) -> "MinMaxScaler":
        lo, hi = self.feature_range
        if lo >= hi:
            raise ValueError(f"Invalid feature_range {self.feature_range}: min must be < max.")
        X = check_array(X)
        self.n_features_in_ = X.shape[1]
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        data_range = self.data_max_ - self.data_min_
        data_range[data_range == 0.0] = 1.0
        self.data_range_ = data_range
        self.scale_ = (hi - lo) / data_range
        self.min_ = lo - self.data_min_ * self.scale_
        return self

    def transform(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, but MinMaxScaler was fitted with "
                f"{self.n_features_in_}."
            )
        return X * self.scale_ + self.min_

    def inverse_transform(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        X = check_array(X)
        return (X - self.min_) / self.scale_

    def fit_transform(self, X: Any, y: Any = None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class PolynomialFeatures(BaseEstimator):
    """Generate polynomial and interaction features up to ``degree``.

    The output column order is: bias (optional), degree-1 terms, degree-2
    terms, ... with each degree block ordered by
    :func:`itertools.combinations_with_replacement` over feature indices.
    """

    def __init__(
        self,
        degree: int = 2,
        include_bias: bool = True,
        interaction_only: bool = False,
    ) -> None:
        self.degree = degree
        self.include_bias = include_bias
        self.interaction_only = interaction_only

    def _combinations(self, n_features: int) -> list[tuple[int, ...]]:
        combos: list[tuple[int, ...]] = []
        if self.include_bias:
            combos.append(())
        for deg in range(1, self.degree + 1):
            if self.interaction_only:
                from itertools import combinations

                combos.extend(combinations(range(n_features), deg))
            else:
                combos.extend(combinations_with_replacement(range(n_features), deg))
        return combos

    def fit(self, X: Any, y: Any = None) -> "PolynomialFeatures":
        if self.degree < 0:
            raise ValueError("degree must be non-negative.")
        X = check_array(X)
        self.n_features_in_ = X.shape[1]
        self.combinations_ = self._combinations(X.shape[1])
        self.n_output_features_ = len(self.combinations_)
        return self

    def transform(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, but PolynomialFeatures was fitted with "
                f"{self.n_features_in_}."
            )
        n_samples = X.shape[0]
        out = np.empty((n_samples, self.n_output_features_), dtype=np.float64)
        for j, combo in enumerate(self.combinations_):
            if len(combo) == 0:
                out[:, j] = 1.0
            else:
                out[:, j] = np.prod(X[:, combo], axis=1)
        return out

    def fit_transform(self, X: Any, y: Any = None) -> np.ndarray:
        return self.fit(X, y).transform(X)

    def get_feature_names_out(self, input_features: Optional[Sequence[str]] = None) -> list[str]:
        """Human-readable names, e.g. ``["1", "x0", "x0 x1", "x1^2"]``."""
        self._check_is_fitted()
        if input_features is None:
            input_features = [f"x{i}" for i in range(self.n_features_in_)]
        names = []
        for combo in self.combinations_:
            if len(combo) == 0:
                names.append("1")
                continue
            parts = []
            for idx in sorted(set(combo)):
                power = combo.count(idx)
                parts.append(input_features[idx] if power == 1 else f"{input_features[idx]}^{power}")
            names.append(" ".join(parts))
        return names
