"""Hyper-parameter search: parameter grids, grid search and randomized search.

Figures 1 and 2 of the paper compare every model under three search
strategies: ``GridSearchCV``, ``RandomizedSearchCV`` and ``BayesSearchCV``
(the latter lives in :mod:`repro.ml.bayes_search`).  All searches share the
same cross-validated scoring loop implemented here.
"""

from __future__ import annotations

import time
from itertools import product
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.ml.base import BaseEstimator, _as_param_mapping, check_random_state, clone
from repro.ml.model_selection import KFold, _resolve_cv, get_scorer

__all__ = ["ParameterGrid", "ParameterSampler", "GridSearchCV", "RandomizedSearchCV", "BaseSearchCV"]


class ParameterGrid:
    """Exhaustive Cartesian product over a parameter grid (or list of grids)."""

    def __init__(self, param_grid: Mapping[str, Sequence] | Sequence[Mapping[str, Sequence]]) -> None:
        if isinstance(param_grid, Mapping):
            param_grid = [param_grid]
        self.param_grid = [_as_param_mapping(grid) for grid in param_grid]

    def __iter__(self) -> Iterator[dict[str, Any]]:
        for grid in self.param_grid:
            keys = sorted(grid)
            if not keys:
                yield {}
                continue
            for values in product(*(grid[k] for k in keys)):
                yield dict(zip(keys, values))

    def __len__(self) -> int:
        total = 0
        for grid in self.param_grid:
            n = 1
            for values in grid.values():
                n *= len(values)
            total += n
        return total


class ParameterSampler:
    """Random samples from a parameter grid or from distributions.

    Values may be lists (sampled uniformly) or objects exposing an
    ``rvs(random_state=...)`` method (e.g. ``scipy.stats`` distributions).
    """

    def __init__(
        self,
        param_distributions: Mapping[str, Any],
        n_iter: int,
        random_state: Any = None,
    ) -> None:
        self.param_distributions = dict(param_distributions)
        self.n_iter = n_iter
        self.random_state = random_state

    def __iter__(self) -> Iterator[dict[str, Any]]:
        rng = check_random_state(self.random_state)
        keys = sorted(self.param_distributions)
        all_lists = all(
            not hasattr(self.param_distributions[k], "rvs") for k in keys
        )
        if all_lists:
            grid = ParameterGrid({k: self.param_distributions[k] for k in keys})
            candidates = list(grid)
            n = min(self.n_iter, len(candidates))
            idx = rng.choice(len(candidates), size=n, replace=False)
            for i in idx:
                yield candidates[int(i)]
            return
        for _ in range(self.n_iter):
            params = {}
            for k in keys:
                dist = self.param_distributions[k]
                if hasattr(dist, "rvs"):
                    params[k] = dist.rvs(random_state=int(rng.integers(0, 2**31 - 1)))
                else:
                    values = list(dist)
                    params[k] = values[int(rng.integers(0, len(values)))]
            yield params

    def __len__(self) -> int:
        return self.n_iter


class BaseSearchCV(BaseEstimator):
    """Shared machinery: evaluate candidates with K-fold CV and refit the best."""

    def __init__(
        self,
        estimator: Any,
        *,
        scoring: Any = "r2",
        cv: Any = 3,
        refit: bool = True,
    ) -> None:
        self.estimator = estimator
        self.scoring = scoring
        self.cv = cv
        self.refit = refit

    def _candidates(self) -> list[dict[str, Any]]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _evaluate_candidate(
        self,
        params: dict[str, Any],
        X: np.ndarray,
        y: np.ndarray,
        splits: list[tuple[np.ndarray, np.ndarray]],
        scorer: Any,
    ) -> tuple[float, float, float]:
        scores = []
        t0 = time.perf_counter()
        for train_idx, test_idx in splits:
            model = clone(self.estimator).set_params(**params)
            model.fit(X[train_idx], y[train_idx])
            scores.append(scorer(y[test_idx], model.predict(X[test_idx])))
        elapsed = time.perf_counter() - t0
        return float(np.mean(scores)), float(np.std(scores)), elapsed

    def fit(self, X: Any, y: Any) -> "BaseSearchCV":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        scorer = get_scorer(self.scoring)
        splitter = _resolve_cv(self.cv)
        splits = list(splitter.split(X, y))

        candidates = self._candidates()
        if not candidates:
            raise ValueError("No hyper-parameter candidates to evaluate.")

        results: dict[str, list] = {
            "params": [],
            "mean_test_score": [],
            "std_test_score": [],
            "eval_time": [],
        }
        t_start = time.perf_counter()
        for params in candidates:
            mean, std, elapsed = self._evaluate_candidate(params, X, y, splits, scorer)
            results["params"].append(params)
            results["mean_test_score"].append(mean)
            results["std_test_score"].append(std)
            results["eval_time"].append(elapsed)
        self.search_time_ = time.perf_counter() - t_start

        self.cv_results_ = {
            "params": results["params"],
            "mean_test_score": np.asarray(results["mean_test_score"]),
            "std_test_score": np.asarray(results["std_test_score"]),
            "eval_time": np.asarray(results["eval_time"]),
        }
        best_idx = int(np.argmax(self.cv_results_["mean_test_score"]))
        self.best_index_ = best_idx
        self.best_params_ = self.cv_results_["params"][best_idx]
        self.best_score_ = float(self.cv_results_["mean_test_score"][best_idx])

        if self.refit:
            self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
            self.best_estimator_.fit(X, y)
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        if not self.refit:
            raise RuntimeError("predict is only available when refit=True.")
        return self.best_estimator_.predict(X)

    def score(self, X: Any, y: Any) -> float:
        scorer = get_scorer(self.scoring)
        return float(scorer(np.asarray(y, dtype=float).ravel(), self.predict(X)))


class GridSearchCV(BaseSearchCV):
    """Exhaustive cross-validated search over a parameter grid."""

    def __init__(
        self,
        estimator: Any,
        param_grid: Mapping[str, Sequence] | Sequence[Mapping[str, Sequence]],
        *,
        scoring: Any = "r2",
        cv: Any = 3,
        refit: bool = True,
    ) -> None:
        super().__init__(estimator, scoring=scoring, cv=cv, refit=refit)
        self.param_grid = param_grid

    def _candidates(self) -> list[dict[str, Any]]:
        return list(ParameterGrid(self.param_grid))


class RandomizedSearchCV(BaseSearchCV):
    """Cross-validated search over randomly sampled parameter settings."""

    def __init__(
        self,
        estimator: Any,
        param_distributions: Mapping[str, Any],
        *,
        n_iter: int = 10,
        scoring: Any = "r2",
        cv: Any = 3,
        refit: bool = True,
        random_state: Any = None,
    ) -> None:
        super().__init__(estimator, scoring=scoring, cv=cv, refit=refit)
        self.param_distributions = param_distributions
        self.n_iter = n_iter
        self.random_state = random_state

    def _candidates(self) -> list[dict[str, Any]]:
        sampler = ParameterSampler(
            self.param_distributions, n_iter=self.n_iter, random_state=self.random_state
        )
        return list(sampler)
