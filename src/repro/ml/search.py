"""Hyper-parameter search: parameter grids, grid search and randomized search.

Figures 1 and 2 of the paper compare every model under three search
strategies: ``GridSearchCV``, ``RandomizedSearchCV`` and ``BayesSearchCV``
(the latter lives in :mod:`repro.ml.bayes_search`).  All searches share the
same cross-validated scoring loop implemented here.

``n_jobs`` contract: every search accepts ``n_jobs`` and fans candidate
evaluations out over :func:`repro.parallel.parallel_map` (folds, for the
sequential Bayesian search).  Candidate order, CV splits and every seed are
fixed *before* the fan-out, so ``best_params_``, ``best_score_`` and
``cv_results_`` scores are bit-identical for serial and parallel runs.
Candidate evaluations are memoised via :mod:`repro.parallel.cache`, so
strategies that revisit the same candidate on the same data reuse the score;
when a cross-process memo store is active (``--memo-dir`` /
``REPRO_MEMO_DIR``, see :mod:`repro.parallel.store`) the memo extends across
worker processes and across runs with byte-identical scores.
"""

from __future__ import annotations

import time
from itertools import product
from typing import Any, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.ml.base import BaseEstimator, _as_param_mapping, check_random_state, clone
from repro.ml.model_selection import get_scorer
from repro.parallel.backend import parallel_map
from repro.parallel.cache import (
    array_token,
    candidate_eval_get,
    candidate_eval_put,
    cv_splits,
    estimator_token,
    splits_token,
)
from repro.parallel.store import record_fit

__all__ = ["ParameterGrid", "ParameterSampler", "GridSearchCV", "RandomizedSearchCV", "BaseSearchCV"]


def _candidate_cache_key(
    estimator: Any, params: Mapping[str, Any], data_token: Optional[tuple], scoring: Any
) -> Optional[tuple]:
    """Memoisation key for one candidate evaluation, or ``None`` if uncacheable."""
    if data_token is None or not isinstance(scoring, str):
        return None
    est_token = estimator_token(estimator, params)
    if est_token is None:
        return None
    return est_token + (data_token, scoring)


def _fit_score_fold(task: tuple) -> float:
    """Fit one CV fold of one candidate and return its test score."""
    estimator, params, X, y, train_idx, test_idx, scoring = task
    scorer = get_scorer(scoring)
    model = clone(estimator).set_params(**params)
    record_fit()
    model.fit(X[train_idx], y[train_idx])
    return float(scorer(y[test_idx], model.predict(X[test_idx])))


def _evaluate_one(task: tuple) -> tuple[float, float, float]:
    """Evaluate one candidate over all folds: ``(mean, std, eval_time)``.

    Module-level (picklable) so candidate evaluations can run in worker
    processes; consults the cross-strategy memo cache first.
    """
    estimator, params, X, y, splits, scoring, data_token, fold_jobs = task
    t0 = time.perf_counter()
    key = _candidate_cache_key(estimator, params, data_token, scoring)
    if key is not None:
        cached = candidate_eval_get(key)
        if cached is not None:
            # eval_time always reports time spent *this* run: for a memo hit
            # that is the lookup cost, not the original evaluation's cost.
            mean, std = cached
            return (mean, std, time.perf_counter() - t0)
    fold_tasks = [
        (estimator, params, X, y, train_idx, test_idx, scoring)
        for train_idx, test_idx in splits
    ]
    scores = parallel_map(_fit_score_fold, fold_tasks, n_jobs=fold_jobs)
    elapsed = time.perf_counter() - t0
    mean, std = float(np.mean(scores)), float(np.std(scores))
    if key is not None:
        candidate_eval_put(key, (mean, std))
    return (mean, std, elapsed)


class ParameterGrid:
    """Exhaustive Cartesian product over a parameter grid (or list of grids)."""

    def __init__(self, param_grid: Mapping[str, Sequence] | Sequence[Mapping[str, Sequence]]) -> None:
        if isinstance(param_grid, Mapping):
            param_grid = [param_grid]
        self.param_grid = [_as_param_mapping(grid) for grid in param_grid]

    def __iter__(self) -> Iterator[dict[str, Any]]:
        for grid in self.param_grid:
            keys = sorted(grid)
            if not keys:
                yield {}
                continue
            for values in product(*(grid[k] for k in keys)):
                yield dict(zip(keys, values))

    def __len__(self) -> int:
        total = 0
        for grid in self.param_grid:
            n = 1
            for values in grid.values():
                n *= len(values)
            total += n
        return total


class ParameterSampler:
    """Random samples from a parameter grid or from distributions.

    Values may be lists (sampled uniformly) or objects exposing an
    ``rvs(random_state=...)`` method (e.g. ``scipy.stats`` distributions).
    """

    def __init__(
        self,
        param_distributions: Mapping[str, Any],
        n_iter: int,
        random_state: Any = None,
    ) -> None:
        self.param_distributions = dict(param_distributions)
        self.n_iter = n_iter
        self.random_state = random_state

    def __iter__(self) -> Iterator[dict[str, Any]]:
        rng = check_random_state(self.random_state)
        keys = sorted(self.param_distributions)
        all_lists = all(
            not hasattr(self.param_distributions[k], "rvs") for k in keys
        )
        if all_lists:
            grid = ParameterGrid({k: self.param_distributions[k] for k in keys})
            candidates = list(grid)
            n = min(self.n_iter, len(candidates))
            idx = rng.choice(len(candidates), size=n, replace=False)
            for i in idx:
                yield candidates[int(i)]
            return
        for _ in range(self.n_iter):
            params = {}
            for k in keys:
                dist = self.param_distributions[k]
                if hasattr(dist, "rvs"):
                    params[k] = dist.rvs(random_state=int(rng.integers(0, 2**31 - 1)))
                else:
                    values = list(dist)
                    params[k] = values[int(rng.integers(0, len(values)))]
            yield params

    def __len__(self) -> int:
        return self.n_iter


class BaseSearchCV(BaseEstimator):
    """Shared machinery: evaluate candidates with K-fold CV and refit the best.

    ``n_jobs`` fans the independent candidate evaluations out over a process
    pool (serial when 1, all CPUs when -1); results are identical to the
    serial path for a fixed seed.
    """

    def __init__(
        self,
        estimator: Any,
        *,
        scoring: Any = "r2",
        cv: Any = 3,
        refit: bool = True,
        n_jobs: Optional[int] = 1,
    ) -> None:
        self.estimator = estimator
        self.scoring = scoring
        self.cv = cv
        self.refit = refit
        self.n_jobs = n_jobs

    def _candidates(self) -> list[dict[str, Any]]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _data_token(
        self, X: np.ndarray, y: np.ndarray, splits: list[tuple[np.ndarray, np.ndarray]]
    ) -> tuple:
        """Content token identifying ``(X, y, splits)`` for the memo cache."""
        return (array_token(X), array_token(y), splits_token(splits))

    def _evaluate_candidate(
        self,
        params: dict[str, Any],
        X: np.ndarray,
        y: np.ndarray,
        splits: list[tuple[np.ndarray, np.ndarray]],
        *,
        data_token: Optional[tuple] = None,
        fold_jobs: Optional[int] = 1,
    ) -> tuple[float, float, float]:
        return _evaluate_one(
            (self.estimator, params, X, y, splits, self.scoring, data_token, fold_jobs)
        )

    def fit(self, X: Any, y: Any) -> "BaseSearchCV":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        get_scorer(self.scoring)  # fail fast on unknown scoring specs
        splits = cv_splits(X, y, cv=self.cv)

        candidates = self._candidates()
        if not candidates:
            raise ValueError("No hyper-parameter candidates to evaluate.")

        data_token = self._data_token(X, y, splits)
        # With a single candidate the fan-out happens across folds instead.
        candidate_jobs = self.n_jobs if len(candidates) > 1 else 1
        fold_jobs = self.n_jobs if len(candidates) == 1 else 1
        tasks = [
            (self.estimator, params, X, y, splits, self.scoring, data_token, fold_jobs)
            for params in candidates
        ]
        t_start = time.perf_counter()
        evaluated = parallel_map(_evaluate_one, tasks, n_jobs=candidate_jobs)
        self.search_time_ = time.perf_counter() - t_start

        self.cv_results_ = {
            "params": candidates,
            "mean_test_score": np.asarray([mean for mean, _, _ in evaluated]),
            "std_test_score": np.asarray([std for _, std, _ in evaluated]),
            "eval_time": np.asarray([elapsed for _, _, elapsed in evaluated]),
        }
        best_idx = int(np.argmax(self.cv_results_["mean_test_score"]))
        self.best_index_ = best_idx
        self.best_params_ = self.cv_results_["params"][best_idx]
        self.best_score_ = float(self.cv_results_["mean_test_score"][best_idx])

        if self.refit:
            self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
            record_fit()
            self.best_estimator_.fit(X, y)
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        if not self.refit:
            raise RuntimeError("predict is only available when refit=True.")
        return self.best_estimator_.predict(X)

    def score(self, X: Any, y: Any) -> float:
        scorer = get_scorer(self.scoring)
        return float(scorer(np.asarray(y, dtype=float).ravel(), self.predict(X)))


class GridSearchCV(BaseSearchCV):
    """Exhaustive cross-validated search over a parameter grid."""

    def __init__(
        self,
        estimator: Any,
        param_grid: Mapping[str, Sequence] | Sequence[Mapping[str, Sequence]],
        *,
        scoring: Any = "r2",
        cv: Any = 3,
        refit: bool = True,
        n_jobs: Optional[int] = 1,
    ) -> None:
        super().__init__(estimator, scoring=scoring, cv=cv, refit=refit, n_jobs=n_jobs)
        self.param_grid = param_grid

    def _candidates(self) -> list[dict[str, Any]]:
        return list(ParameterGrid(self.param_grid))


class RandomizedSearchCV(BaseSearchCV):
    """Cross-validated search over randomly sampled parameter settings."""

    def __init__(
        self,
        estimator: Any,
        param_distributions: Mapping[str, Any],
        *,
        n_iter: int = 10,
        scoring: Any = "r2",
        cv: Any = 3,
        refit: bool = True,
        random_state: Any = None,
        n_jobs: Optional[int] = 1,
    ) -> None:
        super().__init__(estimator, scoring=scoring, cv=cv, refit=refit, n_jobs=n_jobs)
        self.param_distributions = param_distributions
        self.n_iter = n_iter
        self.random_state = random_state

    def _candidates(self) -> list[dict[str, Any]]:
        sampler = ParameterSampler(
            self.param_distributions, n_iter=self.n_iter, random_state=self.random_state
        )
        return list(sampler)
