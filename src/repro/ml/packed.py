"""Packed flat-array ensemble prediction engine.

Fitted tree ensembles (RF, GB, AB, the active-learning committees) used to
predict by looping over per-tree Python objects: ``n_trees`` separate
``apply()`` calls, each paying its own Python/NumPy dispatch overhead per
traversal level.  :class:`PackedEnsemble` concatenates every member tree's
``feature_``/``threshold_``/``children_*_``/``value_`` node arrays into one
C-contiguous arena (per-tree node offsets, child pointers rebased to global
int32 arena indices) and traverses **all trees for all samples in one batched
loop**: each iteration advances every (sample, tree) pair one level, so the
whole ensemble costs ``max_depth`` vectorised passes instead of ``n_trees``
of them.

Traversal internals (built lazily, never pickled):

* **Level-major node tables** — nodes are re-ordered by depth, so the pass
  for level ``d`` gathers from a contiguous slice of the arena that fits in
  cache instead of striding across every tree's full node block.
* **Self-looping leaves** — leaves redirect to themselves with a ``+inf``
  threshold, which removes all per-round masking/compaction: every round is
  three straight gathers, one compare and one fused child lookup.
* **Sample blocking** — samples are processed in blocks sized so a block's
  cursor/scratch arrays stay cache-resident across the depth loop, and leaf
  values are accumulated into the output inside the block.

The parity bar: traversal is routing-identical to per-tree ``apply()`` (the
same ``<=`` comparison on the same float64 thresholds) and aggregation
replays the historical float-op order (sequential shrinkage accumulation for
GB, sequential sum for RF, weighted median for AB), so packed predictions
are **byte-identical** to the per-tree object path.

The arena doubles as the pickle form of fitted ensembles
(:func:`pack_trees_state` / :func:`unpack_trees_state`): a handful of flat
ndarrays serialize far smaller and faster than a graph of
``DecisionTreeRegressor`` objects, which shrinks memo-store payloads (disk
and ``memo://``) and pool-worker transfer costs for free.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.ml.tree import _TREE_LEAF, _TREE_UNDEFINED, DecisionTreeRegressor

__all__ = [
    "PackedEnsemble",
    "PackedTreesMixin",
    "committee_predictions",
    "pack_trees_state",
    "unpack_trees_state",
    "PACKED_STATE_VERSION",
]

#: Version tag of the packed pickle form emitted by :func:`pack_trees_state`.
PACKED_STATE_VERSION = 1

#: Samples per traversal block.  A block's cursor/scratch arrays are
#: ``n_trees * block`` elements; 256 keeps them cache-resident for the
#: paper's deployed 750-tree model while amortising per-call dispatch.
_BLOCK_SAMPLES = 256


class _Traversal:
    """Level-major, self-looping-leaf tables backing the batched traversal."""

    __slots__ = ("feature", "threshold", "children2", "value", "order", "roots", "max_depth")

    def __init__(self, pe: "PackedEnsemble") -> None:
        n_nodes = pe.n_nodes
        leaf = pe.feature == _TREE_UNDEFINED
        identity = np.arange(n_nodes, dtype=np.intp)
        left = np.where(pe.children_left == _TREE_LEAF, identity, pe.children_left)
        right = np.where(pe.children_right == _TREE_LEAF, identity, pe.children_right)

        # Node depths via one vectorised frontier pass per level.
        depth = np.zeros(n_nodes, dtype=np.intp)
        frontier = pe.offsets[:-1].astype(np.intp)
        max_depth = 0
        while True:
            internal = frontier[~leaf[frontier]]
            if internal.size == 0:
                break
            frontier = np.concatenate(
                (pe.children_left[internal], pe.children_right[internal])
            ).astype(np.intp)
            max_depth += 1
            depth[frontier] = max_depth

        # Stable sort by depth: level-major order, tree/DFS order within a
        # level, so each traversal round reads a contiguous arena slice.
        order = np.argsort(depth, kind="stable").astype(np.intp)
        rank = np.empty(n_nodes, dtype=np.intp)
        rank[order] = identity

        # Leaves become self-loops with an always-true (+inf) comparison on
        # feature 0: finished pairs ride along without masking and their
        # cursor keeps pointing at the leaf whose value they need.
        self.feature = np.where(leaf, 0, pe.feature)[order].astype(np.intp)
        self.threshold = np.where(leaf, np.inf, pe.threshold)[order]
        children2 = np.empty(2 * n_nodes, dtype=np.intp)
        children2[0::2] = rank[left[order]]
        children2[1::2] = rank[right[order]]
        self.children2 = children2
        self.value = pe.value[order]
        self.order = order
        self.roots = rank[pe.offsets[:-1]]
        self.max_depth = max_depth


class PackedEnsemble:
    """Flat-arena representation of a fitted tree ensemble.

    Attributes
    ----------
    feature, threshold, value, n_node_samples:
        Concatenation of the member trees' node arrays (``feature`` as int32;
        leaves keep the ``_TREE_UNDEFINED`` sentinel).
    children_left, children_right:
        int32 child pointers rebased to *global* arena indices; leaves keep
        ``_TREE_LEAF``.
    offsets:
        ``(n_trees + 1,)`` int64 prefix of node counts: tree ``t`` owns arena
        slots ``offsets[t]:offsets[t + 1]`` and its root is ``offsets[t]``.
    """

    __slots__ = (
        "feature",
        "threshold",
        "children_left",
        "children_right",
        "value",
        "n_node_samples",
        "offsets",
        "n_features_in",
        "_trav",
    )

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        children_left: np.ndarray,
        children_right: np.ndarray,
        value: np.ndarray,
        n_node_samples: np.ndarray,
        offsets: np.ndarray,
        n_features_in: int,
    ) -> None:
        self.feature = feature
        self.threshold = threshold
        self.children_left = children_left
        self.children_right = children_right
        self.value = value
        self.n_node_samples = n_node_samples
        self.offsets = offsets
        self.n_features_in = int(n_features_in)
        self._trav: Optional[_Traversal] = None

    # ------------------------------------------------------------------ pickling
    # __slots__ classes have no __dict__; pickle the canonical arena only —
    # the traversal tables are a cache, rebuilt on first use.
    def __getstate__(self) -> tuple:
        return tuple(getattr(self, name) for name in self.__slots__[:-1])

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)
        self._trav = None

    # ------------------------------------------------------------------ building
    @classmethod
    def from_trees(cls, trees: Sequence[DecisionTreeRegressor]) -> "PackedEnsemble":
        """Pack fitted :class:`DecisionTreeRegressor` members into one arena."""
        if not trees:
            raise ValueError("Cannot pack an empty ensemble.")
        for tree in trees:
            if not hasattr(tree, "n_nodes_"):
                raise ValueError("Every member tree must be fitted before packing.")
        n_features = trees[0].n_features_in_
        for tree in trees:
            if tree.n_features_in_ != n_features:
                raise ValueError("Member trees disagree on the number of features.")
        sizes = np.asarray([t.n_nodes_ for t in trees], dtype=np.int64)
        offsets = np.zeros(len(trees) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])

        children_left = []
        children_right = []
        for tree, off in zip(trees, offsets[:-1]):
            cl = tree.children_left_
            cr = tree.children_right_
            children_left.append(np.where(cl == _TREE_LEAF, _TREE_LEAF, cl + off))
            children_right.append(np.where(cr == _TREE_LEAF, _TREE_LEAF, cr + off))

        return cls(
            feature=np.ascontiguousarray(
                np.concatenate([t.feature_ for t in trees]), dtype=np.int32
            ),
            threshold=np.ascontiguousarray(
                np.concatenate([t.threshold_ for t in trees]), dtype=np.float64
            ),
            children_left=np.ascontiguousarray(
                np.concatenate(children_left), dtype=np.int32
            ),
            children_right=np.ascontiguousarray(
                np.concatenate(children_right), dtype=np.int32
            ),
            value=np.ascontiguousarray(
                np.concatenate([t.value_ for t in trees]), dtype=np.float64
            ),
            n_node_samples=np.ascontiguousarray(
                np.concatenate([t.n_node_samples_ for t in trees]), dtype=np.int32
            ),
            offsets=offsets,
            n_features_in=n_features,
        )

    @classmethod
    def concat(cls, packs: Sequence["PackedEnsemble"]) -> "PackedEnsemble":
        """Stack several arenas into one (e.g. every committee member's trees)."""
        if not packs:
            raise ValueError("Cannot concatenate zero arenas.")
        n_features = packs[0].n_features_in
        if any(p.n_features_in != n_features for p in packs):
            raise ValueError("Arenas disagree on the number of features.")
        node_shift = np.cumsum([0] + [p.n_nodes for p in packs])
        children_left = []
        children_right = []
        offset_parts = [np.zeros(1, dtype=np.int64)]
        for pack, shift in zip(packs, node_shift[:-1]):
            cl = pack.children_left
            cr = pack.children_right
            children_left.append(np.where(cl == _TREE_LEAF, _TREE_LEAF, cl + shift))
            children_right.append(np.where(cr == _TREE_LEAF, _TREE_LEAF, cr + shift))
            offset_parts.append(pack.offsets[1:] + shift)
        return cls(
            feature=np.concatenate([p.feature for p in packs]),
            threshold=np.concatenate([p.threshold for p in packs]),
            children_left=np.ascontiguousarray(
                np.concatenate(children_left), dtype=np.int32
            ),
            children_right=np.ascontiguousarray(
                np.concatenate(children_right), dtype=np.int32
            ),
            value=np.concatenate([p.value for p in packs]),
            n_node_samples=np.concatenate([p.n_node_samples for p in packs]),
            offsets=np.concatenate(offset_parts),
            n_features_in=n_features,
        )

    # ------------------------------------------------------------------ introspection
    @property
    def n_trees(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_nodes(self) -> int:
        return int(self.offsets[-1])

    def tree_slice(self, t: int) -> tuple[int, int]:
        """Arena span ``[lo, hi)`` of member tree ``t``."""
        return int(self.offsets[t]), int(self.offsets[t + 1])

    # ------------------------------------------------------------------ traversal
    def _traversal(self) -> _Traversal:
        if self._trav is None:
            self._trav = _Traversal(self)
        return self._trav

    def _check_X(self, X: np.ndarray) -> np.ndarray:
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_in:
            raise ValueError(
                f"X has shape {X.shape}, but the packed ensemble was fitted "
                f"with {self.n_features_in} features."
            )
        # Per-tree apply() rejected non-finite inputs via check_array; keep
        # that loud failure here — a NaN would otherwise route through the
        # inverted (value > threshold) comparison and silently differ.
        if not np.all(np.isfinite(X)):
            raise ValueError("Input contains NaN or infinity.")
        return X

    def _resolve_n_trees(self, n_trees: Optional[int]) -> int:
        k = self.n_trees if n_trees is None else int(n_trees)
        if not 0 < k <= self.n_trees:
            raise ValueError(f"n_trees must be in [1, {self.n_trees}], got {n_trees}.")
        return k

    def _traverse_blocks(self, X: np.ndarray, k: int):
        """Yield ``(lo, hi, flat)`` per sample block.

        ``flat`` holds the level-major arena index of the leaf reached by
        every pair, laid out tree-major: entry ``t * (hi - lo) + i`` is
        (tree ``t``, sample ``lo + i``).  Tree-major order makes per-tree
        accumulation and leaf-value slabs contiguous.
        """
        trav = self._traversal()
        n_samples, n_features = X.shape
        Xflat = X.ravel()
        roots = trav.roots[:k, None]
        feature, threshold, children2 = trav.feature, trav.threshold, trav.children2
        for lo in range(0, n_samples, _BLOCK_SAMPLES):
            hi = min(lo + _BLOCK_SAMPLES, n_samples)
            b = hi - lo
            flat = np.empty((k, b), dtype=np.intp)
            flat[:] = roots
            flat = flat.ravel()
            row_base = np.tile(np.arange(lo, hi, dtype=np.intp) * n_features, k)
            for _ in range(trav.max_depth):
                feat = feature[flat]
                xv = Xflat[row_base + feat]
                go_right = xv > threshold[flat]
                flat = children2[2 * flat + go_right]
            yield lo, hi, flat

    def apply(self, X: np.ndarray, n_trees: Optional[int] = None) -> np.ndarray:
        """Global arena index of the leaf reached by every (sample, tree) pair.

        Routing is identical to per-tree :meth:`DecisionTreeRegressor.apply`:
        the same ``<=`` threshold test on the same float64 values.  Returns
        shape ``(n_samples, k)`` where ``k`` is ``n_trees`` (default: every
        member; trees are arena-ordered, so a prefix count selects the first
        ``k`` members — GB staging uses this).
        """
        X = self._check_X(X)
        k = self._resolve_n_trees(n_trees)
        trav = self._traversal()
        out = np.empty((X.shape[0], k), dtype=np.int64)
        for lo, hi, flat in self._traverse_blocks(X, k):
            out[lo:hi] = trav.order[flat].reshape(k, hi - lo).T
        return out

    def leaf_values(
        self, X: np.ndarray, n_trees: Optional[int] = None, *, tree_major: bool = False
    ) -> np.ndarray:
        """Per-tree leaf values: ``(n_samples, k)``, or ``(k, n_samples)``
        when ``tree_major`` (contiguous per-tree rows for staged scans).

        Entry ``[i, t]`` (or ``[t, i]``) is bit-identical to
        ``trees[t].predict(X)[i]``; consumers choose their own aggregation
        order over the matrix.
        """
        X = self._check_X(X)
        k = self._resolve_n_trees(n_trees)
        trav = self._traversal()
        n_samples = X.shape[0]
        out = np.empty((k, n_samples) if tree_major else (n_samples, k))
        for lo, hi, flat in self._traverse_blocks(X, k):
            slab = trav.value[flat].reshape(k, hi - lo)
            if tree_major:
                out[:, lo:hi] = slab
            else:
                out[lo:hi] = slab.T
        return out

    def segment_sums(
        self, X: np.ndarray, segments: Sequence[tuple[int, float, float]]
    ) -> np.ndarray:
        """Sequentially accumulated leaf sums over consecutive tree segments.

        ``segments`` is a sequence of ``(n_trees, init, scale)``; column ``j``
        of the ``(n_samples, n_segments)`` result is
        ``init_j + scale_j * leaf_0 + scale_j * leaf_1 + ...`` over segment
        ``j``'s trees, accumulated **in tree order** — the exact float-op
        sequence of the historical per-tree loops (GB shrinkage stages, RF
        member sums, one committee member per segment).  Accumulation happens
        inside the traversal block, so the full leaf matrix is never
        materialised.
        """
        X = self._check_X(X)
        counts = [int(c) for c, _, _ in segments]
        k = sum(counts)
        self._resolve_n_trees(k)
        trav = self._traversal()
        bounds = np.cumsum([0] + counts)
        out = np.empty((X.shape[0], len(counts)))
        for j, (_, init, _) in enumerate(segments):
            out[:, j] = init
        for lo, hi, flat in self._traverse_blocks(X, k):
            slab = trav.value[flat].reshape(k, hi - lo)
            for j, (_, _, scale) in enumerate(segments):
                acc = out[lo:hi, j]
                if scale == 1.0:
                    for t in range(bounds[j], bounds[j + 1]):
                        acc += slab[t]
                else:
                    for t in range(bounds[j], bounds[j + 1]):
                        acc += scale * slab[t]
        return out

    def accumulate(
        self,
        X: np.ndarray,
        *,
        init: float = 0.0,
        scale: float = 1.0,
        n_trees: Optional[int] = None,
    ) -> np.ndarray:
        """``init + scale * leaf_0 + scale * leaf_1 + ...`` in tree order."""
        k = self._resolve_n_trees(n_trees)
        return self.segment_sums(X, [(k, init, scale)])[:, 0]


# --------------------------------------------------------------------------- pickle form
def pack_trees_state(
    trees: Sequence[DecisionTreeRegressor],
    packed: Optional[PackedEnsemble] = None,
) -> dict[str, Any]:
    """Serializable packed form of a fitted list of member trees.

    The arena replaces the list-of-objects graph in ensemble
    ``__getstate__``; per-tree hyper-parameters ride along so
    :func:`unpack_trees_state` can rebuild equivalent
    :class:`DecisionTreeRegressor` objects.  Pass a ``packed`` arena already
    built for these trees to skip re-concatenating them.
    """
    return {
        "version": PACKED_STATE_VERSION,
        "packed": packed if packed is not None else PackedEnsemble.from_trees(trees),
        "tree_params": [t.get_params(deep=False) for t in trees],
    }


def unpack_trees_state(
    state: dict[str, Any]
) -> tuple[PackedEnsemble, list[DecisionTreeRegressor]]:
    """Rebuild (arena, member trees) from a :func:`pack_trees_state` payload.

    The reconstructed trees carry the historical int64/float64 fitted-array
    dtypes and tree-local child indices, so they are drop-in identical to the
    objects that were packed (``apply``/``predict``/``get_depth``/
    ``feature_importances_`` all agree bit-for-bit).
    """
    version = state.get("version")
    if version != PACKED_STATE_VERSION:
        raise ValueError(f"Unsupported packed ensemble state version {version!r}.")
    packed: PackedEnsemble = state["packed"]
    trees: list[DecisionTreeRegressor] = []
    for t, params in enumerate(state["tree_params"]):
        lo, hi = packed.tree_slice(t)
        tree = DecisionTreeRegressor(**params)
        tree.feature_ = packed.feature[lo:hi].astype(np.int64)
        tree.threshold_ = packed.threshold[lo:hi].copy()
        cl = packed.children_left[lo:hi].astype(np.int64)
        cr = packed.children_right[lo:hi].astype(np.int64)
        tree.children_left_ = np.where(cl == _TREE_LEAF, _TREE_LEAF, cl - lo)
        tree.children_right_ = np.where(cr == _TREE_LEAF, _TREE_LEAF, cr - lo)
        tree.value_ = packed.value[lo:hi].copy()
        tree.n_node_samples_ = packed.n_node_samples[lo:hi].astype(np.int64)
        tree.n_features_in_ = packed.n_features_in
        tree.n_nodes_ = hi - lo
        trees.append(tree)
    return packed, trees


class PackedTreesMixin:
    """Arena cache + packed pickle form for ensembles of plain member trees.

    Expects the host estimator to keep its fitted members in ``estimators_``
    and to reset ``self._packed = None`` whenever that list is (re)built.
    ``_packed_ensemble()`` returns the cached arena — building it on first
    use — or ``None`` when the members are not all plain
    :class:`DecisionTreeRegressor` objects (e.g. AdaBoost with a custom base
    estimator), in which case pickling keeps the object graph too.
    """

    def _packable_trees(self) -> bool:
        trees = getattr(self, "estimators_", None)
        return bool(trees) and all(isinstance(t, DecisionTreeRegressor) for t in trees)

    def _packed_ensemble(self) -> Optional[PackedEnsemble]:
        packed = getattr(self, "_packed", None)
        if packed is None and self._packable_trees():
            packed = PackedEnsemble.from_trees(self.estimators_)
            self._packed = packed
        return packed

    def __getstate__(self) -> dict:
        """Pickle fitted members as the packed arena, not an object graph."""
        state = dict(self.__dict__)
        state.pop("_packed", None)
        if "estimators_" in state and self._packable_trees():
            state["_packed_trees_state"] = pack_trees_state(
                self.estimators_, packed=self._packed_ensemble()
            )
            del state["estimators_"]
        return state

    def __setstate__(self, state: dict) -> None:
        packed_state = state.pop("_packed_trees_state", None)
        self.__dict__.update(state)
        if packed_state is not None:
            packed, trees = unpack_trees_state(packed_state)
            self.estimators_ = trees
            self._packed = packed


# --------------------------------------------------------------------------- committees
def committee_predictions(members: Sequence[Any], X: np.ndarray) -> np.ndarray:
    """Per-member prediction matrix ``(n_samples, n_members)`` for a committee.

    When every member exposes the packed GB surface (``_packed_ensemble()``
    plus ``init_``/``learning_rate``), the members' arenas are stacked and
    traversed in **one** batched pass; each member's trees are then
    accumulated in its own stage order, which keeps every column byte-identical
    to ``member.predict(X)``.  Mixed or non-packed committees fall back to the
    historical per-member predict loop.
    """
    members = list(members)
    if not members:
        raise ValueError("committee_predictions needs at least one member.")
    packable = all(
        callable(getattr(m, "_packed_ensemble", None))
        and hasattr(m, "init_")
        and hasattr(m, "learning_rate")
        for m in members
    )
    if not packable:
        return np.column_stack([m.predict(X) for m in members])

    packs = [m._packed_ensemble() for m in members]
    combined = packs[0] if len(packs) == 1 else PackedEnsemble.concat(packs)
    segments = [
        (pack.n_trees, member.init_, member.learning_rate)
        for member, pack in zip(members, packs)
    ]
    return combined.segment_sums(X, segments)
